"""X8 — the three-backend execution grid on a scaling dataset.

Measures wall-clock of repeated batch executions across the grid
``{backend: python, numpy, c} × {workers: 1, 4} × {partitions: 1, 4}``
and checks three claims:

* **bit-exactness** — every grid point's result dictionaries equal the
  sequential Python baseline, bit for bit. The scaling dataset is
  integer-valued by construction, so float64 arithmetic is exact and any
  deviation is a merge/scheduling bug (asserted here, not just in tests);
* **vectorization** — sequential NumPy beats sequential Python by ≥ 5×
  on a full-size run (``--rows`` ≥ 500k; smaller smoke runs only record
  the ratio — vectorization cannot pay off on toy tries);
* **scaling** — with ≥ 4 usable cores, the C backend at
  ``workers=4, partitions=4`` beats sequential C by ≥ 2× (the C calls
  release the GIL, so trie partitions really run concurrently). On
  smaller machines the speedup is recorded but not asserted; set
  ``LMFAO_BENCH_STRICT=0`` to downgrade both assertions to warnings on
  unusual hardware;
* **multiprocess scaling** — a process-executor column
  (``executor="process", workers=4, partitions=4`` per backend) runs
  trie partitions in worker processes over shared-memory segments
  (:mod:`repro.core.mpexec`), sidestepping the GIL entirely. Every
  point is bit-exact against the sequential Python baseline, and with
  ≥ 4 usable cores the Python backend under the process executor must
  beat sequential Python by ≥ 3× at full size (row-gated like the
  NumPy gate; on smaller machines the skip is recorded in the report);
* **carried coverage** — a second, carried-heavy batch (every keyed
  query groups by a Fact attribute *and* the Dim attribute ``w``, so
  each root plan probes a carried view) runs the NumPy leg across the
  full ``workers × partitions`` grid against the sequential Python
  oracle: bit-exact at every point, **zero silent fallbacks**
  (``native_groups == num_groups`` is a hard assert on every numpy
  point, both batches), and sequential NumPy ≥ 3× sequential Python at
  full size (row-gated like the 5× gate above);
* **ordered top-k** — a leaderboard batch (``order_by``/``limit``)
  runs factorised through the engine against a competent flat consumer
  (materialise the join every request, numpy ``unique``/``bincount``
  grouping, ``lexsort`` rank + truncate). Every engine point — each
  backend sequential plus a partitioned numpy corner — must reproduce
  the flat ranking *as a sequence* (rank and tie order, hard at any
  scale), each point records the finishing kernels the cost model
  picked, and at full size sequential numpy must beat the flat
  baseline by ≥ 3× (row-gated like the other gates);
* **adaptive anti-regression** — an adaptive column (default
  ``parallel_threshold``, ``adaptive=True``: the cost model decides
  partition counts and grouping strategies itself) guards the two
  recorded misplans: adaptive partitioned numpy must stay within 1.1×
  of sequential numpy (the old partitions=4 slowdown), and the adaptive
  carried point within 5% of the best statically configured carried
  point. Every grid point records the run's per-group cost-model
  ``decisions`` (backend, partitions, per-emission hash/sort strategy)
  as a report column.

Writes ``BENCH_parallel.json`` (repo root by default) — the spine of the
performance trajectory: grid timings, speedups, environment.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--rows N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import EngineConfig, LMFAO
from repro.core.cbackend import gcc_available
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.query import Aggregate, Factor, OrderSpec, Query, QueryBatch
from repro.query.functions import identity, square

_C = Attribute.categorical
_F = Attribute.continuous

#: grid axes
_WORKERS = (1, 4)
_PARTITIONS = (1, 4)


def scaling_database(rows: int, seed: int = 7) -> Database:
    """A star-shaped, integer-valued database sized for seconds-scale runs.

    All measures are integer-valued floats, so every sum/product the batch
    computes is exact in float64 — the property that makes the grid's
    bit-exactness assertion meaningful rather than tolerance-based.
    """
    rng = np.random.default_rng(seed)
    # High join-key cardinality drives the trie run counts (what the native
    # scans iterate, and what partitions split); the batch's group-by
    # domains stay small so the serial parts of a run (view marshalling,
    # result collection — O(distinct keys)) do not grow with the data.
    n_keys = max(50, min(20_000, rows // 100))
    fact = Relation(
        RelationSchema(
            "Fact", (_C("k"), _C("g"), _C("h"), _F("x"), _F("y"))
        ),
        {
            "k": rng.integers(0, n_keys, rows),
            "g": rng.integers(0, 32, rows),
            "h": rng.integers(0, 8, rows),
            "x": rng.integers(-5, 12, rows).astype(float),
            "y": rng.integers(0, 9, rows).astype(float),
        },
    )
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"), _F("z"))),
        {
            "k": np.arange(n_keys),
            "w": rng.integers(0, 12, n_keys),
            "z": rng.integers(1, 7, n_keys).astype(float),
        },
    )
    return Database([fact, dim], name="scaling")


def scaling_batch() -> QueryBatch:
    """A mixed batch: scalars, single- and two-attribute group-bys."""
    return QueryBatch(
        [
            Query("total_xy", aggregates=(
                Aggregate((Factor("x", identity), Factor("y", identity))),
                Aggregate.count(),
            )),
            Query("by_g", group_by=("g",), aggregates=(
                Aggregate((Factor("x", square),)),
                Aggregate((Factor("x", identity), Factor("z", identity))),
            )),
            Query("by_h", group_by=("h",), aggregates=(
                Aggregate((Factor("y", identity),)),
            )),
            Query("by_gh", group_by=("g", "h"), aggregates=(
                Aggregate((Factor("x", identity),)),
                Aggregate.count(),
            )),
            Query("by_w", group_by=("w",), aggregates=(
                Aggregate((Factor("x", identity), Factor("y", identity))),
            )),
        ]
    )


def carried_batch() -> QueryBatch:
    """A carried-heavy batch: every keyed group-by spans Fact and Dim.

    Grouping by a Fact attribute together with ``w`` (Dim-only) makes the
    incoming Dim view's group-by include a non-local attribute, so the
    root plan iterates carried entry lists — the workload class that used
    to fall back to the Python backend wholesale.
    """
    return QueryBatch(
        [
            Query("c_by_gw", group_by=("g", "w"), aggregates=(
                Aggregate((Factor("x", identity),)),
                Aggregate.count(),
            )),
            Query("c_by_hw", group_by=("h", "w"), aggregates=(
                Aggregate((Factor("x", identity), Factor("y", identity))),
            )),
            Query("c_by_gw_sq", group_by=("g", "w"), aggregates=(
                Aggregate((Factor("x", square),)),
            )),
        ]
    )


def topk_batch(k: int = 3) -> QueryBatch:
    """A leaderboard batch over the scaling dataset.

    ``t_top_keys_per_g`` groups by ``(g, k)`` — the join-key domain, so
    the grouped result is large (≈ ``n_keys × 32`` rows at full size)
    and ranking it is real work; ``t_top_h`` is a small global top-k
    riding the same scans.
    """
    return QueryBatch(
        [
            Query(
                "t_top_keys_per_g",
                group_by=("g", "k"),
                aggregates=(Aggregate.sum("x"), Aggregate.count()),
                order_by=OrderSpec(
                    agg_index=0, descending=True, partition_by=("g",)
                ),
                limit=k,
            ),
            Query(
                "t_top_h",
                group_by=("h",),
                aggregates=(Aggregate.sum("y"),),
                order_by=OrderSpec(agg_index=0, descending=True),
                limit=k,
            ),
        ]
    )


def _flat_topk(join, query: Query) -> dict:
    """Sort-the-flat-join baseline for one ordered query.

    A competent non-factorised consumer: numpy grouping over the
    materialised join (``unique``/``bincount``), then one ``lexsort``
    over ``(partition, ±value, residual key)`` — the engine's tie-break
    contract — and a counting walk to truncate each partition at ``k``.
    """
    spec = query.order_by
    stacked = np.stack([np.asarray(join.column(a)) for a in query.group_by], axis=1)
    uniq, inverse = np.unique(stacked, axis=0, return_inverse=True)
    values = []
    for agg in query.aggregates:
        weights = np.ones(join.num_rows, dtype=float)
        for factor in agg.factors:
            weights = weights * factor.function.vectorized(
                np.asarray(join.column(factor.attribute), dtype=float)
            )
        values.append(np.bincount(inverse, weights=weights, minlength=len(uniq)))
    part_idx = [query.group_by.index(a) for a in spec.partition_by]
    res_idx = [i for i in range(len(query.group_by)) if i not in part_idx]
    sign = -1.0 if spec.descending else 1.0
    # least-significant key first, per np.lexsort
    keys = [uniq[:, j] for j in reversed(res_idx)]
    keys.append(sign * values[spec.agg_index])
    keys.extend(uniq[:, j] for j in reversed(part_idx))
    order = np.lexsort(tuple(keys))
    groups: dict = {}
    if query.limit == 0:
        return groups
    taken: dict = {}
    for i in order:
        part = tuple(uniq[i, j].item() for j in part_idx)
        count = taken.get(part, 0)
        if query.limit is not None and count >= query.limit:
            continue
        taken[part] = count + 1
        groups[tuple(v.item() for v in uniq[i])] = tuple(
            float(v[i]) for v in values
        )
    return groups


def _time_flat_topk(db: Database, batch: QueryBatch, repeats: int) -> tuple[float, dict]:
    """Best-of-N of the flat consumer — which pays the join every request."""

    def run_once() -> dict:
        join = db.materialize_join()
        return {query.name: _flat_topk(join, query) for query in batch}

    results = run_once()  # warm-up, symmetric with _time_execute
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_once()
        best = min(best, time.perf_counter() - start)
    return best, results


def _time_execute(
    engine: LMFAO, compiled, repeats: int
) -> tuple[float, dict, dict]:
    """Best-of-N wall-clock of execute() on a warmed engine, plus results
    and the run's per-group cost-model decisions (backend, partition
    count, grouping strategy per hash emission)."""
    run = engine.execute(compiled)  # warm-up: tries, partitions, registers
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run = engine.execute(compiled)
        best = min(best, time.perf_counter() - start)
    results = {name: result.groups for name, result in run.results.items()}
    return best, results, run.decisions


#: below this row count the ≥5× numpy-vs-python assertion is recorded
#: only — vectorization cannot amortise on toy tries (smoke runs).
_NUMPY_ASSERT_MIN_ROWS = 500_000

#: below this row count the adaptive anti-regression gates (adaptive
#: partitioned numpy ≤ 1.1× sequential numpy; adaptive carried within 5%
#: of the best static point) are recorded only — sub-100k runs are noise.
_ADAPTIVE_ASSERT_MIN_ROWS = 100_000


def run_grid(rows: int, repeats: int) -> dict:
    db = scaling_database(rows)
    batch = scaling_batch()
    backends = ["python", "numpy"] + (["c"] if gcc_available() else [])

    baseline_engine = LMFAO(db, EngineConfig(workers=1, partitions=1))
    baseline_seconds, baseline, _ = _time_execute(
        baseline_engine, baseline_engine.compile(batch), repeats
    )

    points = []
    for backend in backends:
        for workers in _WORKERS:
            for partitions in _PARTITIONS:
                config = EngineConfig(
                    backend=backend,
                    workers=workers,
                    partitions=partitions,
                    parallel_threshold=0,
                )
                engine = LMFAO(db, config)
                compiled = engine.compile(batch)
                if backend == "numpy":
                    # correctness gate, independent of LMFAO_BENCH_STRICT:
                    # the numpy leg must run every group natively — a
                    # silent per-group Python fallback would fake timings
                    assert (
                        compiled.native_group_count == compiled.num_groups
                    ), (
                        f"numpy backend fell back to Python for "
                        f"{compiled.num_groups - compiled.native_group_count}"
                        f" group(s)"
                    )
                seconds, results, decisions = _time_execute(
                    engine, compiled, repeats
                )
                bit_exact = results == baseline
                assert bit_exact, (
                    f"{backend} workers={workers} partitions={partitions} "
                    f"diverged from the sequential Python baseline"
                )
                points.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "partitions": partitions,
                        "seconds": seconds,
                        "native_groups": compiled.native_group_count,
                        "num_groups": compiled.num_groups,
                        "bit_exact_vs_sequential_python": bit_exact,
                        "decisions": decisions,
                    }
                )
                print(
                    f"  {backend:>6}  workers={workers}  partitions={partitions}  "
                    f"{seconds * 1e3:8.1f} ms  bit-exact={bit_exact}"
                )

    # ----------------------------------------------- process-executor column
    # Domain parallelism in worker processes over shared-memory tries
    # (repro.core.mpexec) — the configuration the GIL-bound backends need
    # for real multicore scaling. One point per backend at the scaling
    # corner of the grid; warm-up (pool spawn, per-worker plan recompile,
    # segment export) happens inside _time_execute's untimed first run.
    process_points = []
    for backend in backends:
        config = EngineConfig(
            backend=backend,
            executor="process",
            workers=4,
            partitions=4,
            parallel_threshold=0,
        )
        engine = LMFAO(db, config)
        try:
            compiled = engine.compile(batch)
            seconds, results, _ = _time_execute(engine, compiled, repeats)
        finally:
            engine.close()
        bit_exact = results == baseline
        assert bit_exact, (
            f"{backend} executor=process workers=4 partitions=4 "
            f"diverged from the sequential Python baseline"
        )
        process_points.append(
            {
                "backend": backend,
                "executor": "process",
                "workers": 4,
                "partitions": 4,
                "seconds": seconds,
                "bit_exact_vs_sequential_python": bit_exact,
            }
        )
        print(
            f"  {backend:>6}  process  workers=4  partitions=4  "
            f"{seconds * 1e3:8.1f} ms  bit-exact={bit_exact}"
        )

    # ------------------------------------------------- carried-heavy batch
    # the NumPy leg across the full workers × partitions grid against the
    # sequential Python oracle — the workload class that used to fall back
    cbatch = carried_batch()
    carried_engine = LMFAO(db, EngineConfig(workers=1, partitions=1))
    carried_base_seconds, carried_base, _ = _time_execute(
        carried_engine, carried_engine.compile(cbatch), repeats
    )
    print(
        f"  carried python  workers=1  partitions=1  "
        f"{carried_base_seconds * 1e3:8.1f} ms  (oracle)"
    )
    carried_points = []
    for workers in _WORKERS:
        for partitions in _PARTITIONS:
            config = EngineConfig(
                backend="numpy",
                workers=workers,
                partitions=partitions,
                parallel_threshold=0,
            )
            engine = LMFAO(db, config)
            compiled = engine.compile(cbatch)
            assert any(plan.carried_blocks for plan in compiled.plans), (
                "carried batch compiled without carried blocks — the "
                "benchmark no longer measures what it claims"
            )
            assert compiled.native_group_count == compiled.num_groups, (
                f"numpy backend fell back to Python for "
                f"{compiled.num_groups - compiled.native_group_count} "
                f"carried group(s)"
            )
            seconds, results, decisions = _time_execute(
                engine, compiled, repeats
            )
            bit_exact = results == carried_base
            assert bit_exact, (
                f"carried numpy workers={workers} partitions={partitions} "
                f"diverged from the sequential Python oracle"
            )
            carried_points.append(
                {
                    "backend": "numpy",
                    "workers": workers,
                    "partitions": partitions,
                    "seconds": seconds,
                    "native_groups": compiled.native_group_count,
                    "num_groups": compiled.num_groups,
                    "bit_exact_vs_sequential_python": bit_exact,
                    "decisions": decisions,
                }
            )
            print(
                f"  carried  numpy  workers={workers}  partitions={partitions}  "
                f"{seconds * 1e3:8.1f} ms  bit-exact={bit_exact}"
            )

    # ------------------------------------------------- adaptive execution
    # The cost-based layer with its real defaults: parallel_threshold at
    # 8192 (not the grid's forced fan-out) and adaptive=True, so the
    # model decides partition counts and grouping strategies itself. This
    # column guards the two recorded misplans — partitions=4 numpy slower
    # than sequential numpy, and carried-heavy plans losing their
    # vectorisation win to dense-key grouping.
    adaptive_points = []
    for workers, partitions in ((1, 4), (4, 4)):
        config = EngineConfig(
            backend="numpy", workers=workers, partitions=partitions
        )
        engine = LMFAO(db, config)
        compiled = engine.compile(batch)
        seconds, results, decisions = _time_execute(engine, compiled, repeats)
        bit_exact = results == baseline
        assert bit_exact, (
            f"adaptive numpy workers={workers} partitions={partitions} "
            f"diverged from the sequential Python baseline"
        )
        adaptive_points.append(
            {
                "backend": "numpy",
                "adaptive": True,
                "workers": workers,
                "partitions": partitions,
                "seconds": seconds,
                "bit_exact_vs_sequential_python": bit_exact,
                "decisions": decisions,
            }
        )
        print(
            f"  adaptive numpy  workers={workers}  partitions={partitions}  "
            f"{seconds * 1e3:8.1f} ms  bit-exact={bit_exact}"
        )
    engine = LMFAO(
        db, EngineConfig(backend="numpy", workers=4, partitions=4)
    )
    compiled = engine.compile(cbatch)
    carried_adaptive_seconds, results, carried_adaptive_decisions = (
        _time_execute(engine, compiled, repeats)
    )
    assert results == carried_base, (
        "adaptive carried numpy diverged from the sequential Python oracle"
    )
    carried_adaptive = {
        "backend": "numpy",
        "adaptive": True,
        "workers": 4,
        "partitions": 4,
        "seconds": carried_adaptive_seconds,
        "decisions": carried_adaptive_decisions,
    }
    print(
        f"  adaptive carried numpy  workers=4  partitions=4  "
        f"{carried_adaptive_seconds * 1e3:8.1f} ms"
    )

    # ------------------------------------------------------ ordered top-k
    # factorised leaderboards vs the sort-the-flat-join consumer. The flat
    # result is itself an independent ranking implementation, so sequence
    # equality here is a differential check, not a self-comparison.
    tbatch = topk_batch()
    flat_seconds, flat_results = _time_flat_topk(db, tbatch, repeats)
    print(f"  topk  flat-join baseline        {flat_seconds * 1e3:8.1f} ms")
    topk_points = []
    topk_grid = [(backend, 1, 1) for backend in backends]
    topk_grid.append(("numpy", 4, 4))
    for backend, workers, partitions in topk_grid:
        engine = LMFAO(
            db,
            EngineConfig(
                backend=backend,
                workers=workers,
                partitions=partitions,
                parallel_threshold=0,
            ),
        )
        seconds, results, decisions = _time_execute(
            engine, engine.compile(tbatch), repeats
        )
        ordered_exact = all(
            list(results[query.name].items()) == list(flat_results[query.name].items())
            for query in tbatch
        )
        assert ordered_exact, (
            f"topk {backend} workers={workers} partitions={partitions} "
            f"diverged from the flat-join ranking (sequence compare)"
        )
        kernels = {
            name: strategy
            for entry in decisions.values()
            for name, strategy in entry.get("topk", {}).items()
        }
        assert set(kernels) == {query.name for query in tbatch}, (
            f"topk {backend}: finishing kernels not recorded for every "
            f"ordered query: {kernels}"
        )
        topk_points.append(
            {
                "backend": backend,
                "workers": workers,
                "partitions": partitions,
                "seconds": seconds,
                "ordered_exact_vs_flat_baseline": ordered_exact,
                "kernels": kernels,
            }
        )
        print(
            f"  topk  {backend:>6}  workers={workers}  partitions={partitions}  "
            f"{seconds * 1e3:8.1f} ms  kernels={kernels}"
        )

    def seconds_at(backend: str, workers: int, partitions: int) -> float | None:
        for p in points:
            if (p["backend"], p["workers"], p["partitions"]) == (
                backend, workers, partitions,
            ):
                return p["seconds"]
        return None

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    report = {
        "bench": "parallel_grid",
        "dataset": {"name": "scaling", "fact_rows": rows,
                    "total_tuples": db.total_tuples()},
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "usable_cores": cores,
            "gcc": gcc_available(),
        },
        "baseline_sequential_python_seconds": baseline_seconds,
        "grid": points,
        "process_grid": process_points,
        "carried_baseline_sequential_python_seconds": carried_base_seconds,
        "carried_grid": carried_points,
        "adaptive_grid": adaptive_points,
        "carried_adaptive": carried_adaptive,
        "topk_flat_baseline_seconds": flat_seconds,
        "topk_grid": topk_points,
    }

    # -------------------------------------------- adaptive anti-regression
    # the misplan this layer fixes: an advisory partitions=4 must never
    # make the numpy backend materially slower than sequential numpy again
    # (>1.1x), and the adaptive carried point must stay within 5% of the
    # best statically configured carried grid point.
    strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
    np_seq_static = seconds_at("numpy", 1, 1)
    if np_seq_static is not None and adaptive_points:
        worst = max(p["seconds"] for p in adaptive_points)
        ratio = worst / np_seq_static
        report["adaptive_numpy_worst_vs_sequential_numpy"] = ratio
        if rows < _ADAPTIVE_ASSERT_MIN_ROWS:
            report["adaptive_assertion"] = (
                f"skipped: {rows} rows < {_ADAPTIVE_ASSERT_MIN_ROWS} (smoke run)"
            )
        elif ratio > 1.1 and not strict:
            report["adaptive_assertion"] = f"FAILED (non-strict): {ratio:.2f}x"
            print(
                f"WARNING: adaptive partitioned numpy {ratio:.2f}x sequential "
                f"numpy, expected <= 1.1x (non-strict mode)"
            )
        else:
            assert ratio <= 1.1, (
                f"adaptive partitioned numpy is {ratio:.2f}x sequential "
                f"numpy — the partitions=4 slowdown regressed (expected "
                f"<= 1.1x)"
            )
            report["adaptive_assertion"] = f"passed: {ratio:.2f}x"
    if carried_points:
        best_static = min(p["seconds"] for p in carried_points)
        ratio = carried_adaptive_seconds / best_static
        report["carried_adaptive_vs_best_static"] = ratio
        if rows < _ADAPTIVE_ASSERT_MIN_ROWS:
            report["carried_adaptive_assertion"] = (
                f"skipped: {rows} rows < {_ADAPTIVE_ASSERT_MIN_ROWS} (smoke run)"
            )
        elif ratio > 1.05 and not strict:
            report["carried_adaptive_assertion"] = (
                f"FAILED (non-strict): {ratio:.2f}x"
            )
            print(
                f"WARNING: adaptive carried numpy {ratio:.2f}x the best "
                f"static point, expected <= 1.05x (non-strict mode)"
            )
        else:
            assert ratio <= 1.05, (
                f"adaptive carried numpy is {ratio:.2f}x the best static "
                f"carried configuration (expected within 5%)"
            )
            report["carried_adaptive_assertion"] = f"passed: {ratio:.2f}x"
    c_seq = seconds_at("c", 1, 1)
    c_par = seconds_at("c", 4, 4)
    if c_seq is not None and c_par is not None:
        speedup = c_seq / c_par
        report["c_speedup_4x4_vs_sequential_c"] = speedup
        strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
        if cores < 4:
            report["speedup_assertion"] = (
                f"skipped: only {cores} usable core(s), need >= 4"
            )
        elif speedup < 2.0 and not strict:
            report["speedup_assertion"] = f"FAILED (non-strict): {speedup:.2f}x"
            print(f"WARNING: C 4x4 speedup {speedup:.2f}x < 2x (non-strict mode)")
        else:
            assert speedup >= 2.0, (
                f"C backend workers=4 partitions=4 only {speedup:.2f}x "
                f"over sequential C on {cores} cores (expected >= 2x)"
            )
    py_seq = seconds_at("python", 1, 1)
    if py_seq is not None and c_seq is not None:
        report["c_over_python_sequential"] = py_seq / c_seq
    proc_py = next(
        (p["seconds"] for p in process_points if p["backend"] == "python"),
        None,
    )
    if py_seq is not None and proc_py is not None:
        speedup = py_seq / proc_py
        report["process_speedup_4workers_vs_sequential_python"] = speedup
        strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
        if cores < 4:
            report["process_speedup_assertion"] = (
                f"skipped: only {cores} usable core(s), need >= 4"
            )
            print(
                f"NOTE: process-executor >=3x gate skipped — only {cores} "
                f"usable core(s), need >= 4"
            )
        elif rows < _NUMPY_ASSERT_MIN_ROWS:
            report["process_speedup_assertion"] = (
                f"skipped: {rows} rows < {_NUMPY_ASSERT_MIN_ROWS} (smoke run)"
            )
        elif speedup < 3.0 and not strict:
            report["process_speedup_assertion"] = (
                f"FAILED (non-strict): {speedup:.2f}x"
            )
            print(
                f"WARNING: process-executor speedup {speedup:.2f}x < 3x "
                f"(non-strict mode)"
            )
        else:
            assert speedup >= 3.0, (
                f"python backend under executor='process' workers=4 only "
                f"{speedup:.2f}x over sequential Python on {cores} cores "
                f"(expected >= 3x)"
            )
            report["process_speedup_assertion"] = f"passed: {speedup:.2f}x"
    np_seq = seconds_at("numpy", 1, 1)
    if py_seq is not None and np_seq is not None:
        speedup = py_seq / np_seq
        report["numpy_over_python_sequential"] = speedup
        strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
        if rows < _NUMPY_ASSERT_MIN_ROWS:
            report["numpy_speedup_assertion"] = (
                f"skipped: {rows} rows < {_NUMPY_ASSERT_MIN_ROWS} (smoke run)"
            )
        elif speedup < 5.0 and not strict:
            report["numpy_speedup_assertion"] = (
                f"FAILED (non-strict): {speedup:.2f}x"
            )
            print(
                f"WARNING: numpy sequential speedup {speedup:.2f}x < 5x "
                f"(non-strict mode)"
            )
        else:
            assert speedup >= 5.0, (
                f"numpy backend only {speedup:.2f}x over sequential Python "
                f"on {rows} rows (expected >= 5x)"
            )
    np_seq_carried = next(
        (
            p["seconds"]
            for p in carried_points
            if (p["workers"], p["partitions"]) == (1, 1)
        ),
        None,
    )
    if np_seq_carried is not None:
        speedup = carried_base_seconds / np_seq_carried
        report["numpy_over_python_sequential_carried"] = speedup
        strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
        if rows < _NUMPY_ASSERT_MIN_ROWS:
            report["carried_numpy_speedup_assertion"] = (
                f"skipped: {rows} rows < {_NUMPY_ASSERT_MIN_ROWS} (smoke run)"
            )
        elif speedup < 3.0 and not strict:
            report["carried_numpy_speedup_assertion"] = (
                f"FAILED (non-strict): {speedup:.2f}x"
            )
            print(
                f"WARNING: carried numpy sequential speedup {speedup:.2f}x "
                f"< 3x (non-strict mode)"
            )
        else:
            assert speedup >= 3.0, (
                f"numpy backend only {speedup:.2f}x over sequential Python "
                f"on the carried-heavy batch at {rows} rows (expected >= 3x)"
            )
    topk_np_seq = next(
        (
            p["seconds"]
            for p in topk_points
            if (p["backend"], p["workers"], p["partitions"]) == ("numpy", 1, 1)
        ),
        None,
    )
    if topk_np_seq is not None:
        speedup = flat_seconds / topk_np_seq
        report["topk_factorised_over_flat_sort"] = speedup
        strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
        if rows < _NUMPY_ASSERT_MIN_ROWS:
            report["topk_speedup_assertion"] = (
                f"skipped: {rows} rows < {_NUMPY_ASSERT_MIN_ROWS} (smoke run)"
            )
        elif speedup < 3.0 and not strict:
            report["topk_speedup_assertion"] = (
                f"FAILED (non-strict): {speedup:.2f}x"
            )
            print(
                f"WARNING: factorised top-k only {speedup:.2f}x over the "
                f"sort-the-flat-join baseline, expected >= 3x (non-strict mode)"
            )
        else:
            assert speedup >= 3.0, (
                f"factorised top-k (sequential numpy) only {speedup:.2f}x "
                f"over the sort-the-flat-join baseline at {rows} rows "
                f"(expected >= 3x)"
            )
            report["topk_speedup_assertion"] = f"passed: {speedup:.2f}x"
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=4_000_000,
                        help="fact-table rows of the scaling dataset")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per grid point (best-of)")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
    )
    args = parser.parse_args(argv)
    print(f"parallel grid on scaling dataset ({args.rows} fact rows):")
    report = run_grid(args.rows, args.repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    speedup = report.get("numpy_over_python_sequential")
    if speedup is not None:
        print(f"numpy vs sequential python: {speedup:.2f}x")
    speedup = report.get("numpy_over_python_sequential_carried")
    if speedup is not None:
        print(f"numpy vs sequential python (carried batch): {speedup:.2f}x")
    speedup = report.get("c_speedup_4x4_vs_sequential_c")
    if speedup is not None:
        print(f"C 4x4 vs sequential C: {speedup:.2f}x")
    speedup = report.get("process_speedup_4workers_vs_sequential_python")
    if speedup is not None:
        print(f"process executor 4 workers vs sequential python: {speedup:.2f}x")
    ratio = report.get("adaptive_numpy_worst_vs_sequential_numpy")
    if ratio is not None:
        print(f"adaptive partitioned numpy vs sequential numpy: {ratio:.2f}x")
    ratio = report.get("carried_adaptive_vs_best_static")
    if ratio is not None:
        print(f"adaptive carried numpy vs best static: {ratio:.2f}x")
    speedup = report.get("topk_factorised_over_flat_sort")
    if speedup is not None:
        print(f"factorised top-k vs sort-the-flat-join: {speedup:.2f}x")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
