"""T2 — Section 1 prose: LMFAO vs mainstream baselines on the LR batch.

The paper reports that LMFAO outperforms TensorFlow/scikit-learn pipelines
and per-query RDBMS execution "by several orders of magnitude" on the
covariance batches. This bench measures all three systems on the same
batch and reports the speedup factors; the shape to reproduce is LMFAO
winning, with the per-query engine slowest and the gap growing with batch
size (see bench_scaling for the growth).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import MaterializedPipeline, SqlEngineBaseline
from repro.ml import covariance_batch
from repro.ml.features import favorita_features, retailer_features

from benchmarks.conftest import report

_RESULTS: dict[tuple[str, str], float] = {}


def _record(dataset: str, system: str, seconds: float) -> None:
    _RESULTS[(dataset, system)] = seconds
    lmfao = _RESULTS.get((dataset, "lmfao"))
    if lmfao and system != "lmfao":
        report(
            "T2 LR aggregates",
            f"{dataset}: {system} / LMFAO",
            "orders of magnitude",
            f"{seconds / lmfao:.1f}x slower",
        )


@pytest.mark.parametrize("dataset", ["favorita", "retailer"])
def test_lmfao(benchmark, dataset, favorita_engine_bench, retailer_engine_bench,
               favorita_bench, retailer_bench):
    engine = favorita_engine_bench if dataset == "favorita" else retailer_engine_bench
    db = favorita_bench if dataset == "favorita" else retailer_bench
    spec = favorita_features(db) if dataset == "favorita" else retailer_features(db)
    batch = covariance_batch(spec)
    compiled = engine.compile(batch)
    engine.execute(compiled)  # warm the trie cache, as a resident engine would be

    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: engine.execute(compiled), rounds=3, iterations=1
    )
    _record(dataset, "lmfao", (time.perf_counter() - start) / 3)


@pytest.mark.parametrize("dataset", ["favorita", "retailer"])
def test_materialized_pipeline(benchmark, dataset, favorita_bench, retailer_bench):
    db = favorita_bench if dataset == "favorita" else retailer_bench
    spec = favorita_features(db) if dataset == "favorita" else retailer_features(db)
    batch = covariance_batch(spec)

    def run():
        pipeline = MaterializedPipeline(db)  # includes the join materialisation
        return pipeline.run(batch)

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=3, iterations=1)
    _record(dataset, "materialize+numpy", (time.perf_counter() - start) / 3)


@pytest.mark.parametrize("dataset", ["favorita", "retailer"])
def test_sql_per_query(benchmark, dataset, favorita_bench, retailer_bench):
    db = favorita_bench if dataset == "favorita" else retailer_bench
    spec = favorita_features(db) if dataset == "favorita" else retailer_features(db)
    batch = covariance_batch(spec)
    baseline = SqlEngineBaseline(db)

    start = time.perf_counter()
    benchmark.pedantic(lambda: baseline.run(batch), rounds=1, iterations=1)
    _record(dataset, "per-query SQL", time.perf_counter() - start)
