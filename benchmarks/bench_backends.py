"""X3 — backend fidelity: generated Python vs generated C (the paper's
native codegen).

The published engine compiles every group to C++; this bench compares our
two backends on the linear-regression batch. The expected shape: identical
results, C executing several times faster, with a one-off gcc compilation
cost that amortises over repeated execution (the same trade-off the paper
reports for compiled plans).
"""

from __future__ import annotations

import time

import pytest

from repro.core import EngineConfig, LMFAO
from repro.core.cbackend import gcc_available
from repro.ml import covariance_batch
from repro.ml.features import favorita_features
from repro.paper import FAVORITA_TREE

from benchmarks.conftest import report

pytestmark = pytest.mark.skipif(not gcc_available(), reason="gcc not on PATH")

_TIMES: dict[str, float] = {}


@pytest.mark.parametrize("backend", ["python", "c"])
def test_backend_execution(benchmark, favorita_bench, backend):
    spec = favorita_features(favorita_bench)
    batch = covariance_batch(spec)
    engine = LMFAO(
        favorita_bench,
        EngineConfig(join_tree_edges=FAVORITA_TREE, backend=backend),
    )
    compile_start = time.perf_counter()
    compiled = engine.compile(batch)
    compile_seconds = time.perf_counter() - compile_start
    engine.execute(compiled)  # warm tries

    start = time.perf_counter()
    benchmark.pedantic(lambda: engine.execute(compiled), rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    _TIMES[backend] = elapsed

    if backend == "python":
        report(
            "X3 backends",
            "generated Python (LR batch, warm)",
            "substitution baseline",
            f"{elapsed*1e3:.0f} ms (compile {compile_seconds*1e3:.0f} ms)",
        )
    else:
        assert compiled.native_group_count == compiled.num_groups
        speedup = _TIMES.get("python", elapsed) / elapsed
        report(
            "X3 backends",
            f"generated C, {compiled.native_group_count}/"
            f"{compiled.num_groups} groups native",
            "native codegen (paper)",
            f"{elapsed*1e3:.0f} ms ({speedup:.1f}x vs Python; "
            f"gcc {compile_seconds*1e3:.0f} ms, amortised)",
        )
