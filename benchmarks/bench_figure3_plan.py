"""F3 — Figure 3: the multi-output plan for Group 6.

Asserts the plan shape the paper draws (trie order item→date→store, shared
β between Q1 and V_S→I, one V_I→S lookup per item) and benchmarks the
execution of that single group, factorised versus unfactorised.
"""

from __future__ import annotations

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE
from repro.query import Aggregate, Query, QueryBatch
from repro.query.aggregates import Factor
from repro.paper import g as g_fn, h as h_fn

from benchmarks.conftest import report


def _figure3_batch() -> QueryBatch:
    q1 = Query("Q1", aggregates=(Aggregate.sum("units"),))
    q2 = Query(
        "Q2",
        group_by=("store",),
        aggregates=(Aggregate((Factor("item", g_fn), Factor("date", h_fn))),),
    )
    q3 = Query("Q3", group_by=("class",), aggregates=(Aggregate.sum("units"),))
    return QueryBatch([q1, q2, q3])


def _engine(db, **overrides):
    return LMFAO(
        db,
        EngineConfig(
            join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS, **overrides
        ),
    )


@pytest.mark.parametrize("factorize", [True, False], ids=["factorized", "flat"])
def test_figure3_group_execution(benchmark, favorita_bench, factorize):
    engine = _engine(favorita_bench, factorize=factorize)
    compiled = engine.compile(_figure3_batch())
    run = benchmark.pedantic(
        lambda: engine.execute(compiled), rounds=5, iterations=1, warmup_rounds=1
    )

    sales_plan = next(
        p for i, p in enumerate(compiled.plans)
        if "Q1" in compiled.group_plan.groups[i].artifact_names
    )
    stats = sales_plan.statistics()
    if factorize:
        assert sales_plan.order == ("item", "date", "store")
        report("F3 Figure 3", "trie order (Group 6)", "item,date,store",
               ",".join(sales_plan.order))
        report("F3 Figure 3", "beta nodes (factorized)", "shared chains (β0-β3)",
               str(stats["beta_nodes"]))
        emissions = {e.artifact: e for e in sales_plan.emissions}
        q1_beta = emissions["Q1"].slots[0].beta
        view_name = next(a for a in emissions if "Sales_Items" in a)
        shared = sales_plan.betas[q1_beta].child == emissions[view_name].slots[0].beta
        report("F3 Figure 3", "Q1 and V_S→I share β1", "yes", "yes" if shared else "no")
        assert shared
    else:
        report("F3 Figure 3", "beta nodes (unfactorized)", "-", str(stats["beta_nodes"]))
