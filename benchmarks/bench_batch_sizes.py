"""T1 — Section 3 prose: aggregate batch sizes per application.

The paper reports 814 covariance aggregates for linear regression on
Retailer, 3,141 aggregates per decision-tree node on Retailer, and n+1
queries for Rk-means. This bench regenerates the batch sizes from our
feature specs over the same schemas and benchmarks batch construction.
"""

from __future__ import annotations

from repro.ml import cart_node_batch, covariance_batch
from repro.ml.features import favorita_features, retailer_features

from benchmarks.conftest import report


def test_linear_regression_batch_sizes(benchmark, retailer_bench, favorita_bench):
    retailer_spec = retailer_features(retailer_bench)
    favorita_spec = favorita_features(favorita_bench)

    batch = benchmark(covariance_batch, retailer_spec)

    report(
        "T1 batch sizes",
        "LR Retailer covariance aggregates",
        "814",
        str(batch.num_aggregates),
    )
    report(
        "T1 batch sizes",
        "LR Favorita covariance aggregates",
        "(not reported)",
        str(covariance_batch(favorita_spec).num_aggregates),
    )


def test_decision_tree_batch_sizes(benchmark, retailer_bench):
    spec = retailer_features(retailer_bench)
    # the paper's per-node count uses per-threshold indicator aggregates;
    # with the published Retailer feature set and 34 thresholds/feature the
    # formulation lands at the paper's scale
    thresholds = {
        feature: [float(t) for t in range(34)] for feature in spec.continuous
    }

    batch = benchmark(
        cart_node_batch, spec, (), "indicator", thresholds
    )

    # 3 totals + 3*34 per continuous + 3 per categorical group-by
    expected = 3 + 3 * 34 * len(spec.continuous) + 3 * len(spec.categorical)
    assert batch.num_aggregates == expected
    report(
        "T1 batch sizes",
        "DT Retailer aggregates per node (indicator mode)",
        "3141",
        str(batch.num_aggregates),
    )
    groupby = cart_node_batch(spec, ())
    report(
        "T1 batch sizes",
        "DT Retailer aggregates per node (group-by mode)",
        "(not reported)",
        str(groupby.num_aggregates),
    )


def test_rkmeans_query_count(benchmark, retailer_bench):
    from repro.query import Aggregate, Query, QueryBatch

    dimensions = ("inventoryunits", "maxtemp", "meanwind", "prize")

    def build():
        return QueryBatch(
            [
                Query(f"proj_{a}", group_by=(a,), aggregates=(Aggregate.count(),))
                for a in dimensions
            ]
        )

    batch = benchmark(build)
    report(
        "T1 batch sizes",
        f"Rk-means queries (n={len(dimensions)} dims)",
        "n+1 = 5",
        str(len(batch) + 1),  # + the grid coreset query
    )
