"""T3 — Section 4 prose: end-to-end application runs.

"Since the execution takes a few seconds in LMFAO, we will run it on the
fly during the demonstration." — each of the three applications must
complete its aggregate computation in seconds at benchmark scale.
"""

from __future__ import annotations

import time

from repro.core import EngineConfig, LMFAO
from repro.ml import CartConfig, RegressionTree, rk_means, train_linear_regression
from repro.ml.features import favorita_features, retailer_features
from repro.paper import FAVORITA_TREE

from benchmarks.conftest import report


def test_linear_regression_end_to_end(benchmark, retailer_bench):
    spec = retailer_features(retailer_bench)

    def train():
        engine = LMFAO(retailer_bench)
        return train_linear_regression(engine, spec, ridge=1e-2)

    start = time.perf_counter()
    model = benchmark.pedantic(train, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    assert model.converged or model.iterations > 0
    report(
        "T3 end-to-end",
        "LR Retailer (aggregates + BGD)",
        "a few seconds",
        f"{elapsed:.2f}s ({model.num_aggregates} aggregates, "
        f"{model.iterations} iterations)",
    )


def test_decision_tree_end_to_end(benchmark, favorita_bench):
    spec = favorita_features(favorita_bench)

    def train():
        engine = LMFAO(favorita_bench, EngineConfig(join_tree_edges=FAVORITA_TREE))
        return RegressionTree(
            spec, CartConfig(max_depth=3, min_samples=30)
        ).fit(engine)

    start = time.perf_counter()
    tree = benchmark.pedantic(train, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3
    assert tree.num_nodes >= 1
    report(
        "T3 end-to-end",
        "DT Favorita (depth 3)",
        "a few seconds",
        f"{elapsed:.2f}s ({tree.num_nodes} nodes, "
        f"{tree.total_aggregates} aggregates)",
    )


def test_rkmeans_end_to_end(benchmark, retailer_bench):
    dimensions = ("inventoryunits", "maxtemp", "meanwind", "prize")

    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: rk_means(retailer_bench, dimensions=dimensions, k=5, seed=3),
        rounds=3,
        iterations=1,
    )
    elapsed = (time.perf_counter() - start) / 3
    report(
        "T3 end-to-end",
        "Rk-means Retailer (k=5, 4 dims)",
        "a few seconds",
        f"{elapsed:.2f}s (grid {result.coreset_size} points)",
    )
