"""F2 — Figure 2: view generation and grouping on the running example.

Regenerates the exact structure of Figure 2 (six merged views, seven
groups, the dependency DAG) and benchmarks the view-generation +
grouping pipeline.
"""

from __future__ import annotations

from repro.core import EngineConfig, LMFAO
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries

from benchmarks.conftest import report


def test_figure2_structure(benchmark, favorita_bench):
    engine = LMFAO(
        favorita_bench,
        EngineConfig(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS),
    )
    batch = example_queries()

    compiled = benchmark(engine.compile, batch)

    counts = compiled.view_plan.edge_view_counts()
    assert sum(counts.values()) == 6
    assert compiled.num_groups == 7
    assert compiled.roots == EXAMPLE_ROOTS
    edges = set(compiled.group_plan.dependency_edges())

    report("F2 Figure 2", "merged views for Q1-Q3", "6", str(sum(counts.values())))
    report("F2 Figure 2", "view groups", "7", str(compiled.num_groups))
    report("F2 Figure 2", "group dependency edges", "6", str(len(edges)))
    report(
        "F2 Figure 2",
        "roots (Q1,Q2,Q3)",
        "Sales,Sales,Items",
        ",".join(compiled.roots[q] for q in ("Q1", "Q2", "Q3")),
    )
