"""X10 — the group-committed write path: throughput, GC bounds, containment.

Measures the three claims the write queue makes (``docs/serving.md``):

* **group-commit throughput** — concurrent writer threads issue small
  asynchronous single-row writes while reader threads keep querying; the
  server must sustain ≥ 100 committed writes/s on the mixed workload.
  Asserted on a full run (``--writes`` ≥ 200) with
  ``LMFAO_BENCH_STRICT=0`` downgrading to a warning on noisy hardware;
  smoke runs record the rate only. The per-transition amortisation
  (writes per snapshot install) is recorded alongside;
* **bounded live snapshots** — ``stats().live_snapshots`` is sampled
  throughout; snapshot GC must keep the retained-version count bounded
  by the active readers (+ margin), not by the number of writes. Hard
  assertion, always;
* **bit-exactness and fault containment** — the final served state and
  every maintained handle must be bit-exact against a from-scratch run
  over the sequentially-updated database (Favorita's units are integer,
  so sums are exact), and an injected mid-run data fault (a delete that
  cannot apply) must fail only its own write: the server keeps serving
  the last good version and ``flush()`` returns. Hard assertions, always.

Writes ``BENCH_writes.json``. Run it directly::

    PYTHONPATH=src python benchmarks/bench_writes.py [--scale S] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro import AggregateServer, LMFAO
from repro.data import Relation, favorita
from repro.query import QueryBatch, parse_query
from repro.util.errors import SchemaError

#: below this many writes the ≥100 writes/s assertion is recorded only
#: (smoke runs measure wiring, not steady-state throughput).
_ASSERT_MIN_WRITES = 200

_MIN_WRITES_PER_SECOND = 100.0


def write_batch() -> QueryBatch:
    """A small dashboard-style batch kept maintained while writes stream."""
    return QueryBatch(
        [
            parse_query("SELECT SUM(units) FROM D", "total"),
            parse_query(
                "SELECT store, SUM(units), SUM(1) FROM D GROUP BY store",
                "by_store",
            ),
            parse_query(
                "SELECT family, SUM(units*units) FROM D GROUP BY family",
                "by_family",
            ),
        ]
    )


def _groups(run) -> dict:
    return {name: result.groups for name, result in run.results.items()}


def bench_group_commit(db, writes: int, writers: int, readers: int) -> dict:
    """Concurrent writers + readers; bit-exact final state; GC sampling."""
    batch = write_batch()
    sales = db.relation("Sales")
    rows = [sales.row(i % sales.num_rows) for i in range(writes)]
    chunks = [rows[w::writers] for w in range(writers)]

    server = AggregateServer(db)
    handle = server.maintain(batch)
    done = threading.Event()
    live_samples: list[int] = []
    reads = [0] * readers
    errors: list[BaseException] = []

    def writer(chunk: list) -> None:
        try:
            for row in chunk:
                server.apply(inserts={"Sales": [row]}, sync=False)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reader(slot: int) -> None:
        try:
            while not done.is_set():
                server.run(batch)
                live_samples.append(server.stats().live_snapshots)
                reads[slot] += 1
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    reader_threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(readers)
    ]
    writer_threads = [
        threading.Thread(target=writer, args=(chunk,)) for chunk in chunks
    ]
    start = time.perf_counter()
    for thread in reader_threads + writer_threads:
        thread.start()
    for thread in writer_threads:
        thread.join(timeout=600)
    final_version = server.flush(timeout=600)  # the durability point
    elapsed = time.perf_counter() - start
    done.set()
    for thread in reader_threads:
        thread.join(timeout=600)
    if errors:
        raise errors[0]

    stats = server.stats()
    assert stats.writes.committed_writes == writes
    assert stats.writes.failed_writes == 0

    # hard gate: snapshot GC keeps the live-version count bounded by the
    # concurrent readers (one pin each) + current + an in-flight margin —
    # NOT by the number of writes
    live_bound = readers + 2
    max_live = max(live_samples) if live_samples else 1
    assert max_live <= live_bound, (
        f"snapshot GC failed to bound live versions: saw {max_live}, "
        f"bound {live_bound} ({readers} readers)"
    )

    # hard gate: final state and maintained handle bit-exact vs the
    # sequential oracle (insert-only writes commute, so one concat of all
    # rows is exactly the one-write-at-a-time replay's final database)
    final_db = db.with_relation(sales.concat(Relation.from_rows(sales.schema, rows)))
    oracle = _groups(LMFAO(final_db).run(batch))
    served = _groups(server.run(batch))
    assert served == oracle, "served state diverged from sequential oracle"
    maintained = {name: r.groups for name, r in handle.results.items()}
    assert maintained == oracle, "maintained handle diverged from oracle"

    fault = bench_fault_containment(server, sales, batch, oracle)
    server.close()
    groups = stats.writes.committed_groups
    return {
        "writes": writes,
        "writer_threads": writers,
        "reader_threads": readers,
        "concurrent_reads": sum(reads),
        "seconds": elapsed,
        "writes_per_second": writes / elapsed,
        "committed_groups": groups,
        "writes_per_transition": writes / groups,
        "largest_group": stats.writes.largest_group,
        "final_version": final_version,
        "max_live_snapshots": max_live,
        "live_snapshot_bound": live_bound,
        "bit_exact_vs_sequential_oracle": True,
        "fault_containment": fault,
    }


def bench_fault_containment(server, sales, batch, good_state: dict) -> dict:
    """Inject a data fault mid-serving; the server must not degrade."""
    version = server.version
    try:
        # far more occurrences than the relation holds: staging raises
        # inside the committer, failing exactly this write's ticket
        server.apply(deletes={"Sales": [sales.row(0)] * (sales.num_rows + 1)})
        raise AssertionError("injected fault did not surface on the writer")
    except SchemaError:
        pass
    flushed = server.flush(timeout=600)  # must not hang on the failed write
    assert flushed == version, "fault moved the store off the last good version"
    assert _groups(server.run(batch)) == good_state, (
        "server state degraded after an injected commit fault"
    )
    follow_up = server.apply(inserts={"Sales": [sales.row(0)]})
    assert follow_up == version + 1, "committer did not survive the fault"
    return {
        "injected_faults": 1,
        "served_last_good_version": True,
        "flush_returned": True,
        "committer_survived": True,
    }


def run_bench(scale: float, writes: int, writers: int, readers: int) -> dict:
    db = favorita(scale=scale, seed=7)
    print(f"write-path bench on Favorita scale={scale} "
          f"({db.total_tuples()} tuples):")
    result = bench_group_commit(db, writes, writers, readers)
    print(f"  {result['writes']} writes from {writers} writers in "
          f"{result['seconds']:.2f}s → {result['writes_per_second']:.0f} "
          f"writes/s, {result['committed_groups']} snapshot transitions "
          f"({result['writes_per_transition']:.1f} writes/transition)")
    print(f"  {result['concurrent_reads']} concurrent reads, live snapshots "
          f"≤ {result['max_live_snapshots']} (bound "
          f"{result['live_snapshot_bound']}), bit-exact vs oracle")

    report = {
        "bench": "writes",
        "dataset": {"name": "favorita", "scale": scale,
                    "total_tuples": db.total_tuples()},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "group_commit": result,
    }

    rate = result["writes_per_second"]
    strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
    if writes < _ASSERT_MIN_WRITES:
        report["write_rate_assertion"] = (
            f"skipped: {writes} writes < {_ASSERT_MIN_WRITES} (smoke run)"
        )
    elif rate < _MIN_WRITES_PER_SECOND and not strict:
        report["write_rate_assertion"] = f"FAILED (non-strict): {rate:.0f}/s"
        print(f"WARNING: {rate:.0f} writes/s < {_MIN_WRITES_PER_SECOND:.0f} "
              f"(non-strict mode)")
    else:
        assert rate >= _MIN_WRITES_PER_SECOND, (
            f"only {rate:.0f} committed writes/s on the mixed workload "
            f"(expected >= {_MIN_WRITES_PER_SECOND:.0f})"
        )
        report["write_rate_assertion"] = f"passed: {rate:.0f}/s"
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="Favorita scale (write latencies, so small)")
    parser.add_argument("--writes", type=int, default=400,
                        help="total single-row writes across all writers")
    parser.add_argument("--writers", type=int, default=2,
                        help="concurrent writer threads")
    parser.add_argument("--readers", type=int, default=2,
                        help="concurrent reader threads")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_writes.json",
    )
    args = parser.parse_args(argv)
    report = run_bench(args.scale, args.writes, args.writers, args.readers)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
