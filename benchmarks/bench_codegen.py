"""X2 — Figure 4(c): the code-generation layer's artefacts and costs.

Measures compile time (all three layers + Python bytecode compilation)
against execution time on the Retailer LR batch, and reports the generated
code volume — what the demo's code tab displays.
"""

from __future__ import annotations

import time

from repro.core import LMFAO
from repro.ml import covariance_batch
from repro.ml.features import retailer_features

from benchmarks.conftest import report


def test_compile_batch(benchmark, retailer_bench, retailer_engine_bench):
    spec = retailer_features(retailer_bench)
    batch = covariance_batch(spec)

    start = time.perf_counter()
    compiled = benchmark.pedantic(
        lambda: retailer_engine_bench.compile(batch), rounds=3, iterations=1
    )
    compile_seconds = (time.perf_counter() - start) / 3

    loc = sum(code.source.count("\n") for code in compiled.code)
    report(
        "X2 codegen",
        f"compile {batch.num_aggregates} aggregates -> "
        f"{compiled.num_groups} groups",
        "sub-second",
        f"{compile_seconds*1e3:.0f} ms, {loc} generated lines",
    )


def test_execute_compiled(benchmark, retailer_bench, retailer_engine_bench):
    spec = retailer_features(retailer_bench)
    batch = covariance_batch(spec)
    compiled = retailer_engine_bench.compile(batch)
    retailer_engine_bench.execute(compiled)  # warm tries

    start = time.perf_counter()
    benchmark.pedantic(
        lambda: retailer_engine_bench.execute(compiled), rounds=3, iterations=1
    )
    execute_seconds = (time.perf_counter() - start) / 3
    report(
        "X2 codegen",
        "execute compiled batch (warm tries)",
        "dominates compile at scale",
        f"{execute_seconds*1e3:.0f} ms",
    )
