"""F1 — Figure 1: contribution of each optimisation layer (ablation).

The paper's architecture stacks optimisations: shared join tree with
per-query roots, view merging, multi-output grouping, factorised α/β
decomposition, and specialised code. Disabling each one (and all of them)
on the linear-regression batch quantifies the layer contributions.
"""

from __future__ import annotations

import time

from repro.core import EngineConfig, LMFAO
from repro.ml import covariance_batch
from repro.ml.features import favorita_features
from repro.paper import FAVORITA_TREE

from benchmarks.conftest import report

_BASE: dict[str, float] = {}

_CONFIGS = {
    "full LMFAO": {},
    "single root for all queries": {"single_root": "auto"},
    "no view merging": {"merge_views": False},
    "no multi-output grouping": {"multi_output": False},
    "no factorization": {"factorize": False},
    "no term sharing in codegen": {"share_scan_terms": False},
    "all optimisations off": {
        "single_root": "auto",
        "merge_views": False,
        "multi_output": False,
        "factorize": False,
        "share_scan_terms": False,
    },
}


def _run_config(db, name: str, overrides: dict, benchmark) -> None:
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE, **overrides))
    spec = favorita_features(db)
    batch = covariance_batch(spec)
    compiled = engine.compile(batch)
    engine.execute(compiled)  # warm tries

    start = time.perf_counter()
    benchmark.pedantic(lambda: engine.execute(compiled), rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3

    if name == "full LMFAO":
        _BASE["time"] = elapsed
        report(
            "F1 ablation",
            f"{name} ({compiled.num_views} views, {compiled.num_groups} groups)",
            "fastest",
            f"{elapsed * 1e3:.0f} ms",
        )
    else:
        slowdown = elapsed / _BASE.get("time", elapsed)
        report(
            "F1 ablation",
            f"{name} ({compiled.num_views} views, {compiled.num_groups} groups)",
            "slower than full",
            f"{elapsed * 1e3:.0f} ms ({slowdown:.2f}x)",
        )


def test_full_lmfao(benchmark, favorita_bench):
    _run_config(favorita_bench, "full LMFAO", _CONFIGS["full LMFAO"], benchmark)


def test_single_root(benchmark, favorita_bench):
    _run_config(
        favorita_bench,
        "single root for all queries",
        _CONFIGS["single root for all queries"],
        benchmark,
    )


def test_no_view_merging(benchmark, favorita_bench):
    _run_config(
        favorita_bench, "no view merging", _CONFIGS["no view merging"], benchmark
    )


def test_no_multi_output(benchmark, favorita_bench):
    _run_config(
        favorita_bench,
        "no multi-output grouping",
        _CONFIGS["no multi-output grouping"],
        benchmark,
    )


def test_no_factorization(benchmark, favorita_bench):
    _run_config(
        favorita_bench, "no factorization", _CONFIGS["no factorization"], benchmark
    )


def test_no_term_sharing(benchmark, favorita_bench):
    _run_config(
        favorita_bench,
        "no term sharing in codegen",
        _CONFIGS["no term sharing in codegen"],
        benchmark,
    )


def test_all_off(benchmark, favorita_bench):
    _run_config(
        favorita_bench, "all optimisations off", _CONFIGS["all optimisations off"],
        benchmark,
    )
