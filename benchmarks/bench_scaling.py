"""X1 — scaling shape: runtime vs database size and vs batch size.

The qualitative claims to reproduce: LMFAO's advantage over per-query
execution *grows* with batch size (sharing amortises the scan), and all
systems scale roughly linearly in database size with LMFAO keeping a
constant-factor lead over the materialising pipeline.
"""

from __future__ import annotations

import time

from repro.baselines import SqlEngineBaseline
from repro.core import EngineConfig, LMFAO
from repro.data import favorita
from repro.ml import covariance_batch
from repro.ml.features import favorita_features
from repro.paper import FAVORITA_TREE
from repro.query import QueryBatch

from benchmarks.conftest import report

_SCALES = (0.05, 0.1, 0.2)
_BATCH_FRACTIONS = (0.1, 0.5, 1.0)


def test_database_scaling(benchmark):
    rows: list[str] = []

    def sweep():
        rows.clear()
        for scale in _SCALES:
            db = favorita(scale=scale, seed=33)
            spec = favorita_features(db)
            batch = covariance_batch(spec)
            engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
            start = time.perf_counter()
            engine.run(batch)
            lmfao = time.perf_counter() - start
            rows.append(f"scale {scale}: {db.total_tuples()} tuples {lmfao*1e3:.0f} ms")
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        report("X1 scaling", "LMFAO vs database size", "~linear", row)


def test_batch_size_scaling(benchmark, favorita_bench):
    """Sharing amortisation: LMFAO time grows sublinearly with the batch,
    per-query SQL grows linearly — the speedup widens."""
    spec = favorita_features(favorita_bench)
    full = list(covariance_batch(spec).queries)
    engine = LMFAO(favorita_bench, EngineConfig(join_tree_edges=FAVORITA_TREE))
    sql = SqlEngineBaseline(favorita_bench)
    measured: list[tuple[int, float, float]] = []

    def sweep():
        measured.clear()
        for fraction in _BATCH_FRACTIONS:
            count = max(1, int(len(full) * fraction))
            batch = QueryBatch(full[:count])
            start = time.perf_counter()
            engine.run(batch)
            lmfao = time.perf_counter() - start
            start = time.perf_counter()
            sql.run(batch)
            per_query = time.perf_counter() - start
            measured.append((count, lmfao, per_query))
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedups = []
    for count, lmfao, per_query in measured:
        speedups.append(per_query / max(lmfao, 1e-9))
        report(
            "X1 scaling",
            f"batch of {count} queries",
            "speedup grows with batch",
            f"LMFAO {lmfao*1e3:.0f} ms, per-query {per_query*1e3:.0f} ms "
            f"({per_query / max(lmfao, 1e-9):.1f}x)",
        )
    # the headline shape: larger batches favour LMFAO
    assert speedups[-1] > speedups[0]
