"""T4 — Figure 4(d): the Rk-means application report.

Regenerates what the demo UI shows: per-dimension aggregate times, cluster
centroids, the relative intra-cluster distance versus ten precomputed runs
of conventional Lloyd's, and the relative size of the grid coreset.
"""

from __future__ import annotations

import pytest

from repro.ml import rk_means
from repro.ml.rkmeans import evaluate_against_lloyds

from benchmarks.conftest import report

_DIMS = ("inventoryunits", "maxtemp", "meanwind", "prize")


@pytest.mark.parametrize("k", [5, 10])
def test_rkmeans_quality(benchmark, retailer_bench, k):
    result = benchmark.pedantic(
        lambda: rk_means(retailer_bench, dimensions=_DIMS, k=k, seed=3),
        rounds=2,
        iterations=1,
    )
    evaluation = evaluate_against_lloyds(retailer_bench, result, lloyd_runs=10, seed=0)

    report(
        "T4 Figure 4d",
        f"k={k}: relative approximation vs Lloyd's (10 runs)",
        "small constant factor",
        f"{evaluation.relative_approximation:+.2%}",
    )
    report(
        "T4 Figure 4d",
        f"k={k}: relative coreset size |G|/|D|",
        "≪ 1",
        f"{evaluation.coreset_ratio:.4%}",
    )
    step1 = result.step_seconds["step1_histograms"]
    report(
        "T4 Figure 4d",
        f"k={k}: aggregate time (step 1, {len(_DIMS)} dims)",
        "interactive",
        f"{step1 * 1e3:.0f} ms",
    )
    # quality sanity: the coreset is much smaller than D yet the clustering
    # stays within a small constant of Lloyd's
    assert evaluation.coreset_ratio < 0.5
    assert evaluation.relative_approximation < 1.0
