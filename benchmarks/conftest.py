"""Benchmark fixtures and the paper-vs-measured report collector.

Every bench registers rows with :func:`report`; the collected table is
printed in the terminal summary and written to ``benchmarks/report_latest.md``
so EXPERIMENTS.md can be refreshed from a single run of::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import favorita, retailer
from repro.paper import FAVORITA_TREE

#: default dataset scale for benches (seconds-scale runtimes)
BENCH_SCALE = 0.2

_REPORT_ROWS: list[tuple[str, str, str, str]] = []


def report(experiment: str, metric: str, paper: str, measured: str) -> None:
    """Register one paper-vs-measured row for the final report."""
    _REPORT_ROWS.append((experiment, metric, paper, measured))


@pytest.fixture(scope="session")
def favorita_bench():
    return favorita(scale=BENCH_SCALE, seed=101)


@pytest.fixture(scope="session")
def retailer_bench():
    return retailer(scale=BENCH_SCALE, seed=101)


@pytest.fixture(scope="session")
def favorita_engine_bench(favorita_bench):
    return LMFAO(favorita_bench, EngineConfig(join_tree_edges=FAVORITA_TREE))


@pytest.fixture(scope="session")
def retailer_engine_bench(retailer_bench):
    return LMFAO(retailer_bench)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_ROWS:
        return
    widths = [
        max(len(row[i]) for row in _REPORT_ROWS + [_HEADER]) for i in range(4)
    ]
    lines = [_format_row(_HEADER, widths), _format_row(tuple("-" * w for w in widths), widths)]
    lines += [_format_row(row, widths) for row in _REPORT_ROWS]
    terminalreporter.write_line("")
    terminalreporter.write_line("paper-vs-measured report")
    for line in lines:
        terminalreporter.write_line(line)
    out = Path(__file__).parent / "report_latest.md"
    md = ["| experiment | metric | paper | measured |", "|---|---|---|---|"]
    md += [f"| {e} | {m} | {p} | {v} |" for e, m, p, v in _REPORT_ROWS]
    out.write_text("\n".join(md) + "\n")
    terminalreporter.write_line(f"(written to {out})")


_HEADER = ("experiment", "metric", "paper", "measured")


def _format_row(row: tuple[str, str, str, str], widths: list[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
