"""X9 — the serving layer: plan-cache hit latency and isolated mixed traffic.

Measures the two claims the compile-once serving layer makes
(``docs/serving.md``):

* **plan-cache win** — on a structurally repeated batch (a CART-style
  candidate-split workload: same shapes, rotating thresholds), a cache
  hit — constants re-bound, no viewgen/grouping/decomposition/codegen —
  is ≥ 5× lower latency than cold compile+run. Cold latency is measured
  on a *warmed* engine (hot tries), so the ratio isolates exactly what
  the cache removes. Asserted on a full run (``--requests`` ≥ 4) with
  ``LMFAO_BENCH_STRICT=0`` downgrading to a warning on noisy hardware;
  smoke runs record the ratio only. Every hit result is additionally
  checked **bit-exact** against a cold-compiled oracle (hard, always);
* **mixed run/maintain isolation** — reader threads hammer
  ``server.run``/``server.submit`` while a maintained writer applies
  insert/delete rounds; every observed result must be bit-exact against
  the sequential oracle of the exact snapshot version it pinned (zero
  reads of partially-applied deltas). Hard assertion, always — this is a
  correctness gate, not a performance one.

Writes ``BENCH_serving.json``. Run it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py [--scale S] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro import AggregateServer, LMFAO
from repro.data import favorita
from repro.incremental.delta import normalize_deltas
from repro.query import QueryBatch, parse_query

#: below this many timed requests the ≥5× assertion is recorded only
#: (smoke runs measure wiring, not steady-state latency).
_ASSERT_MIN_REQUESTS = 4

_SPLIT_ATTRS = ("store", "item", "family", "class", "city", "cluster")


def split_batch(t: float, thresholds_per_attr: int = 4) -> QueryBatch:
    """CART-style candidate-split scoring: variance triples per split.

    Every call produces the same *structure* — the serving workload the
    plan cache exists for — while ``t`` moves all 24 constants.
    """
    queries = []
    for i, attr in enumerate(_SPLIT_ATTRS):
        for j in range(thresholds_per_attr):
            thr = t + i + j
            queries.append(
                parse_query(
                    f"SELECT {attr}, SUM(1), SUM(units), SUM(units*units) "
                    f"FROM D WHERE units <= {thr} GROUP BY {attr}",
                    f"split_{attr}_{j}",
                )
            )
    return QueryBatch(queries)


def _groups(run) -> dict:
    return {name: result.groups for name, result in run.results.items()}


def bench_plan_cache(db, requests: int) -> dict:
    """Cold compile+run vs plan-cache hit on the same rotating workload."""
    # cold: a warmed engine (hot tries) that still compiles every request
    engine = LMFAO(db)
    engine.run(split_batch(2.0))  # warm tries and caches
    cold_times, cold_results = [], {}
    for k in range(requests):
        start = time.perf_counter()
        run = engine.run(split_batch(3.0 + k))
        cold_times.append(time.perf_counter() - start)
        cold_results[k] = _groups(run)

    # hit: the server compiles the structure once, then only re-binds
    server = AggregateServer(db)
    server.run(split_batch(2.0))  # populate the cache, warm tries
    hit_times = []
    for k in range(requests):
        start = time.perf_counter()
        run = server.run(split_batch(3.0 + k))
        hit_times.append(time.perf_counter() - start)
        assert "compile" not in run.timings, "expected a plan-cache hit"
        # correctness gate, independent of strict mode: a re-bound hit
        # must be bit-exact vs the cold compile of the same request
        assert _groups(run) == cold_results[k], (
            f"plan-cache hit diverged from cold compile at request {k}"
        )
    stats = server.stats()
    server.close()
    cold_seconds = min(cold_times)
    hit_seconds = min(hit_times)
    return {
        "num_queries_per_batch": len(split_batch(2.0)),
        "requests": requests,
        "cold_compile_run_seconds": cold_seconds,
        "cache_hit_seconds": hit_seconds,
        "hit_speedup": cold_seconds / hit_seconds,
        "bit_exact_vs_cold_compile": True,
        "plan_cache": {
            "hits": stats.plan_cache.hits,
            "misses": stats.plan_cache.misses,
            "hit_rate": stats.plan_cache.hit_rate,
        },
    }


def bench_mixed_workload(db, rounds: int, readers: int = 3) -> dict:
    """Interleaved query + maintain traffic vs per-version oracles."""
    thresholds = (2.0, 4.0, 6.0)
    batch = lambda t: split_batch(t, thresholds_per_attr=1)  # noqa: E731
    sales = db.relation("Sales")
    update_rounds = [
        {"inserts": {"Sales": [sales.row(i), sales.row(i + 1)]}}
        if i % 3 else {"deletes": {"Sales": [sales.row(i)]}}
        for i in range(rounds)
    ]

    # sequential oracle per version
    oracles: dict[int, dict[float, dict]] = {}
    current = db
    for version in range(rounds + 1):
        if version:
            update = update_rounds[version - 1]
            deltas = normalize_deltas(
                current, update.get("inserts"), update.get("deletes")
            )
            for name, delta in deltas.items():
                current = current.with_relation(
                    delta.apply_to(current.relation(name))
                )
        oracle_engine = LMFAO(current)
        oracles[version] = {
            t: _groups(oracle_engine.run(batch(t))) for t in thresholds
        }

    server = AggregateServer(db)
    handle = server.maintain(batch(thresholds[0]))
    writer_done = threading.Event()
    observations: list[tuple[int, float, dict]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def reader(seed: int) -> None:
        i = seed
        try:
            while not writer_done.is_set():
                t = thresholds[i % len(thresholds)]
                if i % 2:
                    run = server.run(batch(t))
                else:
                    run = server.submit(batch(t)).result(timeout=300)
                with lock:
                    observations.append((run.snapshot_version, t, _groups(run)))
                i += 1
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)]
    for thread in threads:
        thread.start()
    for update in update_rounds:
        handle.apply(**update)
    writer_done.set()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    stats = server.stats()
    server.close()
    if errors:
        raise errors[0]

    # the correctness gate: every read bit-exact for its pinned version
    torn = [
        (version, t)
        for version, t, groups in observations
        if groups != oracles[version][t]
    ]
    assert not torn, f"torn reads (version, threshold): {torn}"
    assert handle.version == rounds
    return {
        "rounds": rounds,
        "reader_threads": readers,
        "concurrent_reads": len(observations),
        "versions_observed": sorted({v for v, _, _ in observations}),
        "seconds": elapsed,
        "bit_exact_vs_sequential_oracle": True,
        "torn_reads": 0,
        "coalesced": stats.coalesced,
    }


def run_bench(scale: float, requests: int, rounds: int) -> dict:
    db = favorita(scale=scale, seed=7)
    print(f"serving bench on Favorita scale={scale} "
          f"({db.total_tuples()} tuples):")
    cache = bench_plan_cache(db, requests)
    print(f"  cold compile+run  {cache['cold_compile_run_seconds'] * 1e3:8.2f} ms"
          f"  ({cache['num_queries_per_batch']} queries/batch)")
    print(f"  plan-cache hit    {cache['cache_hit_seconds'] * 1e3:8.2f} ms"
          f"  → {cache['hit_speedup']:.1f}x")
    mixed = bench_mixed_workload(db, rounds)
    print(f"  mixed workload: {mixed['concurrent_reads']} reads over "
          f"{mixed['rounds']} maintain rounds, 0 torn reads, "
          f"versions {mixed['versions_observed']}")

    report = {
        "bench": "serving",
        "dataset": {"name": "favorita", "scale": scale,
                    "total_tuples": db.total_tuples()},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "plan_cache": cache,
        "mixed_workload": mixed,
    }

    speedup = cache["hit_speedup"]
    strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
    if requests < _ASSERT_MIN_REQUESTS:
        report["hit_speedup_assertion"] = (
            f"skipped: {requests} requests < {_ASSERT_MIN_REQUESTS} (smoke run)"
        )
    elif speedup < 5.0 and not strict:
        report["hit_speedup_assertion"] = f"FAILED (non-strict): {speedup:.2f}x"
        print(f"WARNING: plan-cache hit speedup {speedup:.2f}x < 5x "
              f"(non-strict mode)")
    else:
        assert speedup >= 5.0, (
            f"plan-cache hit only {speedup:.2f}x lower latency than cold "
            f"compile+run (expected >= 5x)"
        )
        report["hit_speedup_assertion"] = f"passed: {speedup:.2f}x"
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="Favorita scale (serving latencies, so small)")
    parser.add_argument("--requests", type=int, default=8,
                        help="timed requests per path (best-of)")
    parser.add_argument("--rounds", type=int, default=6,
                        help="maintain rounds in the mixed workload")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
    )
    args = parser.parse_args(argv)
    report = run_bench(args.scale, args.requests, args.rounds)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
