"""X9 — the serving layer: plan-cache hit latency and isolated mixed traffic.

Measures the two claims the compile-once serving layer makes
(``docs/serving.md``):

* **plan-cache win** — on a structurally repeated batch (a CART-style
  candidate-split workload: same shapes, rotating thresholds), a cache
  hit — constants re-bound, no viewgen/grouping/decomposition/codegen —
  is ≥ 5× lower latency than cold compile+run. Cold latency is measured
  on a *warmed* engine (hot tries), so the ratio isolates exactly what
  the cache removes. Asserted on a full run (``--requests`` ≥ 4) with
  ``LMFAO_BENCH_STRICT=0`` downgrading to a warning on noisy hardware;
  smoke runs record the ratio only. Every hit result is additionally
  checked **bit-exact** against a cold-compiled oracle (hard, always);
* **view-cache win** — on a simulated multi-user workload where every
  user submits the *same* analytical batch under their own query names
  (distinct batch fingerprints → plan-cache misses, identical view
  identities → view-cache hits), a warm view cache serves repeat
  requests ≥ 5× faster than the plan cache alone: the queries root at
  small dimension relations, so the expensive Sales subtree scan lives
  in a cached view and warm runs skip it entirely. Asserted when the
  database is large enough for scan time to dominate dispatch overhead
  (``_VIEWCACHE_ASSERT_MIN_TUPLES``); smoke runs record the ratio only.
  Every seeded run is checked **bit-exact** against the cache-off
  baseline server (hard, always);
* **mixed run/maintain isolation** — reader threads hammer
  ``server.run``/``server.submit`` while a maintained writer applies
  insert/delete rounds; every observed result must be bit-exact against
  the sequential oracle of the exact snapshot version it pinned (zero
  reads of partially-applied deltas). Hard assertion, always — this is a
  correctness gate, not a performance one.

Writes ``BENCH_serving.json``. Run it directly::

    PYTHONPATH=src python benchmarks/bench_serving.py [--scale S] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

from repro import AggregateServer, LMFAO
from repro.data import favorita
from repro.incremental.delta import normalize_deltas
from repro.query import QueryBatch, parse_query

#: below this many timed requests the ≥5× assertion is recorded only
#: (smoke runs measure wiring, not steady-state latency).
_ASSERT_MIN_REQUESTS = 4

#: below this many database tuples the view-cache ≥5× assertion is
#: recorded only: at smoke scale per-request dispatch overhead dominates
#: the scan work the cache removes.
_VIEWCACHE_ASSERT_MIN_TUPLES = 8000

_SPLIT_ATTRS = ("store", "item", "family", "class", "city", "cluster")

#: leaf-relation group-bys: each query roots at a small dimension
#: relation, pushing the expensive Sales scan into a shared subtree view.
_USER_ATTRS = ("family", "class", "city", "cluster")


def split_batch(t: float, thresholds_per_attr: int = 4) -> QueryBatch:
    """CART-style candidate-split scoring: variance triples per split.

    Every call produces the same *structure* — the serving workload the
    plan cache exists for — while ``t`` moves all 24 constants.
    """
    queries = []
    for i, attr in enumerate(_SPLIT_ATTRS):
        for j in range(thresholds_per_attr):
            thr = t + i + j
            queries.append(
                parse_query(
                    f"SELECT {attr}, SUM(1), SUM(units), SUM(units*units) "
                    f"FROM D WHERE units <= {thr} GROUP BY {attr}",
                    f"split_{attr}_{j}",
                )
            )
    return QueryBatch(queries)


def _groups(run) -> dict:
    return {name: result.groups for name, result in run.results.items()}


def bench_plan_cache(db, requests: int) -> dict:
    """Cold compile+run vs plan-cache hit on the same rotating workload."""
    # cold: a warmed engine (hot tries) that still compiles every request
    engine = LMFAO(db)
    engine.run(split_batch(2.0))  # warm tries and caches
    cold_times, cold_results = [], {}
    for k in range(requests):
        start = time.perf_counter()
        run = engine.run(split_batch(3.0 + k))
        cold_times.append(time.perf_counter() - start)
        cold_results[k] = _groups(run)

    # hit: the server compiles the structure once, then only re-binds
    server = AggregateServer(db)
    server.run(split_batch(2.0))  # populate the cache, warm tries
    hit_times = []
    for k in range(requests):
        start = time.perf_counter()
        run = server.run(split_batch(3.0 + k))
        hit_times.append(time.perf_counter() - start)
        assert "compile" not in run.timings, "expected a plan-cache hit"
        # correctness gate, independent of strict mode: a re-bound hit
        # must be bit-exact vs the cold compile of the same request
        assert _groups(run) == cold_results[k], (
            f"plan-cache hit diverged from cold compile at request {k}"
        )
    stats = server.stats()
    server.close()
    cold_seconds = min(cold_times)
    hit_seconds = min(hit_times)
    return {
        "num_queries_per_batch": len(split_batch(2.0)),
        "requests": requests,
        "cold_compile_run_seconds": cold_seconds,
        "cache_hit_seconds": hit_seconds,
        "hit_speedup": cold_seconds / hit_seconds,
        "bit_exact_vs_cold_compile": True,
        "plan_cache": {
            "hits": stats.plan_cache.hits,
            "misses": stats.plan_cache.misses,
            "hit_rate": stats.plan_cache.hit_rate,
        },
    }


def user_batch(user: int) -> QueryBatch:
    """One user's analytical batch: same structure and constants for every
    user, but query names carry the user id — so each user is a plan-cache
    *miss* whose subtree views are nevertheless view-cache *hits*."""
    return QueryBatch(
        [
            parse_query(
                f"SELECT {attr}, SUM(1), SUM(units), SUM(units*units) "
                f"FROM D WHERE units <= 6 GROUP BY {attr}",
                f"user{user}_{attr}",
            )
            for attr in _USER_ATTRS
        ]
    )


def bench_view_cache(db, users: int) -> dict:
    """Multi-user overlapping batches: view-cache warm vs plan-cache-only.

    Both arms see the identical request sequence — every user's batch
    twice. Pass 2 is timed: by then each arm has the user's plan compiled
    (plan-cache hit in both), so the ratio isolates exactly the scan work
    the materialized-view cache removes. Bit-exactness of every seeded
    run against the cache-off baseline is a hard gate.
    """
    # explicit bytes on both arms: the comparison must not depend on the
    # test grid's LMFAO_TEST_VIEWCACHE default override
    warm_server = AggregateServer(db, view_cache_bytes=32 * 1024 * 1024)
    base_server = AggregateServer(db, view_cache_bytes=0)
    warm_times, base_times = [], []
    seeded_requests = 0
    try:
        for user in range(users):
            batch = user_batch(user)
            warm1 = warm_server.run(batch)  # compiles; seeds after user 0
            base1 = base_server.run(batch)
            assert _groups(warm1) == _groups(base1), (
                f"seeded first pass diverged from cache-off baseline "
                f"(user {user})"
            )
            start = time.perf_counter()
            warm2 = warm_server.run(batch)
            warm_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            base2 = base_server.run(batch)
            base_times.append(time.perf_counter() - start)
            assert "compile" not in warm2.timings
            assert "compile" not in base2.timings
            assert _groups(warm2) == _groups(base2), (
                f"seeded warm pass diverged from cache-off baseline "
                f"(user {user})"
            )
            seeded_requests += bool(warm1.skipped_groups) + bool(
                warm2.skipped_groups
            )
        stats = warm_server.stats()
    finally:
        warm_server.close()
        base_server.close()
    base_seconds = min(base_times)
    warm_seconds = min(warm_times)
    view = stats.view_cache
    return {
        "users": users,
        "num_queries_per_batch": len(user_batch(0)),
        "plan_cache_only_seconds": base_seconds,
        "view_cache_warm_seconds": warm_seconds,
        "warm_speedup": base_seconds / warm_seconds,
        "bit_exact_vs_cache_off": True,
        # all users past the first skip work on their *first* request —
        # the cross-fingerprint sharing the cache exists for
        "seeded_requests": seeded_requests,
        "view_cache": {
            "hits": view.hits,
            "misses": view.misses,
            "hit_rate": view.hit_rate,
            "entries": view.entries,
            "bytes": view.weight,
        },
    }


def bench_mixed_workload(db, rounds: int, readers: int = 3) -> dict:
    """Interleaved query + maintain traffic vs per-version oracles."""
    thresholds = (2.0, 4.0, 6.0)
    batch = lambda t: split_batch(t, thresholds_per_attr=1)  # noqa: E731
    sales = db.relation("Sales")
    update_rounds = [
        {"inserts": {"Sales": [sales.row(i), sales.row(i + 1)]}}
        if i % 3 else {"deletes": {"Sales": [sales.row(i)]}}
        for i in range(rounds)
    ]

    # sequential oracle per version
    oracles: dict[int, dict[float, dict]] = {}
    current = db
    for version in range(rounds + 1):
        if version:
            update = update_rounds[version - 1]
            deltas = normalize_deltas(
                current, update.get("inserts"), update.get("deletes")
            )
            for name, delta in deltas.items():
                current = current.with_relation(
                    delta.apply_to(current.relation(name))
                )
        oracle_engine = LMFAO(current)
        oracles[version] = {
            t: _groups(oracle_engine.run(batch(t))) for t in thresholds
        }

    server = AggregateServer(db)
    handle = server.maintain(batch(thresholds[0]))
    writer_done = threading.Event()
    observations: list[tuple[int, float, dict]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def reader(seed: int) -> None:
        i = seed
        try:
            while not writer_done.is_set():
                t = thresholds[i % len(thresholds)]
                if i % 2:
                    run = server.run(batch(t))
                else:
                    run = server.submit(batch(t)).result(timeout=300)
                with lock:
                    observations.append((run.snapshot_version, t, _groups(run)))
                i += 1
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)]
    for thread in threads:
        thread.start()
    for update in update_rounds:
        handle.apply(**update)
    writer_done.set()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    stats = server.stats()
    server.close()
    if errors:
        raise errors[0]

    # the correctness gate: every read bit-exact for its pinned version
    torn = [
        (version, t)
        for version, t, groups in observations
        if groups != oracles[version][t]
    ]
    assert not torn, f"torn reads (version, threshold): {torn}"
    assert handle.version == rounds
    return {
        "rounds": rounds,
        "reader_threads": readers,
        "concurrent_reads": len(observations),
        "versions_observed": sorted({v for v, _, _ in observations}),
        "seconds": elapsed,
        "bit_exact_vs_sequential_oracle": True,
        "torn_reads": 0,
        "coalesced": stats.coalesced,
    }


def run_bench(
    scale: float, requests: int, rounds: int, view_scale: float | None = None
) -> dict:
    db = favorita(scale=scale, seed=7)
    print(f"serving bench on Favorita scale={scale} "
          f"({db.total_tuples()} tuples):")
    cache = bench_plan_cache(db, requests)
    print(f"  cold compile+run  {cache['cold_compile_run_seconds'] * 1e3:8.2f} ms"
          f"  ({cache['num_queries_per_batch']} queries/batch)")
    print(f"  plan-cache hit    {cache['cache_hit_seconds'] * 1e3:8.2f} ms"
          f"  → {cache['hit_speedup']:.1f}x")
    # the two cache claims want opposite scales: plan-cache hits shine
    # where compile dominates (small), view-cache hits where scan work
    # dominates (large) — so the view arm gets its own dataset
    if view_scale is None or view_scale == scale:
        view_db, view_scale = db, scale
    else:
        view_db = favorita(scale=view_scale, seed=7)
    views = bench_view_cache(view_db, users=max(requests // 2, 2))
    views["dataset"] = {
        "name": "favorita",
        "scale": view_scale,
        "total_tuples": view_db.total_tuples(),
    }
    print(f"  plan-cache only   {views['plan_cache_only_seconds'] * 1e3:8.2f} ms"
          f"  ({views['users']} users, {views['num_queries_per_batch']} "
          f"queries/batch)")
    print(f"  view-cache warm   {views['view_cache_warm_seconds'] * 1e3:8.2f} ms"
          f"  → {views['warm_speedup']:.1f}x  "
          f"(hit rate {views['view_cache']['hit_rate']:.2f})")
    mixed = bench_mixed_workload(db, rounds)
    print(f"  mixed workload: {mixed['concurrent_reads']} reads over "
          f"{mixed['rounds']} maintain rounds, 0 torn reads, "
          f"versions {mixed['versions_observed']}")

    report = {
        "bench": "serving",
        "dataset": {"name": "favorita", "scale": scale,
                    "total_tuples": db.total_tuples()},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "plan_cache": cache,
        "view_cache": views,
        "mixed_workload": mixed,
    }

    speedup = cache["hit_speedup"]
    strict = os.environ.get("LMFAO_BENCH_STRICT", "1") != "0"
    if requests < _ASSERT_MIN_REQUESTS:
        report["hit_speedup_assertion"] = (
            f"skipped: {requests} requests < {_ASSERT_MIN_REQUESTS} (smoke run)"
        )
    elif speedup < 5.0 and not strict:
        report["hit_speedup_assertion"] = f"FAILED (non-strict): {speedup:.2f}x"
        print(f"WARNING: plan-cache hit speedup {speedup:.2f}x < 5x "
              f"(non-strict mode)")
    else:
        assert speedup >= 5.0, (
            f"plan-cache hit only {speedup:.2f}x lower latency than cold "
            f"compile+run (expected >= 5x)"
        )
        report["hit_speedup_assertion"] = f"passed: {speedup:.2f}x"

    warm_speedup = views["warm_speedup"]
    tuples = views["dataset"]["total_tuples"]
    if tuples < _VIEWCACHE_ASSERT_MIN_TUPLES:
        report["view_cache_speedup_assertion"] = (
            f"skipped: {tuples} tuples < {_VIEWCACHE_ASSERT_MIN_TUPLES} "
            f"(smoke run)"
        )
    elif warm_speedup < 5.0 and not strict:
        report["view_cache_speedup_assertion"] = (
            f"FAILED (non-strict): {warm_speedup:.2f}x"
        )
        print(f"WARNING: view-cache warm speedup {warm_speedup:.2f}x < 5x "
              f"(non-strict mode)")
    else:
        assert warm_speedup >= 5.0, (
            f"warm view cache only {warm_speedup:.2f}x faster than "
            f"plan-cache-only serving (expected >= 5x)"
        )
        report["view_cache_speedup_assertion"] = f"passed: {warm_speedup:.2f}x"
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="Favorita scale (serving latencies, so small)")
    parser.add_argument("--requests", type=int, default=8,
                        help="timed requests per path (best-of)")
    parser.add_argument("--rounds", type=int, default=6,
                        help="maintain rounds in the mixed workload")
    parser.add_argument("--view-scale", type=float, default=0.3,
                        help="Favorita scale for the view-cache arm "
                             "(scan-bound, so larger than --scale)")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
    )
    args = parser.parse_args(argv)
    report = run_bench(args.scale, args.requests, args.rounds, args.view_scale)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
