"""X7 — incremental maintenance: apply-delta vs from-scratch recompute.

The claim: once a batch is compiled, refreshing its results after a data
change costs the affected path — not the database. Sweeps update-batch
sizes on the fact table (dirties the most groups) and a dimension leaf
(dirties the fewest), comparing ``handle.apply`` against a full
``run()`` on a fresh engine (cold tries + recompilation, i.e. what a
non-incremental deployment would pay per refresh).
"""

from __future__ import annotations

import time

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE, example_queries

from benchmarks.conftest import report

_UPDATE_SIZES = (1, 10, 100, 1000)


def _measure(handle, relation: str, size: int) -> tuple[float, float]:
    source = handle.database.relation(relation)
    rows = [source.row(i % source.num_rows) for i in range(size)]
    start = time.perf_counter()
    handle.apply(inserts={relation: rows})
    apply_seconds = time.perf_counter() - start
    start = time.perf_counter()
    handle.recompute()
    recompute_seconds = time.perf_counter() - start
    return apply_seconds, recompute_seconds


def test_apply_vs_recompute_fact_table(benchmark, favorita_engine_bench):
    handle = favorita_engine_bench.maintain(example_queries())
    measured: list[tuple[int, float, float]] = []

    def sweep():
        measured.clear()
        for size in _UPDATE_SIZES:
            apply_s, recompute_s = _measure(handle, "Sales", size)
            measured.append((size, apply_s, recompute_s))
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, apply_s, recompute_s in measured:
        report(
            "X7 incremental (Sales)",
            f"Δ={size} inserts",
            "apply ≪ recompute",
            f"{apply_s * 1e3:.1f} ms vs {recompute_s * 1e3:.1f} ms "
            f"({recompute_s / apply_s:.0f}x)",
        )
    # the acceptance claim: small update batches beat full recompute
    for size, apply_s, recompute_s in measured:
        if size <= 10:
            assert apply_s < recompute_s, (size, apply_s, recompute_s)


def test_apply_vs_recompute_dimension_leaf(benchmark, favorita_engine_bench):
    """Updates off the hot path skip most groups (dirty-path scheduling)."""
    engine = LMFAO(
        favorita_engine_bench.db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    )
    handle = engine.maintain(example_queries())
    measured: list[tuple[int, float, float]] = []

    def sweep():
        measured.clear()
        for size in (1, 10, 100):
            apply_s, recompute_s = _measure(handle, "Items", size)
            measured.append((size, apply_s, recompute_s))
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, apply_s, recompute_s in measured:
        report(
            "X7 incremental (Items)",
            f"Δ={size} inserts",
            "apply ≪ recompute",
            f"{apply_s * 1e3:.1f} ms vs {recompute_s * 1e3:.1f} ms "
            f"({recompute_s / apply_s:.0f}x)",
        )
        assert apply_s < recompute_s


def test_numeric_vs_rescan_mode(benchmark, favorita_bench):
    """The O(|Δ|) numeric step vs full-trie rescan at the changed node."""
    measured: dict[str, float] = {}

    def sweep():
        measured.clear()
        for mode in ("numeric", "rescan"):
            engine = LMFAO(
                favorita_bench,
                EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_mode=mode),
            )
            handle = engine.maintain(example_queries())
            source = handle.database.relation("Sales")
            rows = [source.row(i) for i in range(10)]
            start = time.perf_counter()
            for _ in range(5):
                handle.apply(inserts={"Sales": rows})
            measured[mode] = (time.perf_counter() - start) / 5
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "X7 incremental modes",
        "numeric vs rescan, Δ=10 on Sales",
        "numeric ≤ rescan",
        f"{measured['numeric'] * 1e3:.1f} ms vs {measured['rescan'] * 1e3:.1f} ms",
    )
