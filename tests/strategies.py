"""Hypothesis strategies: random acyclic databases and query batches.

The differential property test is the correctness anchor of the repo: for
any tree-shaped schema, any data and any sum-product aggregate batch, the
LMFAO engine must agree with brute-force evaluation over the materialised
join. These strategies generate such instances, deliberately small (the
oracle is quadratic-ish) but structurally diverse: variable tree shapes,
shared group-by attributes, empty-join corners, duplicate rows, predicates
and multi-aggregate queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from hypothesis import strategies as st

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.query.aggregates import Aggregate, Factor, OrderSpec
from repro.query.batch import QueryBatch
from repro.query.functions import identity, square
from repro.query.predicates import Op, Predicate
from repro.query.query import Query


@dataclass
class Instance:
    """One generated test case: database plus batch."""

    db: Database
    batch: QueryBatch

    def __repr__(self) -> str:  # keep hypothesis failure output readable
        rels = ", ".join(
            f"{r.name}({','.join(r.attribute_names)})x{r.num_rows}"
            for r in self.db.relations
        )
        return f"Instance[{rels}; {list(self.batch.queries)}]"


@st.composite
def databases(draw, max_relations: int = 4, max_rows: int = 24) -> Database:
    """Tree-shaped random databases.

    Relation ``R0`` is the root; each later relation shares exactly one
    join attribute with a previously created relation, which guarantees an
    acyclic (tree) schema. Every relation gets 0–2 private attributes
    (categorical or continuous) and small integer-valued columns so that
    joins have collisions and group-bys have repeats.
    """
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    num_relations = draw(st.integers(2, max_relations))
    attr_counter = 0

    def fresh_attr(kind: str) -> Attribute:
        nonlocal attr_counter
        attr_counter += 1
        name = f"{kind[0]}{attr_counter}"
        return (
            Attribute.categorical(name)
            if kind == "key" or kind == "cat"
            else Attribute.continuous(name)
        )

    relations: list[Relation] = []
    join_attrs: list[Attribute] = []
    for i in range(num_relations):
        attrs: list[Attribute] = []
        if i == 0:
            attrs.append(fresh_attr("key"))
        else:
            parent_attr = draw(st.sampled_from(join_attrs))
            attrs.append(parent_attr)
            if draw(st.booleans()):
                attrs.append(fresh_attr("key"))
        for _ in range(draw(st.integers(0, 2))):
            attrs.append(fresh_attr(draw(st.sampled_from(["cat", "num"]))))
        join_attrs.extend(a for a in attrs if a.name.startswith("k"))

        num_rows = draw(st.integers(0, max_rows))
        columns = {}
        for attr in attrs:
            if attr.name.startswith("k"):
                columns[attr.name] = rng.integers(0, 5, size=num_rows)
            elif attr.kind.name == "CATEGORICAL":
                columns[attr.name] = rng.integers(0, 4, size=num_rows)
            else:
                columns[attr.name] = rng.integers(-3, 7, size=num_rows).astype(float)
        relations.append(Relation(RelationSchema(f"R{i}", tuple(attrs)), columns))
    return Database(relations, name="random")


@st.composite
def queries_for(draw, db: Database, name: str) -> Query:
    """A random sum-product group-by aggregate over ``db``."""
    attrs = list(db.schema.all_attributes)
    group_by = tuple(
        draw(
            st.lists(st.sampled_from(attrs), max_size=2, unique=True)
        )
    )
    aggregates = []
    for _ in range(draw(st.integers(1, 3))):
        num_factors = draw(st.integers(0, 3))
        factors = []
        for _ in range(num_factors):
            attr = draw(st.sampled_from(attrs))
            func = draw(st.sampled_from([identity, square]))
            factors.append(Factor(attr, func))
        aggregates.append(Aggregate(tuple(factors)))
    where = ()
    if draw(st.booleans()):
        attr = draw(st.sampled_from(attrs))
        op = draw(st.sampled_from(list(Op)))
        where = (Predicate(attr, op, float(draw(st.integers(-2, 6)))),)
    return Query(
        name=name, group_by=group_by, aggregates=tuple(aggregates), where=where
    )


@st.composite
def instances(draw, max_queries: int = 3) -> Instance:
    """A database plus a batch of random queries over it."""
    db = draw(databases())
    num_queries = draw(st.integers(1, max_queries))
    batch = QueryBatch(
        [draw(queries_for(db, f"Q{i}")) for i in range(num_queries)]
    )
    return Instance(db=db, batch=batch)


@st.composite
def ordered_queries_for(draw, db: Database, name: str) -> Query:
    """A random ordered / top-k-per-group query over ``db``.

    Adversarial by construction: the ``"ties"`` regime orders by a count
    (or empty-product) aggregate whose value is the join multiplicity —
    on small integer data that collides across many groups, including
    the all-groups-equal extreme — so the residual-key tie-break is load
    bearing, not decorative. ``limit`` draws cover ``k = 0``, ``k = 1``,
    ``k`` larger than any group count, and unlimited (pure ORDER BY);
    ``partition_by`` may equal the whole group-by (every partition a
    single row). Empty partitions/groups come from the database
    generator's 0-row and disjoint-key corners.
    """
    attrs = list(db.schema.all_attributes)
    group_by = tuple(
        draw(
            st.lists(st.sampled_from(attrs), min_size=1, max_size=3, unique=True)
        )
    )
    tie_regime = draw(st.sampled_from(["ties", "ties", "mixed"]))
    aggregates = []
    for _ in range(draw(st.integers(1, 2))):
        if tie_regime == "ties":
            aggregates.append(Aggregate.count())
        else:
            factors = tuple(
                Factor(
                    draw(st.sampled_from(attrs)),
                    draw(st.sampled_from([identity, square])),
                )
                for _ in range(draw(st.integers(0, 2)))
            )
            aggregates.append(Aggregate(factors))
    partition_by = tuple(
        draw(
            st.lists(
                st.sampled_from(group_by),
                max_size=len(group_by),
                unique=True,
            )
        )
    )
    order_by = OrderSpec(
        agg_index=draw(st.integers(0, len(aggregates) - 1)),
        descending=draw(st.booleans()),
        partition_by=partition_by,
    )
    limit = draw(st.sampled_from([None, None, 0, 1, 2, 3, 100]))
    where = ()
    if draw(st.booleans()):
        attr = draw(st.sampled_from(attrs))
        op = draw(st.sampled_from(list(Op)))
        where = (Predicate(attr, op, float(draw(st.integers(-2, 6)))),)
    return Query(
        name=name,
        group_by=group_by,
        aggregates=tuple(aggregates),
        where=where,
        order_by=order_by,
        limit=limit,
    )


@st.composite
def ordered_instances(draw, max_queries: int = 3) -> Instance:
    """A database plus a batch mixing ordered and plain queries.

    At least one query is ordered; plain queries ride along so ordered
    and unordered emissions share views and groups within one batch —
    the ordered differential grids run these against the sorted-Python
    oracle (:mod:`tests.oracle`).
    """
    db = draw(databases())
    num_queries = draw(st.integers(1, max_queries))
    queries = [draw(ordered_queries_for(db, "Q0"))]
    for i in range(1, num_queries):
        if draw(st.booleans()):
            queries.append(draw(ordered_queries_for(db, f"Q{i}")))
        else:
            queries.append(draw(queries_for(db, f"Q{i}")))
    return Instance(db=db, batch=QueryBatch(queries))


@st.composite
def carried_instances(draw, max_rows: int = 24) -> Instance:
    """Instances whose plans are *guaranteed* to contain carried blocks.

    Two relations joined on ``k``, each with a private categorical
    attribute; a query grouping by both privates forces the root node's
    incoming view to carry the non-local attribute, whichever node the
    planner roots the query at. Random extra queries ride along so
    carried and non-carried groups coexist in one batch, and the data
    keeps the generator's empty/duplicate corners (0-row relations,
    disjoint join keys, repeated entries per key).
    """
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    rows0 = draw(st.integers(0, max_rows))
    rows1 = draw(st.integers(0, max_rows))
    # overlapping-or-not key domains: disjoint draws exercise the all-miss
    # (dead alive-mask) carried path
    lo1 = draw(st.sampled_from([0, 0, 0, 5]))
    r0 = Relation(
        RelationSchema(
            "R0",
            (
                Attribute.categorical("k1"),
                Attribute.categorical("c2"),
                Attribute.continuous("n3"),
            ),
        ),
        {
            "k1": rng.integers(0, 5, rows0),
            "c2": rng.integers(0, 4, rows0),
            "n3": rng.integers(-3, 7, rows0).astype(float),
        },
    )
    r1 = Relation(
        RelationSchema(
            "R1",
            (
                Attribute.categorical("k1"),
                Attribute.categorical("c4"),
                Attribute.continuous("n5"),
            ),
        ),
        {
            "k1": rng.integers(lo1, lo1 + 5, rows1),
            "c4": rng.integers(0, 4, rows1),
            "n5": rng.integers(-2, 6, rows1).astype(float),
        },
    )
    db = Database([r0, r1], name="carried")
    aggregates = []
    for _ in range(draw(st.integers(1, 2))):
        factors = tuple(
            Factor(draw(st.sampled_from(["n3", "n5", "c2"])), draw(
                st.sampled_from([identity, square])
            ))
            for _ in range(draw(st.integers(0, 2)))
        )
        aggregates.append(Aggregate(factors))
    cross = Query(
        name="Qcross",
        group_by=("c2", "c4"),
        aggregates=tuple(aggregates),
    )
    extra = [
        draw(queries_for(db, f"Q{i}"))
        for i in range(draw(st.integers(0, 2)))
    ]
    return Instance(db=db, batch=QueryBatch([cross, *extra]))
