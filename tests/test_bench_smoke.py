"""Smoke-runs of the standalone benchmark scripts so they can't rot.

``benchmarks/bench_parallel.py``, ``benchmarks/bench_serving.py`` and
``benchmarks/bench_writes.py`` live
outside the package and are only exercised by CI's benchmark jobs
otherwise; these tiny runs keep their wiring (grids, built-in
bit-exactness assertions, report schemas) under the tier-1 suite. The
performance gates (≥5× numpy, ≥5× plan-cache hit) are size-gated inside
the scripts and only *recorded* at smoke scale — but every correctness
assertion (bit-exactness, zero torn reads) is hard at any scale.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench(name: str):
    spec = importlib.util.spec_from_file_location(
        f"{name}_smoke", _BENCHMARKS / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_parallel_grid_smoke(tmp_path):
    bench = _load_bench("bench_parallel")
    out = tmp_path / "BENCH_parallel.json"
    assert bench.main(["--rows", "3000", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    backends = {point["backend"] for point in report["grid"]}
    assert {"python", "numpy"} <= backends  # c only where gcc exists
    assert all(
        point["bit_exact_vs_sequential_python"] for point in report["grid"]
    )
    assert report["numpy_over_python_sequential"] > 0
    assert "skipped" in report["numpy_speedup_assertion"]
    # numpy runs every group natively at every grid point — the scaling
    # batch and the carried-heavy batch alike (no silent fallbacks)
    for point in report["grid"] + report["carried_grid"]:
        if point["backend"] == "numpy":
            assert point["native_groups"] == point["num_groups"]
    # the carried leg covers the full workers × partitions grid, bit-exact
    assert len(report["carried_grid"]) == 4
    assert all(
        point["bit_exact_vs_sequential_python"]
        for point in report["carried_grid"]
    )
    assert report["numpy_over_python_sequential_carried"] > 0
    assert "skipped" in report["carried_numpy_speedup_assertion"]
    # the process-executor column: one point per backend at workers=4,
    # partitions=4, each bit-exact against the sequential Python baseline;
    # the >=3x gate is core- and row-gated, so a smoke run records a skip
    process_backends = {point["backend"] for point in report["process_grid"]}
    assert {"python", "numpy"} <= process_backends
    assert all(
        point["executor"] == "process"
        and point["workers"] == 4
        and point["partitions"] == 4
        and point["bit_exact_vs_sequential_python"]
        for point in report["process_grid"]
    )
    assert report["process_speedup_4workers_vs_sequential_python"] > 0
    assert "skipped" in report["process_speedup_assertion"]
    # the ordered top-k arm: every engine point reproduces the
    # sort-the-flat-join ranking as a sequence and records the finishing
    # kernel per ordered query; the >=3x gate is row-gated like the rest
    topk = report["topk_grid"]
    assert {"python", "numpy"} <= {point["backend"] for point in topk}
    assert any(
        (point["backend"], point["workers"], point["partitions"])
        == ("numpy", 4, 4)
        for point in topk
    )
    for point in topk:
        assert point["ordered_exact_vs_flat_baseline"]
        assert set(point["kernels"]) == {"t_top_keys_per_g", "t_top_h"}
        assert set(point["kernels"].values()) <= {"heap", "sort"}
    assert report["topk_flat_baseline_seconds"] > 0
    assert report["topk_factorised_over_flat_sort"] > 0
    assert "skipped" in report["topk_speedup_assertion"]


def test_bench_writes_smoke(tmp_path):
    """The CI smoke gate of the write-path acceptance criteria: grouped
    commits must be bit-exact vs the sequential oracle, snapshot GC must
    bound the live-version count, and the injected fault must leave the
    server serving on the last good version (all hard at any scale); the
    ≥100 writes/s gate is recorded at smoke write counts and asserted on
    full runs."""
    bench = _load_bench("bench_writes")
    out = tmp_path / "BENCH_writes.json"
    argv = ["--scale", "0.02", "--writes", "40", "--writers", "2",
            "--readers", "1", "--out", str(out)]
    assert bench.main(argv) == 0
    report = json.loads(out.read_text())
    result = report["group_commit"]
    assert result["bit_exact_vs_sequential_oracle"]
    assert result["writes_per_second"] > 0
    assert result["committed_groups"] <= result["writes"]
    assert result["max_live_snapshots"] <= result["live_snapshot_bound"]
    fault = result["fault_containment"]
    assert fault["served_last_good_version"]
    assert fault["flush_returned"]
    assert fault["committer_survived"]
    assert "skipped" in report["write_rate_assertion"]


def test_bench_serving_smoke(tmp_path):
    """The CI smoke gate of the serving acceptance criteria: the mixed
    run/maintain workload must be bit-exact vs the sequential oracle with
    zero torn reads (hard), while the ≥5× hit-latency gate is recorded
    at smoke request counts and asserted on full runs."""
    bench = _load_bench("bench_serving")
    out = tmp_path / "BENCH_serving.json"
    argv = ["--scale", "0.02", "--view-scale", "0.02", "--requests", "2",
            "--rounds", "3", "--out", str(out)]
    assert bench.main(argv) == 0
    report = json.loads(out.read_text())
    cache = report["plan_cache"]
    assert cache["bit_exact_vs_cold_compile"]
    assert cache["hit_speedup"] > 0
    assert cache["plan_cache"]["misses"] == 1  # one structure, compiled once
    views = report["view_cache"]
    assert views["bit_exact_vs_cache_off"]
    assert views["warm_speedup"] > 0
    # cross-fingerprint sharing: user 0's second pass plus both of every
    # later user's passes run seeded from the cache
    assert views["seeded_requests"] == 2 * views["users"] - 1
    assert views["view_cache"]["hits"] > 0
    assert 0 < views["view_cache"]["hit_rate"] <= 1
    mixed = report["mixed_workload"]
    assert mixed["bit_exact_vs_sequential_oracle"]
    assert mixed["torn_reads"] == 0
    assert mixed["concurrent_reads"] > 0
    assert "skipped" in report["hit_speedup_assertion"]
    assert "skipped" in report["view_cache_speedup_assertion"]
