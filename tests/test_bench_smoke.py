"""Smoke-run of the three-backend grid benchmark so the script can't rot.

``benchmarks/bench_parallel.py`` lives outside the package and is only
exercised by CI's benchmark job otherwise; this tiny-dataset run keeps its
grid wiring (three backends × workers × partitions, built-in bit-exactness
assertions, report schema) under the tier-1 suite. The ≥5× numpy speedup
gate is row-gated inside the script and only *recorded* at smoke scale.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_parallel.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_parallel_smoke", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_parallel_grid_smoke(tmp_path):
    bench = _load_bench()
    out = tmp_path / "BENCH_parallel.json"
    assert bench.main(["--rows", "3000", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    backends = {point["backend"] for point in report["grid"]}
    assert {"python", "numpy"} <= backends  # c only where gcc exists
    assert all(
        point["bit_exact_vs_sequential_python"] for point in report["grid"]
    )
    assert report["numpy_over_python_sequential"] > 0
    assert "skipped" in report["numpy_speedup_assertion"]
    # numpy runs every group natively at every grid point — the scaling
    # batch and the carried-heavy batch alike (no silent fallbacks)
    for point in report["grid"] + report["carried_grid"]:
        if point["backend"] == "numpy":
            assert point["native_groups"] == point["num_groups"]
    # the carried leg covers the full workers × partitions grid, bit-exact
    assert len(report["carried_grid"]) == 4
    assert all(
        point["bit_exact_vs_sequential_python"]
        for point in report["carried_grid"]
    )
    assert report["numpy_over_python_sequential_carried"] > 0
    assert "skipped" in report["carried_numpy_speedup_assertion"]
