"""CSV round-trips for relations and databases."""

import pytest

from repro.data import favorita
from repro.data.csvio import load_database, load_relation, save_database, save_relation
from repro.util.errors import SchemaError


def test_relation_round_trip(tmp_path, favorita_db):
    original = favorita_db.relation("Sales")
    path = tmp_path / "sales.csv"
    save_relation(original, path)
    loaded = load_relation(path, name="Sales")
    assert loaded == original
    assert loaded.schema.attributes == original.schema.attributes


def test_database_round_trip(tmp_path):
    db = favorita(scale=0.02, seed=5)
    save_database(db, tmp_path / "fav")
    loaded = load_database(tmp_path / "fav")
    assert loaded.name == db.name
    assert loaded.relation_names == db.relation_names
    for name in db.relation_names:
        assert loaded.relation(name) == db.relation(name)


def test_load_database_requires_manifest(tmp_path):
    with pytest.raises(SchemaError):
        load_database(tmp_path)


def test_load_relation_rejects_bad_header(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("a:q\n1\n")
    with pytest.raises(SchemaError):
        load_relation(bad)


def test_load_relation_rejects_empty(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(SchemaError):
        load_relation(empty)
