"""CSR trie index: run structure, child spans, prefix sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Attribute, Relation, RelationSchema, TrieIndex
from repro.util.errors import PlanError

C = Attribute.categorical
F = Attribute.continuous


@pytest.fixture()
def relation():
    schema = RelationSchema("R", (C("a"), C("b"), F("x")))
    return Relation(
        schema,
        {
            "a": [2, 1, 2, 1, 2, 2],
            "b": [1, 3, 1, 3, 2, 1],
            "x": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        },
    )


def test_level_structure(relation):
    trie = TrieIndex(relation, ("a", "b"))
    level0 = trie.level(0)
    assert list(level0.values) == [1, 2]
    assert list(level0.row_start) == [0, 2]
    assert list(level0.row_end) == [2, 6]
    level1 = trie.level(1)
    # runs: (1,3), (2,1), (2,2)
    assert list(level1.values) == [3, 1, 2]
    assert list(level1.row_end - level1.row_start) == [2, 3, 1]
    # child spans of level0 runs cover level1 runs [0,1) and [1,3)
    assert list(level0.child_start) == [0, 1]
    assert list(level0.child_end) == [1, 3]


def test_deepest_level_child_spans_are_rows(relation):
    trie = TrieIndex(relation, ("a", "b"))
    deepest = trie.level(1)
    assert list(deepest.child_start) == list(deepest.row_start)
    assert list(deepest.child_end) == list(deepest.row_end)


def test_empty_relation():
    schema = RelationSchema("R", (C("a"),))
    trie = TrieIndex(Relation(schema, {"a": []}), ("a",))
    assert trie.level(0).num_runs == 0
    assert trie.num_rows == 0


def test_empty_order(relation):
    trie = TrieIndex(relation, ())
    assert trie.levels == []
    assert trie.num_rows == 6


def test_order_validation(relation):
    with pytest.raises(PlanError):
        TrieIndex(relation, ("a", "a"))
    with pytest.raises(PlanError):
        TrieIndex(relation, ("nope",))


def test_prefix_sum_ranges(relation):
    trie = TrieIndex(relation, ("a", "b"))
    psum = trie.prefix_sum("x", lambda rel: rel.column("x"))
    sorted_x = trie.column("x")
    level0 = trie.level(0)
    for i in range(level0.num_runs):
        lo, hi = level0.row_start[i], level0.row_end[i]
        assert psum[hi] - psum[lo] == pytest.approx(sorted_x[lo:hi].sum())
    # cached: same object back
    assert trie.prefix_sum("x", lambda rel: rel.column("x")) is psum


def test_prefix_sum_shape_check(relation):
    trie = TrieIndex(relation, ("a",))
    with pytest.raises(PlanError):
        trie.prefix_sum("bad", lambda rel: np.ones(3))


def test_level_lists_and_functions(relation):
    trie = TrieIndex(relation, ("a", "b"))
    vals, rs, re_, cs, ce = trie.level_lists(0)
    assert vals == [1, 2]
    assert isinstance(vals[0], int)
    farr = trie.level_function_values(0, "sq", lambda v: v.astype(float) ** 2)
    assert farr == [1.0, 4.0]
    plist = trie.prefix_sum_list("x", lambda rel: rel.column("x"))
    assert plist[0] == 0.0 and len(plist) == 7


@given(seed=st.integers(0, 500), n=st.integers(0, 60))
@settings(max_examples=25, deadline=None)
def test_runs_partition_rows(seed, n):
    """Trie invariant: every level's runs partition the sorted rows, and
    child spans partition the next level."""
    rng = np.random.default_rng(seed)
    schema = RelationSchema("R", (C("a"), C("b"), C("c")))
    relation = Relation(
        schema,
        {k: rng.integers(0, 4, n) for k in ("a", "b", "c")},
    )
    trie = TrieIndex(relation, ("a", "b", "c"))
    for k, level in enumerate(trie.levels):
        # rows partitioned: starts are strictly increasing, contiguous
        assert list(level.row_start[1:]) == list(level.row_end[:-1])
        if level.num_runs:
            assert level.row_start[0] == 0
            assert level.row_end[-1] == n
        # runs have constant prefix values
        col = trie.column(level.attribute)
        for i in range(level.num_runs):
            lo, hi = level.row_start[i], level.row_end[i]
            assert (col[lo:hi] == level.values[i]).all()
        if k + 1 < len(trie.levels):
            child = trie.level(k + 1)
            assert list(level.child_start[1:]) == list(level.child_end[:-1])
            if level.num_runs:
                assert level.child_end[-1] == child.num_runs


# ----------------------------------------------------------------- partitions
def test_partitions_split_level0_runs(relation):
    trie = TrieIndex(relation, ("a", "b"))
    parts = trie.partitions(2)
    assert len(parts) == 2
    # disjoint level-0 values, in run order
    assert [list(p.level(0).values) for p in parts] == [[1], [2]]
    # rows are covered exactly once
    assert sum(p.num_rows for p in parts) == trie.num_rows
    # each partition is a self-contained index over the same order
    for p in parts:
        assert p.order == trie.order
        assert p.level(0).row_start[0] == 0


def test_partitions_unsplittable_cases(relation):
    single_run = Relation(
        RelationSchema("S", (C("a"), F("x"))), {"a": [7, 7, 7], "x": [1.0, 2.0, 3.0]}
    )
    empty = Relation(RelationSchema("E", (C("a"),)), {"a": []})
    for trie in (
        TrieIndex(single_run, ("a",)),  # one level-0 run
        TrieIndex(empty, ("a",)),  # empty relation
        TrieIndex(relation, ()),  # no levels at all
    ):
        assert trie.partitions(4) == [trie]
    # k <= 1 never splits
    trie = TrieIndex(relation, ("a", "b"))
    assert trie.partitions(1) == [trie]


def test_partitions_k_exceeding_runs_caps_at_runs(relation):
    trie = TrieIndex(relation, ("a", "b"))  # two level-0 runs
    parts = trie.partitions(5)
    assert 1 <= len(parts) <= 2
    assert sum(p.num_rows for p in parts) == trie.num_rows
    for p in parts:
        assert p.num_rows > 0  # never an empty partition


@given(seed=st.integers(0, 500), n=st.integers(0, 80), k=st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_partitions_reconstruct_the_whole_index(seed, n, k):
    """Partitions are disjoint, ordered, exhaustive, and structurally sound."""
    rng = np.random.default_rng(seed)
    schema = RelationSchema("R", (C("a"), C("b"), F("x")))
    relation = Relation(
        schema,
        {
            "a": rng.integers(0, 6, n),
            "b": rng.integers(0, 3, n),
            "x": rng.integers(-4, 5, n).astype(float),
        },
    )
    trie = TrieIndex(relation, ("a", "b"))
    parts = trie.partitions(k)
    assert 1 <= len(parts) <= max(1, k)
    assert sum(p.num_rows for p in parts) == trie.num_rows
    # level-0 values: disjoint across partitions, concatenating to the whole
    merged_values = [v for p in parts for v in p.level(0).values]
    assert merged_values == list(trie.level(0).values)
    # sorted rows concatenate to the trie's sorted relation
    for name in ("a", "b", "x"):
        merged = np.concatenate([p.relation.column(name) for p in parts])
        assert np.array_equal(merged, trie.relation.column(name))
    # per-partition prefix sums agree with slices of the whole
    whole = trie.prefix_sum("x", lambda rel: rel.column("x"))
    offset = 0
    for p in parts:
        local = p.prefix_sum("x", lambda rel: rel.column("x"))
        assert local[-1] == pytest.approx(whole[offset + p.num_rows] - whole[offset])
        offset += p.num_rows
