"""Schema validation rules."""

import pytest

from repro.data import Attribute, AttributeKind, DatabaseSchema, RelationSchema
from repro.util.errors import SchemaError


def test_attribute_kinds_have_dtypes():
    assert Attribute.categorical("a").kind.numpy_dtype().kind == "i"
    assert Attribute.continuous("b").kind.numpy_dtype().kind == "f"


def test_attribute_name_must_be_identifier():
    with pytest.raises(SchemaError):
        Attribute("not a name")
    with pytest.raises(SchemaError):
        Attribute("")


def test_relation_schema_rejects_duplicates():
    with pytest.raises(SchemaError):
        RelationSchema("R", (Attribute.categorical("a"), Attribute.continuous("a")))


def test_relation_schema_rejects_empty():
    with pytest.raises(SchemaError):
        RelationSchema("R", ())


def test_relation_schema_lookup():
    schema = RelationSchema("R", (Attribute.categorical("a"), Attribute.continuous("b")))
    assert schema.attribute("b").kind is AttributeKind.CONTINUOUS
    assert "a" in schema
    assert "z" not in schema
    with pytest.raises(SchemaError):
        schema.attribute("z")


def test_database_schema_rejects_kind_conflicts():
    r1 = RelationSchema("R1", (Attribute.categorical("x"),))
    r2 = RelationSchema("R2", (Attribute.continuous("x"),))
    with pytest.raises(SchemaError):
        DatabaseSchema([r1, r2])


def test_database_schema_rejects_duplicate_relations():
    r = RelationSchema("R", (Attribute.categorical("x"),))
    with pytest.raises(SchemaError):
        DatabaseSchema([r, r])


def test_database_schema_shared_attributes():
    r1 = RelationSchema("R1", (Attribute.categorical("x"), Attribute.categorical("y")))
    r2 = RelationSchema("R2", (Attribute.categorical("y"), Attribute.categorical("z")))
    schema = DatabaseSchema([r1, r2])
    assert schema.shared_attributes("R1", "R2") == ("y",)
    assert schema.relations_with("y") == ("R1", "R2")
    assert schema.attribute_kind("z") is AttributeKind.CATEGORICAL
    with pytest.raises(SchemaError):
        schema.attribute_kind("nope")
    with pytest.raises(SchemaError):
        schema.relation("nope")


def test_database_schema_all_attributes_order():
    r1 = RelationSchema("R1", (Attribute.categorical("b"), Attribute.categorical("a")))
    r2 = RelationSchema("R2", (Attribute.categorical("a"), Attribute.categorical("c")))
    schema = DatabaseSchema([r1, r2])
    assert schema.all_attributes == ("b", "a", "c")
