"""Database catalog: statistics and the materialised join."""

import pytest

from repro.data import Attribute, Database, Relation, RelationSchema
from repro.util.errors import SchemaError

C = Attribute.categorical
F = Attribute.continuous


@pytest.fixture()
def db():
    r1 = Relation(
        RelationSchema("R1", (C("k"), F("x"))), {"k": [1, 1, 2], "x": [1.0, 2.0, 3.0]}
    )
    r2 = Relation(RelationSchema("R2", (C("k"), C("c"))), {"k": [1, 2, 2], "c": [5, 6, 7]})
    return Database([r1, r2], name="toy")


def test_lookup_and_summary(db):
    assert db.relation_names == ("R1", "R2")
    assert db.cardinality("R2") == 3
    assert db.total_tuples() == 6
    assert db.summary() == {"R1": 3, "R2": 3}
    with pytest.raises(SchemaError):
        db.relation("nope")


def test_domain_size_spans_relations(db):
    assert db.domain_size("k") == 2
    assert db.domain_size("c") == 3
    with pytest.raises(SchemaError):
        db.domain_size("nope")


def test_materialize_join(db):
    join = db.materialize_join()
    # k=1 matches 2x1 rows, k=2 matches 1x2 rows
    assert join.num_rows == 4
    assert set(join.attribute_names) == {"k", "x", "c"}


def test_with_relation_replaces(db):
    replacement = Relation(
        RelationSchema("R2", (C("k"), C("c"))), {"k": [9], "c": [9]}
    )
    new_db = db.with_relation(replacement)
    assert new_db.cardinality("R2") == 1
    assert db.cardinality("R2") == 3  # original untouched
    with pytest.raises(SchemaError):
        db.with_relation(replacement.rename("R9"))


def test_domain_size_cached(db):
    first = db.domain_size("k")
    assert db.domain_size("k") == first
