"""The synthetic Favorita and Retailer generators."""

import numpy as np
import pytest

from repro.data import favorita, retailer
from repro.jointree import build_join_tree
from repro.paper import FAVORITA_TREE
from repro.jointree.jointree import JoinTree


def test_favorita_schema_matches_figure2(favorita_db):
    expected = {
        "Sales": ("date", "store", "item", "units", "promo"),
        "Holidays": ("date", "htype", "locale", "transferred"),
        "StoRes": ("store", "city", "state", "stype", "cluster"),
        "Items": ("item", "family", "class", "perishable"),
        "Transactions": ("date", "store", "txns"),
        "Oil": ("date", "price"),
    }
    for name, attrs in expected.items():
        assert favorita_db.relation(name).attribute_names == attrs


def test_favorita_deterministic():
    a = favorita(scale=0.05, seed=3)
    b = favorita(scale=0.05, seed=3)
    for name in a.relation_names:
        assert a.relation(name) == b.relation(name)
    c = favorita(scale=0.05, seed=4)
    assert any(a.relation(n) != c.relation(n) for n in a.relation_names)


def test_favorita_foreign_keys_complete(favorita_db):
    """Every Sales key has matching dimension rows — the join never shrinks."""
    sales = favorita_db.relation("Sales")
    assert set(np.unique(sales.column("item"))) <= set(
        favorita_db.relation("Items").column("item")
    )
    assert set(np.unique(sales.column("store"))) <= set(
        favorita_db.relation("StoRes").column("store")
    )
    assert set(np.unique(sales.column("date"))) <= set(
        favorita_db.relation("Oil").column("date")
    )
    join = favorita_db.materialize_join()
    assert join.num_rows == sales.num_rows


def test_favorita_domain_ordering(favorita_db):
    """Figure 3's attribute order relies on |item| > |date| > |store|."""
    assert (
        favorita_db.domain_size("item")
        > favorita_db.domain_size("date")
        > favorita_db.domain_size("store")
    )


def test_favorita_paper_tree_is_valid(favorita_db):
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    assert set(tree.nodes) == set(favorita_db.relation_names)


def test_favorita_scales():
    small = favorita(scale=0.05, seed=1)
    large = favorita(scale=0.2, seed=1)
    assert large.cardinality("Sales") > small.cardinality("Sales")


def test_retailer_has_43_attributes(retailer_db):
    assert len(retailer_db.schema.all_attributes) == 43
    expected_relations = {"Inventory", "Location", "Census", "Item", "Weather"}
    assert set(retailer_db.relation_names) == expected_relations


def test_retailer_join_tree_buildable(retailer_db):
    tree = build_join_tree(retailer_db.schema)
    # Inventory is the hub: joins Weather on (locn, dateid), Item on ksn,
    # Location on locn; Census attaches to Location via zip.
    assert set(tree.neighbors("Census")) == {"Location"}
    assert "Inventory" in tree.neighbors("Item")


def test_retailer_join_does_not_explode(retailer_db):
    join = retailer_db.materialize_join()
    assert join.num_rows == retailer_db.cardinality("Inventory")


def test_retailer_deterministic():
    a = retailer(scale=0.05, seed=9)
    b = retailer(scale=0.05, seed=9)
    for name in a.relation_names:
        assert a.relation(name) == b.relation(name)


@pytest.mark.parametrize("maker", [favorita, retailer])
def test_generators_tiny_scale_still_valid(maker):
    db = maker(scale=0.01, seed=0)
    assert db.total_tuples() > 0
    assert db.materialize_join().num_rows > 0
