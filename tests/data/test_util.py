"""Utility helpers: ordered sets, timers, error hierarchy."""

import time

import pytest

from repro.util import (
    CyclicSchemaError,
    OrderedSet,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
    Stopwatch,
    Timer,
    stable_unique,
)


def test_stable_unique_preserves_order():
    assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]
    assert stable_unique([]) == []


def test_ordered_set_iteration_order():
    s = OrderedSet(["b", "a", "b", "c"])
    assert list(s) == ["b", "a", "c"]
    s.add("a")
    s.add("d")
    assert list(s) == ["b", "a", "c", "d"]


def test_ordered_set_set_ops_preserve_left_order():
    s = OrderedSet(["c", "a", "b"])
    assert list(s & {"b", "c"}) == ["c", "b"]
    assert list(s - {"a"}) == ["c", "b"]
    assert list(s | ["d", "a"]) == ["c", "a", "b", "d"]


def test_ordered_set_equality_is_order_insensitive():
    assert OrderedSet(["a", "b"]) == OrderedSet(["b", "a"])
    assert OrderedSet(["a"]) == {"a"}
    assert OrderedSet(["a"]) != {"b"}


def test_ordered_set_misc():
    s = OrderedSet(["a"])
    assert "a" in s and len(s) == 1 and bool(s)
    s.discard("a")
    s.discard("zz")  # no error
    assert not s
    with pytest.raises(TypeError):
        hash(OrderedSet())


def test_timer_measures():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch.lap("a"):
        time.sleep(0.005)
    with watch.lap("a"):
        pass
    watch.add("b", 0.25)
    laps = watch.laps
    assert laps["a"] >= 0.004
    assert laps["b"] == 0.25
    assert watch.total() == pytest.approx(laps["a"] + 0.25)
    assert "b" in watch.report()
    assert Stopwatch().report() == "(no laps recorded)"


def test_error_hierarchy():
    for exc in (SchemaError, QueryError, PlanError, CyclicSchemaError):
        assert issubclass(exc, ReproError)
