"""Natural-join operators against hand-computed results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Attribute, Relation, RelationSchema, hash_join, natural_join

C = Attribute.categorical
F = Attribute.continuous


def rel(name, cols, **data):
    return Relation(RelationSchema(name, tuple(cols)), data)


def test_hash_join_single_key():
    left = rel("L", [C("k"), F("x")], k=[1, 2, 2], x=[1.0, 2.0, 3.0])
    right = rel("R", [C("k"), F("y")], k=[2, 3], y=[10.0, 20.0])
    out = hash_join(left, right)
    assert out.attribute_names == ("k", "x", "y")
    rows = sorted(out.iter_rows())
    assert rows == [(2, 2.0, 10.0), (2, 3.0, 10.0)]


def test_hash_join_multi_key_and_duplicates():
    left = rel("L", [C("a"), C("b")], a=[1, 1, 2], b=[1, 1, 2])
    right = rel("R", [C("a"), C("b"), F("z")], a=[1, 1], b=[1, 1], z=[5.0, 6.0])
    out = hash_join(left, right)
    # 2 left dups x 2 right dups = 4 rows
    assert out.num_rows == 4
    assert sorted(r[2] for r in out.iter_rows()) == [5.0, 5.0, 6.0, 6.0]


def test_hash_join_no_shared_is_cross_product():
    left = rel("L", [C("a")], a=[1, 2])
    right = rel("R", [C("b")], b=[7, 8, 9])
    out = hash_join(left, right)
    assert out.num_rows == 6


def test_hash_join_empty_side():
    left = rel("L", [C("k")], k=[])
    right = rel("R", [C("k"), F("y")], k=[1], y=[2.0])
    assert hash_join(left, right).num_rows == 0


def test_natural_join_prefers_connected_pairs():
    a = rel("A", [C("x")], x=[1, 2])
    b = rel("B", [C("y")], y=[5])
    c = rel("C", [C("x"), C("y")], x=[1, 2], y=[5, 5])
    # join order must connect via C, never through the cross product A x B
    out = natural_join([a, b, c])
    assert out.num_rows == 2
    assert set(out.attribute_names) == {"x", "y"}


def test_natural_join_requires_input():
    with pytest.raises(ValueError):
        natural_join([])


@given(seed=st.integers(0, 1000), n_left=st.integers(0, 20), n_right=st.integers(0, 20))
@settings(max_examples=25, deadline=None)
def test_hash_join_matches_nested_loop(seed, n_left, n_right):
    rng = np.random.default_rng(seed)
    left = rel(
        "L", [C("k"), F("x")],
        k=rng.integers(0, 4, n_left), x=rng.normal(size=n_left),
    )
    right = rel(
        "R", [C("k"), F("y")],
        k=rng.integers(0, 4, n_right), y=rng.normal(size=n_right),
    )
    out = hash_join(left, right)
    expected = sorted(
        (lk, lx, ry)
        for lk, lx in left.iter_rows()
        for rk, ry in right.iter_rows()
        if lk == rk
    )
    assert sorted(out.iter_rows()) == expected
