"""Relation operators: construction, sort, select, project, equality."""

import numpy as np
import pytest

from repro.data import Attribute, Relation, RelationSchema
from repro.util.errors import SchemaError

C = Attribute.categorical
F = Attribute.continuous


@pytest.fixture()
def rel():
    schema = RelationSchema("R", (C("k"), F("x")))
    return Relation(schema, {"k": [2, 1, 2, 3], "x": [1.0, 2.0, 3.0, 4.0]})


def test_construction_checks_columns(rel):
    schema = rel.schema
    with pytest.raises(SchemaError):
        Relation(schema, {"k": [1, 2]})  # missing column
    with pytest.raises(SchemaError):
        Relation(schema, {"k": [1], "x": [1.0, 2.0]})  # ragged
    with pytest.raises(SchemaError):
        Relation(schema, {"k": [1], "x": [1.0], "extra": [0]})


def test_columns_are_read_only(rel):
    with pytest.raises(ValueError):
        rel.column("k")[0] = 99


def test_categorical_coercion_rejects_fractions():
    schema = RelationSchema("R", (C("k"),))
    with pytest.raises(TypeError):
        Relation(schema, {"k": [1.5]})


def test_from_rows_and_iter_rows(rel):
    clone = Relation.from_rows(rel.schema, list(rel.iter_rows()))
    assert clone == rel
    assert clone.row(0) == (2, 1.0)


def test_from_rows_empty():
    schema = RelationSchema("R", (C("k"), F("x")))
    empty = Relation.from_rows(schema, [])
    assert empty.num_rows == 0


def test_from_rows_width_mismatch(rel):
    with pytest.raises(SchemaError):
        Relation.from_rows(rel.schema, [(1,)])


def test_sorted_by_is_lexicographic():
    schema = RelationSchema("R", (C("a"), C("b")))
    r = Relation(schema, {"a": [2, 1, 2, 1], "b": [1, 2, 0, 1]})
    s = r.sorted_by(("a", "b"))
    assert list(s.column("a")) == [1, 1, 2, 2]
    assert list(s.column("b")) == [1, 2, 0, 1]


def test_filter_and_select(rel):
    picked = rel.filter(np.array([True, False, True, False]))
    assert picked.num_rows == 2
    assert list(picked.column("k")) == [2, 2]
    selected = rel.select(lambda cols: cols["x"] > 2.0)
    assert selected.num_rows == 2
    with pytest.raises(ValueError):
        rel.filter(np.array([True]))


def test_project_bag_and_distinct(rel):
    bag = rel.project(("k",))
    assert bag.num_rows == 4
    distinct = rel.project(("k",), distinct=True)
    assert sorted(distinct.column("k")) == [1, 2, 3]


def test_project_distinct_multi_column():
    schema = RelationSchema("R", (C("a"), C("b")))
    r = Relation(schema, {"a": [1, 1, 1, 2], "b": [1, 1, 2, 1]})
    d = r.project(("a", "b"), distinct=True)
    assert d.num_rows == 3


def test_bag_equality_ignores_order(rel):
    shuffled = rel.take(np.array([3, 1, 0, 2]))
    assert shuffled == rel
    other = rel.replace_columns(x=[9.0, 2.0, 3.0, 4.0])
    assert other != rel


def test_rename(rel):
    named = rel.rename("S")
    assert named.name == "S"
    assert named == rel.rename("S")


def test_distinct_count(rel):
    assert rel.distinct_count("k") == 3
