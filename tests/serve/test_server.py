"""AggregateServer behaviour: cache reuse, rebinding oracles, futures,
coalescing, and the snapshot-isolation concurrency contract."""

import threading

import pytest

from repro.core import EngineConfig, LMFAO
from repro.incremental.delta import normalize_deltas
from repro.paper import FAVORITA_TREE
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch
from repro.serve import AggregateServer
from repro.util.errors import PlanError


def _batch(t_units=3.0, t_item=10.0):
    return QueryBatch(
        [
            Query(
                "scalar",
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("units", Op.LE, t_units),),
            ),
            Query(
                "by_store",
                group_by=("store",),
                aggregates=(Aggregate.sum("units"), Aggregate.count()),
                where=(
                    Predicate("units", Op.LE, t_units),
                    Predicate("item", Op.GE, t_item),
                ),
            ),
            Query(
                "cross",  # store × class spans Sales and Items → carried plan
                group_by=("store", "class"),
                aggregates=(Aggregate.count(),),
            ),
        ]
    )


def _groups(run):
    return {name: result.groups for name, result in run.results.items()}


# ----------------------------------------------------------- plan-cache reuse
def test_repeated_batch_hits_the_cache_and_skips_compile(favorita_db):
    with AggregateServer(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ) as server:
        cold = server.run(_batch())
        warm = server.run(_batch())
        assert "compile" in cold.timings
        assert "compile" not in warm.timings
        assert _groups(cold) == _groups(warm)
        stats = server.stats()
        assert stats.plan_cache.misses == 1
        assert stats.plan_cache.hits == 1
        assert warm.compiled is cold.compiled  # the very same artefacts


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_rebound_constants_match_cold_compile_oracle(favorita_db, backend):
    """The heart of the cache: a hit with different constants must produce
    bit-identical results to compiling the request from scratch."""
    config = EngineConfig(
        join_tree_edges=FAVORITA_TREE,
        backend=backend,
        partitions=2,
        parallel_threshold=0,
    )
    with AggregateServer(favorita_db, config) as server:
        server.run(_batch(3.0, 10.0))  # populate the cache
        served = server.run(_batch(7.0, 25.0))  # structural hit, rebind
        assert server.stats().plan_cache.hits == 1
        oracle = LMFAO(favorita_db, config).run(_batch(7.0, 25.0))
        assert _groups(served) == _groups(oracle)
        # and back again: rebinding must not have poisoned shared caches
        served_again = server.run(_batch(3.0, 10.0))
        oracle_first = LMFAO(favorita_db, config).run(_batch(3.0, 10.0))
        assert _groups(served_again) == _groups(oracle_first)


def test_pushed_shared_predicate_constants_rebind(favorita_db):
    shared = lambda t: (Predicate("units", Op.GT, t),)  # noqa: E731

    def batch(t):
        return QueryBatch(
            [
                Query("total", aggregates=(Aggregate.sum("units"),), where=shared(t)),
                Query(
                    "per_store",
                    group_by=("store",),
                    aggregates=(Aggregate.count(),),
                    where=shared(t),
                ),
            ]
        )

    config = EngineConfig(
        join_tree_edges=FAVORITA_TREE, push_shared_predicates=True
    )
    with AggregateServer(favorita_db, config) as server:
        server.run(batch(2.0))
        served = server.run(batch(5.0))
        assert server.stats().plan_cache.hits == 1
        oracle = LMFAO(favorita_db, config).run(batch(5.0))
        assert _groups(served) == _groups(oracle)


def test_lru_eviction_forces_recompile(favorita_db):
    def shaped(name):
        return QueryBatch(
            [Query(name, group_by=("store",), aggregates=(Aggregate.count(),))]
        )

    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    with AggregateServer(favorita_db, config, plan_cache_capacity=2) as server:
        for name in ("a", "b", "c"):  # three distinct structures, capacity 2
            server.run(shaped(name))
        stats = server.stats()
        assert stats.plan_cache.misses == 3
        assert stats.plan_cache.evictions == 1
        assert "compile" in server.run(shaped("a")).timings  # evicted → miss
        assert "compile" not in server.run(shaped("c")).timings  # still hot


# ------------------------------------------------------------------- futures
def test_submit_returns_future_with_pinned_version(favorita_db):
    with AggregateServer(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ) as server:
        future = server.submit(_batch())
        result = future.result(timeout=60)
        assert result.snapshot_version == 0
        assert _groups(result) == _groups(server.run(_batch()))


def test_submit_coalesces_identical_inflight_requests(favorita_db):
    with AggregateServer(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ) as server:
        gate = threading.Event()
        real = server._execute_pinned

        def gated(*args, **kwargs):
            gate.wait(timeout=60)
            return real(*args, **kwargs)

        server._execute_pinned = gated
        try:
            f1 = server.submit(_batch(3.0, 10.0))
            f2 = server.submit(_batch(3.0, 10.0))  # identical → coalesce
            f3 = server.submit(_batch(7.0, 10.0))  # same shape, new constant
        finally:
            gate.set()
        assert f1 is f2
        assert f3 is not f1
        f1.result(timeout=60), f3.result(timeout=60)
        stats = server.stats()
        assert stats.coalesced == 1
        assert stats.submitted == 2
        # a completed request never satisfies a later submission
        f4 = server.submit(_batch(3.0, 10.0))
        assert f4 is not f1
        f4.result(timeout=60)


def test_closed_server_rejects_submissions(favorita_db):
    server = AggregateServer(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    server.close()
    with pytest.raises(PlanError, match="closed"):
        server.submit(_batch())


# ------------------------------------------------------- snapshot isolation
def _replay_oracles(db, batch, rounds, config):
    """Per-version result oracles: replay the deltas sequentially."""
    oracles = {0: _groups(LMFAO(db, config).run(batch))}
    current = db
    for version, (inserts, deletes) in enumerate(rounds, start=1):
        for name, delta in normalize_deltas(current, inserts, deletes).items():
            current = current.with_relation(delta.apply_to(current.relation(name)))
        oracles[version] = _groups(LMFAO(current, config).run(batch))
    return oracles


def test_apply_advances_version_and_pinned_runs_stay_isolated(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    batch = _batch()
    sales = favorita_db.relation("Sales")
    rounds = [
        ({"Sales": [sales.row(0)]}, None),
        ({"Sales": [sales.row(1), sales.row(2)]}, None),
        (None, {"Sales": [sales.row(0)]}),
    ]
    oracles = _replay_oracles(favorita_db, batch, rounds, config)
    with AggregateServer(favorita_db, config) as server:
        assert _groups(server.run(batch)) == oracles[0]
        for expected_version, (inserts, deletes) in enumerate(rounds, start=1):
            version = server.apply(inserts=inserts, deletes=deletes)
            assert version == expected_version
            run = server.run(batch)
            assert run.snapshot_version == version
            assert _groups(run) == oracles[version]
        # empty deltas change nothing, including the version
        assert server.apply(inserts={"Sales": []}) == len(rounds)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_concurrent_runs_during_apply_never_see_torn_state(favorita_db, executor):
    """The regression the snapshot layer exists for: readers hammer run()
    while a maintained writer applies deltas; every result must equal the
    sequential oracle of the exact version it reports having pinned.

    The ``process`` variant additionally proves the shared-memory segment
    lifecycle: an ``apply`` installing a successor version mid-run must
    never unlink a segment a pinned run's worker still maps — Favorita's
    ``units`` are integer-valued, so the multiprocess tree-reduce merge is
    bit-identical to the sequential oracle, and any torn mapping would
    show up as a divergent (or crashed) read."""
    if executor == "process":
        config = EngineConfig(
            join_tree_edges=FAVORITA_TREE, executor="process",
            workers=2, partitions=2, parallel_threshold=0,
        )
        oracle_config = EngineConfig(
            join_tree_edges=FAVORITA_TREE, workers=1, partitions=1
        )
    else:
        config = oracle_config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    batch = _batch()
    sales = favorita_db.relation("Sales")
    rounds = [({"Sales": [sales.row(i), sales.row(i + 1)]}, None) for i in range(6)]
    oracles = _replay_oracles(favorita_db, batch, rounds, oracle_config)

    with AggregateServer(favorita_db, config) as server:
        handle = server.maintain(batch)
        server.run(batch)  # warm the plan cache
        writer_done = threading.Event()
        observations: list[tuple[int, dict]] = []
        failures: list[BaseException] = []

        def reader():
            try:
                while not writer_done.is_set():
                    run = server.run(batch)
                    observations.append((run.snapshot_version, _groups(run)))
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for inserts, deletes in rounds:
                outcome = handle.apply(inserts=inserts, deletes=deletes)
                # the handle's own view of the new version matches its oracle
                assert {
                    name: result.groups for name, result in outcome.results.items()
                } == oracles[outcome.version]
        finally:
            writer_done.set()
            for t in threads:
                t.join(timeout=60)
        assert not failures
        assert observations
        versions_seen = set()
        for version, groups in observations:
            assert groups == oracles[version], f"torn read at version {version}"
            versions_seen.add(version)
        # the final state is served to new requests
        final = server.run(batch)
        assert final.snapshot_version == len(rounds)
        assert _groups(final) == oracles[len(rounds)]


def test_second_writer_lineage_conflicts_cleanly(favorita_db):
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    batch = _batch()
    sales = favorita_db.relation("Sales")
    first = engine.maintain(batch)
    second = engine.maintain(batch)
    first.apply(inserts={"Sales": [sales.row(0)]})
    before = {name: r.groups for name, r in second.results.items()}
    with pytest.raises(PlanError, match="snapshot version conflict"):
        second.apply(inserts={"Sales": [sales.row(1)]})
    # the losing writer's own state is untouched by the failed apply
    assert {name: r.groups for name, r in second.results.items()} == before
    assert second.version == 0
    # and the engine still serves the first writer's lineage
    assert engine.snapshot().version == 1
