"""The group-committed write path: queue semantics, crash containment,
backpressure, and snapshot GC under concurrent readers and writers.

Unit tests drive :class:`WriteQueue` against an instrumented commit
callback (gate it, fail it, count it) for deterministic group shapes;
integration tests drive :class:`AggregateServer` and assert the grouped
outcome bit-exact against a sequential one-delta-at-a-time oracle.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import Attribute, Relation, RelationSchema
from repro.incremental.delta import RelationDelta, normalize_deltas
from repro.paper import FAVORITA_TREE
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch
from repro.serve import AggregateServer, WriteOverloadError, WriteQueue
from repro.util.errors import PlanError, SchemaError

_SCHEMA = RelationSchema("R", (Attribute.categorical("a"),))


def _ins(*values):
    """An insert-only delta map on the toy relation R."""
    return {
        "R": RelationDelta(
            relation="R", inserts=Relation.from_rows(_SCHEMA, [(v,) for v in values])
        )
    }


def _mask(*flags):
    return {"R": RelationDelta(relation="R", delete_mask=np.array(flags, dtype=bool))}


class _Committer:
    """Instrumented commit callback: gate it, fail it, record its groups."""

    def __init__(self):
        self.groups = []
        self.version = 0
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()
        self.fail_next = None

    def __call__(self, deltas):
        self.entered.set()
        assert self.gate.wait(timeout=30), "test gate never opened"
        if self.fail_next is not None:
            exc, self.fail_next = self.fail_next, None
            raise exc
        self.groups.append(deltas)
        self.version += 1
        return self.version, {}


# ------------------------------------------------------------ queue semantics
def test_queued_writes_commit_as_one_group():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=16)
    first = queue.submit(_ins(1))
    # once the committer is inside commit(), the first group is fixed at
    # exactly [first]; everything submitted now lands behind the gate
    assert committer.entered.wait(timeout=10)
    rest = [queue.submit(_ins(v)) for v in (2, 3, 4, 5)]
    committer.gate.set()
    queue.flush()
    assert first.result() == 1
    assert all(t.result() == 2 for t in rest)  # 4 writes, ONE transition
    stats = queue.stats()
    assert stats.enqueued == 5
    assert stats.committed_writes == 5
    assert stats.committed_groups == 2
    assert stats.largest_group == 4
    assert stats.queued == 0
    assert stats.last_committed_version == 2
    # the second commit saw the composed delta of all four writes
    assert committer.groups[1]["R"].num_inserts == 4
    queue.close()


def test_delete_mask_starts_a_new_group():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=16)
    queue.submit(_ins(1))
    assert committer.entered.wait(timeout=10)
    queue.submit(_ins(2))
    queue.submit(_mask(True))  # unmergeable onto the insert ahead of it
    queue.submit(_ins(3))  # ...but merges onto the mask entry
    committer.gate.set()
    queue.close(flush=True)
    assert [g["R"].num_inserts for g in committer.groups] == [1, 1, 1]
    assert committer.groups[2]["R"].delete_mask is not None
    assert queue.stats().committed_groups == 3


def test_commit_failure_fails_only_that_group_and_committer_survives():
    committer = _Committer()
    committer.fail_next = SchemaError("injected: delete of an absent tuple")
    queue = WriteQueue(committer, capacity=16)
    doomed = queue.submit(_ins(1))
    with pytest.raises(SchemaError, match="injected"):
        doomed.result(timeout=10)
    queue.flush()  # failed writes still count as finished: no hang
    survivor = queue.submit(_ins(2))
    assert survivor.result(timeout=10) == 1
    stats = queue.stats()
    assert stats.failed_writes == 1
    assert stats.committed_writes == 1
    queue.close()


def test_reject_policy_raises_typed_overload_without_enqueueing():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=1, policy="reject")
    held = queue.submit(_ins(1))
    assert committer.entered.wait(timeout=10)  # popped: the queue is empty
    queued = queue.submit(_ins(2))  # fills the single slot
    with pytest.raises(WriteOverloadError):
        queue.submit(_ins(3))
    committer.gate.set()
    queue.flush()
    assert held.result() == 1 and queued.result() == 2
    stats = queue.stats()
    assert stats.rejected_writes == 1
    assert stats.enqueued == 2  # the rejected write never entered the queue
    queue.close()


def test_coalesce_policy_merges_into_the_newest_entry():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=1, policy="coalesce")
    queue.submit(_ins(1))
    assert committer.entered.wait(timeout=10)
    tail = queue.submit(_ins(2))
    merged = [queue.submit(_ins(v)) for v in (3, 4)]  # full queue: merge
    committer.gate.set()
    queue.flush()
    assert tail.result() == 2
    assert all(t.result() == 2 for t in merged)
    stats = queue.stats()
    assert stats.coalesced_writes == 2
    assert stats.committed_groups == 2
    assert committer.groups[1]["R"].num_inserts == 3
    queue.close()


def test_flush_timeout_raises_and_later_flush_succeeds():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=4)
    ticket = queue.submit(_ins(1))
    with pytest.raises(TimeoutError):
        queue.flush(timeout=0.05)
    committer.gate.set()
    queue.flush(timeout=10)
    assert ticket.result() == 1
    queue.close()


def test_close_flush_false_discards_and_releases_every_waiter():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=16)
    inflight = queue.submit(_ins(1))
    assert committer.entered.wait(timeout=10)
    discarded = queue.submit(_ins(2))
    flush_error = []

    def flusher():
        try:
            queue.flush(timeout=30)
        except PlanError as exc:
            flush_error.append(exc)

    waiter = threading.Thread(target=flusher)
    waiter.start()
    closer = threading.Thread(target=queue.close, kwargs={"flush": False})
    closer.start()
    waiter.join(timeout=10)
    assert not waiter.is_alive(), "flush waiter hung through an aborting close"
    assert flush_error and "discarded" in str(flush_error[0])
    with pytest.raises(PlanError, match="discards queued writes"):
        discarded.result(timeout=10)
    # the group being committed right now always completes
    committer.gate.set()
    closer.join(timeout=10)
    assert not closer.is_alive()
    assert inflight.result(timeout=10) == 1
    assert queue.stats().failed_writes == 1
    queue.close()  # idempotent


def test_blocked_submitter_is_woken_and_refused_by_close():
    committer = _Committer()
    committer.gate.clear()
    queue = WriteQueue(committer, capacity=1)
    queue.submit(_ins(1))
    assert committer.entered.wait(timeout=10)
    queue.submit(_ins(2))  # queue now full: the next submit blocks
    errors = []

    def blocked_writer():
        try:
            queue.submit(_ins(3))
        except PlanError as exc:
            errors.append(exc)

    writer = threading.Thread(target=blocked_writer)
    writer.start()
    time.sleep(0.05)  # give the writer a chance to block on queue space
    closer = threading.Thread(target=queue.close, kwargs={"flush": False})
    closer.start()
    writer.join(timeout=10)
    assert not writer.is_alive(), "blocked submit hung through close"
    assert errors and "closed" in str(errors[0])
    committer.gate.set()
    closer.join(timeout=10)


def test_queue_validates_capacity_and_policy():
    with pytest.raises(PlanError, match="capacity"):
        WriteQueue(_Committer(), capacity=0)
    with pytest.raises(PlanError, match="policy"):
        WriteQueue(_Committer(), policy="drop")


# -------------------------------------------------------- server integration
def _batch(t_units=3.0, t_item=10.0):
    return QueryBatch(
        [
            Query(
                "scalar",
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("units", Op.LE, t_units),),
            ),
            Query(
                "by_store",
                group_by=("store",),
                aggregates=(Aggregate.sum("units"), Aggregate.count()),
                where=(
                    Predicate("units", Op.LE, t_units),
                    Predicate("item", Op.GE, t_item),
                ),
            ),
            Query(
                "cross",
                group_by=("store", "class"),
                aggregates=(Aggregate.count(),),
            ),
        ]
    )


def _groups(run):
    return {name: result.groups for name, result in run.results.items()}


def _final_oracle(db, batch, rounds, config):
    """Replay the deltas one at a time; the final state's from-scratch run."""
    current = db
    for inserts, deletes in rounds:
        for name, delta in normalize_deltas(current, inserts, deletes).items():
            current = current.with_relation(delta.apply_to(current.relation(name)))
    return current, _groups(LMFAO(current, config).run(batch))


def _configs():
    return {
        "thread": EngineConfig(join_tree_edges=FAVORITA_TREE),
        "process": EngineConfig(
            join_tree_edges=FAVORITA_TREE,
            executor="process",
            workers=2,
            partitions=2,
            parallel_threshold=0,
        ),
    }


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_grouped_commits_bit_exact_vs_sequential_oracle(favorita_db, executor):
    """Force real grouping, then compare against one-delta-at-a-time replay.

    Favorita's units are integer-valued, so every SUM/COUNT is exact in
    float64 and "bit-exact" is well-defined regardless of how writes
    were grouped.
    """
    config = _configs()[executor]
    batch = _batch()
    sales = favorita_db.relation("Sales")
    rounds = [
        ({"Sales": [sales.row(0)]}, None),
        ({"Sales": [sales.row(1), sales.row(2)]}, None),
        (None, {"Sales": [sales.row(0)]}),  # cancels against round 1's insert
        ({"Sales": [sales.row(3)]}, None),
        (None, {"Sales": [sales.row(5)]}),  # a genuine base-relation delete
        ({"Sales": [sales.row(4)]}, None),
    ]
    _, oracle = _final_oracle(favorita_db, batch, rounds, config)
    with AggregateServer(favorita_db, config) as server:
        handle = server.maintain(batch)
        with server._commit_mutex:  # stall the committer mid-first-group
            tickets = [
                server.apply(inserts=inserts, deletes=deletes, sync=False)
                for inserts, deletes in rounds
            ]
        final_version = server.flush()
        versions = [t.result(timeout=30) for t in tickets]
        stats = server.stats()
        # every write committed, in strictly fewer transitions than writes
        assert stats.writes.committed_writes == len(rounds)
        assert stats.writes.committed_groups == final_version
        assert final_version < len(rounds)
        assert versions == sorted(versions)
        assert _groups(server.run(batch)) == oracle
        # the maintained handle was refreshed by those same group commits
        assert {n: r.groups for n, r in handle.results.items()} == oracle
        # no pins outstanding: GC keeps only the current version alive
        assert server.stats().live_snapshots == 1


def test_handle_writes_route_through_queue_and_refresh_every_handle(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    sales = favorita_db.relation("Sales")
    with AggregateServer(favorita_db, config) as server:
        first = server.maintain(_batch(3.0, 10.0))
        second = server.maintain(_batch(7.0, 25.0))
        outcome = first.apply(inserts={"Sales": [sales.row(0), sales.row(1)]})
        assert outcome.version == 1 == server.version
        # a plain server.apply also refreshes both handles
        assert server.apply(deletes={"Sales": [sales.row(0)]}) == 2
        current = server.engine.snapshot().db
        for handle, thresholds in ((first, (3.0, 10.0)), (second, (7.0, 25.0))):
            fresh = _groups(LMFAO(current, config).run(_batch(*thresholds)))
            assert {n: r.groups for n, r in handle.results.items()} == fresh


def test_concurrent_writers_serialise_without_version_conflicts(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    batch = _batch()
    sales = favorita_db.relation("Sales")
    rows = [sales.row(i) for i in range(20)]
    with AggregateServer(favorita_db, config) as server:
        handle = server.maintain(batch)
        errors = []

        def writer(chunk):
            try:
                for row in chunk:
                    server.apply(inserts={"Sales": [row]})
            except Exception as exc:  # noqa: BLE001 — recorded for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(rows[k * 5 : (k + 1) * 5],))
            for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors  # no writer died on a version conflict
        server.flush()
        final = favorita_db.with_relation(
            sales.concat(Relation.from_rows(sales.schema, rows))
        )
        oracle = _groups(LMFAO(final, config).run(batch))
        assert _groups(server.run(batch)) == oracle
        assert {n: r.groups for n, r in handle.results.items()} == oracle
        assert 1 <= server.version <= len(rows)
        assert server.stats().writes.committed_writes == len(rows)


def test_commit_fault_leaves_server_on_last_good_version(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    batch = _batch()
    sales = favorita_db.relation("Sales")
    with AggregateServer(favorita_db, config) as server:
        baseline = _groups(server.run(batch))
        assert server.apply(inserts={"Sales": [sales.row(0)]}) == 1
        good = _groups(server.run(batch))

        # fault 1: a data fault — the staged delete cannot apply (far more
        # occurrences deleted than the relation holds), raising inside the
        # committer's staging step
        with pytest.raises(SchemaError):
            server.apply(deletes={"Sales": [sales.row(0)] * (sales.num_rows + 1)})
        assert server.version == 1
        assert _groups(server.run(batch)) == good != baseline

        # fault 2: an injected committer crash mid-group
        original = server._writes._commit
        state = {"failed": False}

        def flaky(deltas):
            if not state["failed"]:
                state["failed"] = True
                raise RuntimeError("injected maintenance bug")
            return original(deltas)

        server._writes._commit = flaky
        doomed = server.apply(inserts={"Sales": [sales.row(1)]}, sync=False)
        with pytest.raises(RuntimeError, match="injected"):
            doomed.result(timeout=30)
        server.flush()  # failed writes do not hang the durability point
        assert server.version == 1
        assert _groups(server.run(batch)) == good

        # the committer survived both faults: later writes commit normally
        assert server.apply(inserts={"Sales": [sales.row(2)]}) == 2
        assert server.stats().writes.failed_writes == 2


def test_reader_pin_keeps_version_and_segments_until_release(favorita_db):
    config = _configs()["process"]
    sales = favorita_db.relation("Sales")
    with AggregateServer(favorita_db, config) as server:
        server.run(_batch())  # exports version-0 trie segments
        executor = server.engine._process_executor()
        assert 0 in {key[0] for key in executor._segments}
        pinned = server.engine.pin_snapshot()
        for i in range(3):
            server.apply(inserts={"Sales": [sales.row(i)]})
        # v0 survives GC for the pinned reader; v1 and v2 were collected
        assert server.engine._snapshots.retained_versions() == [0, 3]
        assert 0 in {key[0] for key in executor._segments}
        assert server.stats().live_snapshots == 2
        server.engine.release_snapshot(pinned.version)
        assert server.engine._snapshots.retained_versions() == [3]
        # the reclaim hook dropped the dead version's shared-memory segments
        assert 0 not in {key[0] for key in executor._segments}
        assert server.stats().live_snapshots == 1


def test_server_write_policy_and_capacity_plumbing(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    sales = favorita_db.relation("Sales")
    with AggregateServer(
        favorita_db, config, write_capacity=1, write_policy="reject"
    ) as server:
        with server._commit_mutex:
            held = server.apply(inserts={"Sales": [sales.row(0)]}, sync=False)
            deadline = time.monotonic() + 10
            while server._writes.stats().queued and time.monotonic() < deadline:
                time.sleep(0.005)  # until the committer pops the first group
            queued = server.apply(inserts={"Sales": [sales.row(1)]}, sync=False)
            with pytest.raises(WriteOverloadError):
                server.apply(inserts={"Sales": [sales.row(2)]}, sync=False)
        assert server.flush() == 2
        assert held.result() == 1 and queued.result() == 2
        assert server.stats().writes.rejected_writes == 1


def test_empty_apply_short_circuits_without_a_committer(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    with AggregateServer(favorita_db, config) as server:
        sales = favorita_db.relation("Sales")
        assert server.apply() == 0
        assert server.apply(inserts={"Sales": []}) == 0
        mask = np.zeros(sales.num_rows, dtype=bool)
        ticket = server.apply(deletes={"Sales": mask}, sync=False)
        assert ticket.done() and ticket.result() == 0
        # the committer thread was never created, let alone woken
        assert server._writes._thread is None
        assert server.stats().writes.enqueued == 0


def test_close_flushes_queued_writes_and_is_idempotent(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE)
    sales = favorita_db.relation("Sales")
    server = AggregateServer(favorita_db, config)
    with server._commit_mutex:  # stall commits so the queue fills up
        tickets = [
            server.apply(inserts={"Sales": [sales.row(i)]}, sync=False)
            for i in range(4)
        ]
        closers = [threading.Thread(target=server.close) for _ in range(2)]
        for t in closers:
            t.start()
        time.sleep(0.05)  # closers are draining; commits wait on the mutex
    for t in closers:
        t.join(timeout=30)
        assert not t.is_alive()
    # documented choice: close FLUSHES — every queued delta committed
    assert all(isinstance(t.result(timeout=10), int) for t in tickets)
    assert server.version >= 1
    with pytest.raises(PlanError, match="closed"):
        server.apply(inserts={"Sales": [sales.row(0)]})
    server.close()  # idempotent
