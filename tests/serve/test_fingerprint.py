"""Structural fingerprint semantics: what hits, what misses, what rebinds.

The contract under test (docs/serving.md §Keying rules): two batches share
a fingerprint iff the compiled artefacts of one execute the other exactly
after constant rebinding — changed *constants* hit, changed *shapes* miss,
and changed constant-equality *partitions* miss (they would change
indicator deduplication, hence plan structure).
"""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE
from repro.query import Aggregate, Factor, Op, Predicate, Query, QueryBatch
from repro.serve import batch_fingerprint, bind_batch
from repro.util.errors import PlanError


def _engine(db, **kwargs):
    return LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE, **kwargs))


def _batch(t_units=3.0, t_item=10.0, op=Op.LE, group_by=("store",), name="Q2"):
    return QueryBatch(
        [
            Query(
                "Q1",
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("units", op, t_units),),
            ),
            Query(
                name,
                group_by=group_by,
                aggregates=(Aggregate.sum("units"), Aggregate.count()),
                where=(
                    Predicate("units", op, t_units),
                    Predicate("item", Op.GE, t_item),
                ),
            ),
        ]
    )


def _fp(engine, batch):
    return batch_fingerprint(batch, engine.tree, engine.config)


# ----------------------------------------------------------------- equality
def test_identical_batches_fingerprint_equal(favorita_db):
    engine = _engine(favorita_db)
    fp1, c1 = _fp(engine, _batch())
    fp2, c2 = _fp(engine, _batch())
    assert fp1 == fp2 and c1 == c2
    assert hash(fp1) == hash(fp2)


def test_changed_constants_fingerprint_equal_constants_differ(favorita_db):
    """The cache's raison d'être: same shape, new thresholds → hit."""
    engine = _engine(favorita_db)
    fp1, c1 = _fp(engine, _batch(t_units=3.0, t_item=10.0))
    fp2, c2 = _fp(engine, _batch(t_units=7.0, t_item=25.0))
    assert fp1 == fp2
    assert c1 != c2
    assert c1 == (("<=", 3.0), (">=", 10.0))
    assert c2 == (("<=", 7.0), (">=", 25.0))


# --------------------------------------------------------------- inequality
def test_changed_predicate_op_fingerprints_differ(favorita_db):
    engine = _engine(favorita_db)
    assert _fp(engine, _batch(op=Op.LE))[0] != _fp(engine, _batch(op=Op.LT))[0]


def test_changed_group_by_and_query_name_fingerprints_differ(favorita_db):
    engine = _engine(favorita_db)
    base = _fp(engine, _batch())[0]
    assert base != _fp(engine, _batch(group_by=("item",)))[0]
    assert base != _fp(engine, _batch(name="Q2b"))[0]


def test_changed_aggregate_shape_fingerprints_differ(favorita_db):
    engine = _engine(favorita_db)
    squared = QueryBatch(
        [
            Query(
                "Q1",
                aggregates=(
                    Aggregate.product((Factor("units"), Factor("units"))),
                ),
                where=(Predicate("units", Op.LE, 3.0),),
            )
        ]
    )
    plain = QueryBatch(
        [
            Query(
                "Q1",
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("units", Op.LE, 3.0),),
            )
        ]
    )
    assert _fp(engine, squared)[0] != _fp(engine, plain)[0]


def test_constant_equality_partition_enters_the_fingerprint(favorita_db):
    """(5, 9) vs (7, 7): distinct constants collapsing to one value change
    indicator deduplication, hence plan structure — must be a miss."""
    engine = _engine(favorita_db)

    def pair(a, b):
        return QueryBatch(
            [
                Query(
                    "Q",
                    aggregates=(Aggregate.count(),),
                    where=(
                        Predicate("units", Op.LE, a),
                        Predicate("item", Op.LE, b),
                    ),
                )
            ]
        )

    fp_distinct, _ = _fp(engine, pair(5.0, 9.0))
    fp_collided, _ = _fp(engine, pair(7.0, 7.0))
    fp_distinct2, _ = _fp(engine, pair(2.0, 11.0))
    assert fp_distinct != fp_collided
    assert fp_distinct == fp_distinct2  # both two-distinct-constant shapes


def test_config_and_tree_enter_the_fingerprint(favorita_db):
    # pin both backends explicitly: the CI legs rewrite EngineConfig
    # defaults (tests/conftest.py), so a default-vs-numpy comparison
    # would collapse under LMFAO_TEST_BACKEND=numpy
    e1 = _engine(favorita_db, backend="python")
    e2 = _engine(favorita_db, backend="numpy")
    e3 = LMFAO(favorita_db)  # constructed (not pinned) join tree
    batch = _batch()
    assert _fp(e1, batch)[0] != _fp(e2, batch)[0]
    if e3.tree.edges != e1.tree.edges:
        assert _fp(e1, batch)[0] != (
            batch_fingerprint(batch, e3.tree, e1.config)[0]
        )


# ----------------------------------------------------------------- binding
def test_bind_batch_maps_indicator_slots_to_request_functions(favorita_db):
    engine = _engine(favorita_db)
    cached = engine.compile(_batch(t_units=3.0, t_item=10.0))
    binding = bind_batch(cached, _batch(t_units=7.0, t_item=25.0))
    # the cached slot names key the request's functions
    assert binding.functions["ind[<=3]"].name == "ind[<=7]"
    assert binding.functions["ind[>=10]"].name == "ind[>=25]"
    # non-indicator functions pass through untouched
    assert binding.functions["id"] is cached.functions["id"]
    assert binding.shared_predicates == ()


def test_bind_batch_is_identity_on_equal_constants(favorita_db):
    engine = _engine(favorita_db)
    cached = engine.compile(_batch())
    binding = bind_batch(cached, _batch())
    assert binding.functions == cached.functions


def test_bind_batch_rebinds_pushed_shared_predicates(favorita_db):
    engine = _engine(favorita_db, push_shared_predicates=True)
    shared3 = (Predicate("units", Op.GT, 2.0),)
    shared5 = (Predicate("units", Op.GT, 5.0),)

    def shared_batch(shared):
        return QueryBatch(
            [
                Query("T", aggregates=(Aggregate.sum("units"),), where=shared),
                Query(
                    "S",
                    group_by=("store",),
                    aggregates=(Aggregate.count(),),
                    where=shared,
                ),
            ]
        )

    fp1, _ = _fp(engine, shared_batch(shared3))
    fp2, _ = _fp(engine, shared_batch(shared5))
    assert fp1 == fp2
    cached = engine.compile(shared_batch(shared3))
    assert cached.shared_predicates  # the push actually engaged
    binding = bind_batch(cached, shared_batch(shared5))
    assert tuple(p.signature for p in binding.shared_predicates) == (
        ("units", ">", 5.0),
    )


def test_bind_batch_rejects_shape_divergence(favorita_db):
    engine = _engine(favorita_db)
    cached = engine.compile(_batch())
    with pytest.raises(PlanError, match="fingerprints should have differed"):
        bind_batch(cached, _batch(op=Op.LT))
