"""Per-view identity semantics: what shares, what partitions, what leaks.

The contract under test (docs/serving.md §View cache): a view's cache
identity is its canonical subtree structure plus bound constants plus
execution profile — independent of the *batch* it was compiled in
(query names, sibling queries) and of every run-time scheduling knob
(``adaptive``, ``workers``, ``partitions``, decisions). Snapshot version
then partitions otherwise-equal identities into distinct cache keys.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch
from repro.serve import ViewKey, bind_batch, view_identities

from tests.strategies import instances

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _compile(db, batch, **config_kwargs):
    engine = LMFAO(db, EngineConfig(**config_kwargs))
    return engine.compile(batch)


def _rename(batch: QueryBatch, suffix: str) -> QueryBatch:
    return QueryBatch(
        [
            Query(
                name=q.name + suffix,
                group_by=q.group_by,
                aggregates=q.aggregates,
                where=q.where,
            )
            for q in batch
        ]
    )


# ------------------------------------------------------- cross-batch sharing
@given(instances())
@_SETTINGS
def test_query_names_never_enter_view_identities(instance):
    """Distinct batch fingerprints, same work: renaming every query gives a
    different plan-cache key but the identical multiset of view identities
    — the property the cross-request cache's hit path rests on."""
    base = _compile(instance.db, instance.batch)
    renamed = _compile(instance.db, _rename(instance.batch, "_other"))
    ids_a = sorted(i.key for i in view_identities(base).values())
    ids_b = sorted(i.key for i in view_identities(renamed).values())
    assert ids_a == ids_b


@given(instances(max_queries=2))
@_SETTINGS
def test_adding_a_query_preserves_existing_subtree_identities(instance):
    """Overlapping-but-distinct batches share subtree keys: growing the
    batch with an unrelated count query keeps every identity the original
    compilation produced. The two *deliberately* batch-sensitive layers
    are pinned off: cross-query view merging (a merged view absorbs the
    new query's aggregates and so correctly gets a fresh identity — it
    computes different work) and multi-output grouping (a group absorbing
    the new query's views may re-order its shared scan, which correctly
    enters the execution profile — float accumulation order changes).
    With both off, every per-query view is batch-independent: root
    assignment is per-query and orders depend only on the view and data,
    so identities must survive batch growth verbatim."""
    base = _compile(
        instance.db, instance.batch, merge_views=False, multi_output=False
    )
    grown_batch = QueryBatch(
        list(instance.batch) + [Query(name="Qextra", aggregates=(Aggregate.count(),))]
    )
    grown = _compile(
        instance.db, grown_batch, merge_views=False, multi_output=False
    )
    base_ids = {i.key for i in view_identities(base).values()}
    grown_ids = {i.key for i in view_identities(grown).values()}
    missing = base_ids - grown_ids
    assert not missing


# ------------------------------------------------- constants partition keys
def _favorita_batch(t: float, names=("Q1", "Q2")) -> QueryBatch:
    return QueryBatch(
        [
            Query(
                names[0],
                group_by=("store",),
                aggregates=(Aggregate.count(),),
                where=(Predicate("units", Op.LE, t),),
            ),
            Query(
                names[1],
                group_by=("item",),
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("units", Op.LE, t),),
            ),
        ]
    )


def test_root_local_rebinding_shares_every_subtree_identity(favorita_db):
    """``units`` lives on the Sales root, so its indicator never descends
    into subtree views: rebinding the threshold keeps all identities."""
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    cached = engine.compile(_favorita_batch(5.0))
    cold = view_identities(cached)
    binding = bind_batch(cached, _favorita_batch(9.0))
    warm = view_identities(cached, binding)
    assert cold == warm
    assert len(cold) >= 2


def test_subtree_predicate_rebinding_partitions_exactly_its_views(favorita_db):
    """A predicate over a non-root attribute pushes into the views above
    its home relation: rebinding it must change exactly the identities
    whose subtree contains that relation, and no others."""
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))

    def batch(t):
        return QueryBatch(
            [
                Query(
                    "Q1",
                    group_by=("store",),
                    aggregates=(Aggregate.count(),),
                    where=(Predicate("family", Op.LE, t),),
                ),
                Query(
                    "Q2",
                    group_by=("store",),
                    aggregates=(Aggregate.sum("units"),),
                ),
            ]
        )

    cached = engine.compile(batch(1.0))
    signatures = cached.view_plan.view_signatures()
    home = {
        name
        for name, q in cached.view_plan.views.items()
        if "Items" in signatures[name].subtree
    }
    cold = view_identities(cached)
    warm = view_identities(cached, bind_batch(cached, batch(3.0)))
    changed = {name for name in cold if cold[name] != warm[name]}
    assert changed, "rebinding a pushed-down constant must move some keys"
    assert changed <= home, (
        f"rebinding leaked into views not above Items: {changed - home}"
    )


def test_snapshot_version_partitions_otherwise_equal_keys(favorita_db):
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    compiled = engine.compile(_favorita_batch(5.0))
    identity = next(iter(view_identities(compiled).values()))
    assert ViewKey(identity, 0) == ViewKey(identity, 0)
    assert ViewKey(identity, 0) != ViewKey(identity, 1)
    assert hash(ViewKey(identity, 0)) != hash(ViewKey(identity, 1))


# -------------------------------------------------- scheduling never leaks
@given(instances())
@_SETTINGS
def test_scheduling_knobs_never_leak_into_view_identities(instance):
    """adaptive / workers / partitions / parallel_threshold steer *how* a
    plan runs, never *what* it computes — identities must be invariant.
    (Backend choice legitimately enters the execution profile, because it
    changes float accumulation order; it is pinned here.)"""
    baseline = _compile(instance.db, instance.batch, backend="python")
    tuned = _compile(
        instance.db,
        instance.batch,
        backend="python",
        adaptive=False,
        workers=4,
        partitions=4,
        parallel_threshold=0,
    )
    assert view_identities(baseline) == view_identities(tuned)
