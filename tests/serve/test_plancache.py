"""PlanCache semantics: LRU discipline, eviction, and stats counters."""

import pytest

from repro.serve import PlanCache
from repro.serve.fingerprint import BatchFingerprint
from repro.util.errors import PlanError


def _fp(tag):
    return BatchFingerprint(key=("test", tag))


def test_get_put_and_counters():
    cache = PlanCache(capacity=4)
    assert cache.get(_fp(1)) is None  # miss
    cache.put(_fp(1), "compiled-1")
    assert cache.get(_fp(1)) == "compiled-1"  # hit
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
    assert stats.entries == 1 and stats.capacity == 4
    assert stats.lookups == 2 and stats.hit_rate == 0.5


def test_lru_eviction_drops_the_coldest_entry():
    cache = PlanCache(capacity=2)
    cache.put(_fp("a"), "A")
    cache.put(_fp("b"), "B")
    assert cache.get(_fp("a")) == "A"  # refresh a → b is now coldest
    cache.put(_fp("c"), "C")  # evicts b
    assert cache.get(_fp("b")) is None
    assert cache.get(_fp("a")) == "A"
    assert cache.get(_fp("c")) == "C"
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.entries == 2
    assert len(cache) == 2


def test_put_refreshes_recency_and_overwrites():
    cache = PlanCache(capacity=2)
    cache.put(_fp("a"), "A")
    cache.put(_fp("b"), "B")
    cache.put(_fp("a"), "A2")  # overwrite refreshes a → b coldest
    cache.put(_fp("c"), "C")
    assert cache.get(_fp("a")) == "A2"
    assert cache.get(_fp("b")) is None
    assert _fp("c") in cache and _fp("b") not in cache


def test_hit_rate_zero_before_any_lookup():
    assert PlanCache().stats().hit_rate == 0.0


def test_clear_keeps_counters():
    cache = PlanCache(capacity=2)
    cache.put(_fp("a"), "A")
    cache.get(_fp("a"))
    cache.clear()
    assert len(cache) == 0
    assert cache.get(_fp("a")) is None
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1


def test_capacity_validated():
    with pytest.raises(PlanError, match="capacity"):
        PlanCache(capacity=0)
