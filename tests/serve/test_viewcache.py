"""Materialized-view cache behaviour: sharing, bounds, GC, delta routing.

Differential contract (ISSUE acceptance): every cache-seeded run must be
bit-exact against a cache-off oracle server receiving the same requests
and deltas, with ``LMFAO_DEBUG=1`` arming the maintainer's internal
consistency checks. Lifecycle contract: entries respect the byte bound,
die with their snapshot version (no orphans — also asserted session-wide
by the conftest leak fixture), survive insert-only deltas in place, and
are invalidated exactly when their subtree is dirtied by anything else.
"""

import pytest

from repro.core import EngineConfig
from repro.paper import FAVORITA_TREE
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch
from repro.serve import AggregateServer, LRUCache
from repro.util.errors import PlanError


def _batch(names=("q_stores", "q_items"), t=5.0):
    """Two group-by queries with a root-local (Sales) predicate: every
    leaf-relation view is constant-free, so rebinding and renaming both
    keep all subtree identities."""
    return QueryBatch(
        [
            Query(
                names[0],
                group_by=("store",),
                aggregates=(Aggregate.count(),),
                where=(Predicate("units", Op.LE, t),),
            ),
            Query(
                names[1],
                group_by=("item",),
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("units", Op.LE, t),),
            ),
        ]
    )


def _groups(run):
    return {name: result.groups for name, result in run.results.items()}


def _config():
    return EngineConfig(join_tree_edges=FAVORITA_TREE)


@pytest.fixture()
def oracle_server(favorita_db):
    """The cache-off differential oracle (explicit bytes beat any
    LMFAO_TEST_VIEWCACHE override)."""
    with AggregateServer(favorita_db, _config(), view_cache_bytes=0) as server:
        yield server


@pytest.fixture()
def cached_server(favorita_db):
    with AggregateServer(
        favorita_db, _config(), view_cache_bytes=32 * 1024 * 1024
    ) as server:
        yield server


# ------------------------------------------------------------ seeding + hits
def test_cross_fingerprint_requests_share_views(
    cached_server, oracle_server, monkeypatch
):
    """A plan-cache *miss* can still be a view-cache *hit*: renamed queries
    change the batch fingerprint but not the subtree view identities, so
    the second request skips every leaf group and stays bit-exact."""
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    cold = cached_server.run(_batch(("u1a", "u1b")))
    assert cold.skipped_groups == ()
    warm = cached_server.run(_batch(("u2a", "u2b")))
    assert warm.skipped_groups != ()
    assert "compile" in warm.timings  # renamed → genuinely a plan-cache miss
    oracle = oracle_server.run(_batch(("u2a", "u2b")))
    assert _groups(warm) == _groups(oracle)
    stats = cached_server.stats()
    assert stats.view_cache is not None
    assert stats.view_cache.hits > 0
    assert stats.plan_cache.hits == 0  # sharing happened below the plan cache


def test_same_fingerprint_warm_run_skips_all_view_groups(cached_server):
    cached_server.run(_batch())
    warm = cached_server.run(_batch())
    assert "compile" not in warm.timings
    assert warm.skipped_groups != ()
    # every skipped group is absent from per-group accounting
    for name in warm.skipped_groups:
        assert name not in warm.group_times


def test_rebound_constants_still_hit_subtree_views(cached_server, oracle_server):
    """The root-local predicate keeps leaf views constant-free: a new
    threshold rebinds the plan *and* still seeds from the cache."""
    cached_server.run(_batch(t=5.0))
    warm = cached_server.run(_batch(t=9.0))
    assert warm.skipped_groups != ()
    assert _groups(warm) == _groups(oracle_server.run(_batch(t=9.0)))


def test_disabled_cache_never_seeds(favorita_db):
    with AggregateServer(favorita_db, _config(), view_cache_bytes=0) as server:
        server.run(_batch())
        warm = server.run(_batch())
        assert warm.skipped_groups == ()
        assert server.stats().view_cache is None
        assert "views=off" in repr(server)


def test_invalid_view_cache_bytes_rejected(favorita_db):
    with pytest.raises(PlanError, match="view_cache_bytes"):
        AggregateServer(favorita_db, _config(), view_cache_bytes=-1)
    with pytest.raises(PlanError, match="view_cache_bytes"):
        AggregateServer(favorita_db, _config(), view_cache_bytes="lots")


# ----------------------------------------------------------------- byte bound
def test_byte_bound_holds_and_evicts_cold_entries(favorita_db):
    with AggregateServer(
        favorita_db, _config(), view_cache_bytes=4096
    ) as server:
        for group_by in [("store",), ("item",), ("family",), ("class",)]:
            server.run(
                QueryBatch(
                    [Query("q", group_by=group_by, aggregates=(Aggregate.count(),))]
                )
            )
            stats = server.stats().view_cache
            assert stats.weight <= stats.max_weight == 4096
        assert server.stats().view_cache.evictions > 0


# ------------------------------------------------------------- delta routing
def test_insert_only_delta_keeps_cache_warm_in_place(
    cached_server, oracle_server, monkeypatch
):
    """Insert-only deltas must not cold-start the cache: clean-subtree
    entries are carried to the successor version, the dirtied leaf view is
    refreshed through the O(|delta|) numeric path, and a renamed request
    still skips every leaf group — bit-exact against the oracle server
    that replayed the same delta."""
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    cached_server.run(_batch(("u1a", "u1b")))
    before = len(cached_server.view_cache)
    assert before > 0
    items = cached_server.engine.db.relation("Items")
    delta = {"Items": [items.row(0)]}
    version = cached_server.apply(inserts=delta)
    oracle_server.apply(inserts=delta)
    # every entry survived to the successor: carried (clean subtree) or
    # numerically refreshed (the Items view), none invalidated
    assert len(cached_server.view_cache.entries_at(version)) == before
    refreshed = [
        entry
        for _, entry in cached_server.view_cache.entries_at(version)
        if "Items" in entry.subtree
    ]
    assert refreshed, "the dirtied Items view must be refreshed, not dropped"
    warm = cached_server.run(_batch(("u2a", "u2b")))
    assert warm.snapshot_version == version
    assert warm.skipped_groups != ()
    assert _groups(warm) == _groups(oracle_server.run(_batch(("u2a", "u2b"))))


def test_root_relation_delta_dirties_no_leaf_views(
    cached_server, oracle_server, monkeypatch
):
    """Sales is the join-tree root: its tuples feed no leaf-relation view,
    so a Sales-only delta carries the whole cache forward untouched."""
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    cached_server.run(_batch(("u1a", "u1b")))
    before = len(cached_server.view_cache)
    sales = cached_server.engine.db.relation("Sales")
    delta = {"Sales": [sales.row(0), sales.row(1)]}
    version = cached_server.apply(inserts=delta)
    oracle_server.apply(inserts=delta)
    assert len(cached_server.view_cache.entries_at(version)) == before
    warm = cached_server.run(_batch(("u2a", "u2b")))
    assert warm.skipped_groups != ()
    assert _groups(warm) == _groups(oracle_server.run(_batch(("u2a", "u2b"))))


def test_delete_delta_invalidates_exactly_the_dirty_views(
    cached_server, oracle_server, monkeypatch
):
    """Deletes cannot be folded in place: entries whose subtree contains
    the deleted relation die, every other entry is carried — and the next
    request recomputes only the dirty subtree, bit-exactly."""
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    cached_server.run(_batch(("u1a", "u1b")))
    old = cached_server.view_cache.entries_at(
        cached_server.engine.snapshot().version
    )
    dirty_before = [e for _, e in old if "Items" in e.subtree]
    clean_before = [e for _, e in old if "Items" not in e.subtree]
    assert dirty_before and clean_before
    items = cached_server.engine.db.relation("Items")
    delta = {"Items": [items.row(0)]}
    version = cached_server.apply(deletes=delta)
    oracle_server.apply(deletes=delta)
    after = cached_server.view_cache.entries_at(version)
    assert not any("Items" in e.subtree for _, e in after)
    assert len(after) == len(clean_before)
    warm = cached_server.run(_batch(("u2a", "u2b")))
    # the clean leaf groups still skip; the Items group re-runs
    assert warm.skipped_groups != ()
    assert not any("Items" in name for name in warm.skipped_groups)
    assert _groups(warm) == _groups(oracle_server.run(_batch(("u2a", "u2b"))))


# ------------------------------------------------------------------ lifetime
def test_entries_die_with_their_snapshot_version(cached_server):
    """No cached view outlives its unpinned version: once a successor is
    installed and the predecessor loses its last pin, the reclaim hook
    drops every entry keyed at it."""
    cached_server.run(_batch())
    sales = cached_server.engine.db.relation("Sales")
    version = cached_server.apply(inserts={"Sales": [sales.row(0)]})
    # version 0 is superseded and unpinned: only the successor's entries
    # may remain, and the no-orphans invariant holds
    assert cached_server.view_cache.versions() <= {version}
    cached_server.view_cache.check_no_orphans()


def test_close_unhooks_the_cache(favorita_db):
    server = AggregateServer(
        favorita_db, _config(), view_cache_bytes=32 * 1024 * 1024
    )
    server.run(_batch())
    store = server.engine._snapshots
    hook = server._view_reclaim_hook
    assert hook is not None
    server.close()
    assert server._view_reclaim_hook is None
    # removing twice is a no-op, not an error
    store.remove_reclaim_hook(hook)


# ----------------------------------------------------- LRU weight-mode unit
def test_lru_weight_mode_evicts_cold_until_under_bound():
    lru = LRUCache(max_weight=100)
    lru.put("a", 1, weight=40)
    lru.put("b", 2, weight=40)
    assert lru.get("a") == 1  # refresh a: b is now coldest
    lru.put("c", 3, weight=40)
    assert "b" not in lru and "a" in lru and "c" in lru
    assert lru.stats().weight == 80
    assert lru.stats().evictions == 1


def test_lru_weight_mode_oversized_entry_cannot_break_the_bound():
    lru = LRUCache(max_weight=100)
    lru.put("a", 1, weight=60)
    lru.put("big", 2, weight=500)
    assert lru.stats().weight <= 100


def test_lru_remove_where_is_not_an_eviction():
    lru = LRUCache(max_weight=100)
    lru.put(("k", 0), 1, weight=10)
    lru.put(("k", 1), 2, weight=10)
    removed = lru.remove_where(lambda key: key[1] == 0)
    assert removed == 1
    assert lru.stats().evictions == 0
    assert lru.stats().weight == 10


def test_lru_peek_does_not_touch_counters_or_recency():
    lru = LRUCache(max_weight=100)
    lru.put("a", 1, weight=10)
    lru.put("b", 2, weight=10)
    assert lru.peek("a") == 1
    assert lru.peek("missing") is None
    stats = lru.stats()
    assert stats.hits == 0 and stats.misses == 0
