"""Ordering in the serving identities: fingerprints, bind, view cache.

A top-k result *contains different rows* than its unordered twin, so
order specs are literal structure everywhere identity is decided:
batches differing only in ``order_by``/``limit`` must fingerprint apart
(no plan-cache sharing), ``bind_batch`` must refuse to rebind across an
order divergence, and the views feeding an ordered query must carry the
order profile in their :class:`ViewIdentity` (no view-cache sharing with
unordered or different-k requests) — while purely unordered batches keep
byte-identical signatures, so nothing previously cacheable got split.
Cache-seeded ordered runs must stay bit-exact against a cache-off oracle
server, rank and tie order included.
"""

from __future__ import annotations

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE
from repro.query import Aggregate, OrderSpec, Query, QueryBatch
from repro.serve import AggregateServer
from repro.serve.fingerprint import batch_fingerprint, bind_batch, view_identities
from repro.util.errors import PlanError


def _config():
    return EngineConfig(join_tree_edges=FAVORITA_TREE)


def _batch(names=("q_stores", "q_items"), order=None, limit=None):
    """Two favorita group-bys; ``order``/``limit`` applied to the first."""
    return QueryBatch(
        [
            Query(
                names[0],
                group_by=("store",),
                aggregates=(Aggregate.count(),),
                order_by=order,
                limit=limit,
            ),
            Query(
                names[1],
                group_by=("item",),
                aggregates=(Aggregate.sum("units"),),
            ),
        ]
    )


def _groups_ordered(run):
    return {
        name: list(result.groups.items()) for name, result in run.results.items()
    }


def test_order_spec_is_literal_fingerprint_structure(favorita_db):
    engine = LMFAO(favorita_db, _config())
    tree, config = engine.tree, engine.config
    plain, _ = batch_fingerprint(_batch(), tree, config)
    ordered, _ = batch_fingerprint(
        _batch(order=OrderSpec(descending=True), limit=3), tree, config
    )
    ordered_again, _ = batch_fingerprint(
        _batch(order=OrderSpec(descending=True), limit=3), tree, config
    )
    other_k, _ = batch_fingerprint(
        _batch(order=OrderSpec(descending=True), limit=5), tree, config
    )
    other_dir, _ = batch_fingerprint(
        _batch(order=OrderSpec(descending=False), limit=3), tree, config
    )
    unlimited, _ = batch_fingerprint(
        _batch(order=OrderSpec(descending=True)), tree, config
    )
    assert ordered == ordered_again
    assert len({plain, ordered, other_k, other_dir, unlimited}) == 5


def test_bind_batch_refuses_order_divergence(favorita_db):
    engine = LMFAO(favorita_db, _config())
    compiled = engine.compile(_batch(order=OrderSpec(descending=True), limit=3))
    # same order: binds fine
    bind_batch(compiled, _batch(order=OrderSpec(descending=True), limit=3))
    with pytest.raises(PlanError, match="diverged structurally"):
        bind_batch(compiled, _batch(order=OrderSpec(descending=True), limit=5))
    with pytest.raises(PlanError, match="diverged structurally"):
        bind_batch(compiled, _batch())


def test_view_identities_carry_the_order_profile(favorita_db):
    engine = LMFAO(favorita_db, _config())
    plain = view_identities(engine.compile(_batch()))
    plain_again = view_identities(engine.compile(_batch()))
    ordered = view_identities(
        engine.compile(_batch(order=OrderSpec(descending=True), limit=3))
    )
    other_k = view_identities(
        engine.compile(_batch(order=OrderSpec(descending=True), limit=5))
    )
    # unordered signatures are untouched: recompiling yields the same keys
    assert plain == plain_again
    assert set(plain) == set(ordered) == set(other_k)
    # at least the ordered query's feeding views split from the plain and
    # from the different-k identities
    assert any(plain[name] != ordered[name] for name in plain)
    assert any(ordered[name] != other_k[name] for name in ordered)
    # q_items is untouched by q_stores' order spec only where its subtree
    # is disjoint; identity never *collides* across specs anywhere
    for name in plain:
        if ordered[name] != plain[name]:
            assert ordered[name] != other_k[name]


def test_cache_seeded_ordered_runs_bit_exact(favorita_db, monkeypatch):
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    batch = _batch(order=OrderSpec(descending=True), limit=3)
    with AggregateServer(
        favorita_db, _config(), view_cache_bytes=32 * 1024 * 1024
    ) as cached, AggregateServer(
        favorita_db, _config(), view_cache_bytes=0
    ) as oracle:
        cold = cached.run(batch)
        assert cold.skipped_groups == ()
        warm = cached.run(batch)
        assert warm.skipped_groups != ()  # seeded below the ordered root
        want = _groups_ordered(oracle.run(batch))
        assert _groups_ordered(cold) == want
        assert _groups_ordered(warm) == want
        # ordered queries are never themselves seeded: their producer has
        # a decision entry recording the finishing kernel even when warm
        recorded = {
            name
            for entry in warm.decisions.values()
            for name in entry.get("topk", {})
        }
        assert recorded == {"q_stores"}


def test_ordered_and_unordered_requests_never_share_views(favorita_db):
    with AggregateServer(
        favorita_db, _config(), view_cache_bytes=32 * 1024 * 1024
    ) as server:
        server.run(_batch())
        ordered = server.run(_batch(order=OrderSpec(descending=True), limit=3))
        # nothing seeded: every identity differs from the unordered run's
        assert ordered.skipped_groups == ()
