"""Test helpers: the brute-force oracle and result comparison."""

from __future__ import annotations

import math

from repro.baselines.common import evaluate_on_join
from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.query.query import Query, QueryResult


def oracle(db_or_join: Database | Relation, query: Query) -> QueryResult:
    """Ground truth: evaluate over the materialised join.

    Uses indicator semantics for WHERE (the engine's folded semantics):
    every join group appears, zeroed where the predicate fails.
    """
    join = (
        db_or_join
        if isinstance(db_or_join, Relation)
        else db_or_join.materialize_join()
    )
    return evaluate_on_join(query, join, where_mode="indicator")


def assert_results_equal(
    actual: QueryResult,
    expected: QueryResult,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-9,
) -> None:
    """Bag equality of grouped aggregate results with float tolerance."""
    assert set(actual.groups) == set(expected.groups), (
        f"{actual.query.name}: group keys differ; "
        f"missing={sorted(set(expected.groups) - set(actual.groups))[:5]} "
        f"extra={sorted(set(actual.groups) - set(expected.groups))[:5]}"
    )
    for key, want in expected.groups.items():
        got = actual.groups[key]
        assert len(got) == len(want), f"width mismatch at {key}"
        for g, w in zip(got, want):
            assert math.isclose(g, w, rel_tol=rel_tol, abs_tol=abs_tol), (
                f"{actual.query.name}[{key}]: {g} != {w}"
            )


def drop_zero_groups(result: QueryResult) -> QueryResult:
    """Remove groups whose aggregates are all zero.

    Normalisation for comparing indicator semantics (engine) against SQL
    WHERE semantics (filtering baselines).
    """
    groups = {
        key: values
        for key, values in result.groups.items()
        if any(v != 0.0 for v in values)
    }
    return QueryResult(query=result.query, groups=groups)
