"""Weighted k-means invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import weighted_kmeans
from repro.ml.kmeans import weighted_inertia


def test_separated_clusters_found():
    rng = np.random.default_rng(0)
    a = rng.normal(0.0, 0.1, size=(40, 2))
    b = rng.normal(10.0, 0.1, size=(40, 2))
    points = np.vstack([a, b])
    result = weighted_kmeans(points, None, k=2, seed=1)
    centers = sorted(result.centroids[:, 0])
    assert centers[0] == pytest.approx(0.0, abs=0.2)
    assert centers[1] == pytest.approx(10.0, abs=0.2)


def test_weights_pull_centroids():
    points = np.array([[0.0], [1.0]])
    heavy_left = weighted_kmeans(points, np.array([100.0, 1.0]), k=1, seed=0)
    assert heavy_left.centroids[0, 0] == pytest.approx(100.0 / 101.0 * 0.0 + 1.0 / 101.0)


def test_k_clamped_to_distinct_points():
    points = np.array([[1.0], [1.0], [2.0]])
    result = weighted_kmeans(points, None, k=5, seed=0)
    assert result.k == 2


def test_1d_input_accepted():
    result = weighted_kmeans(np.array([1.0, 2.0, 3.0]), None, k=2, seed=0)
    assert result.centroids.shape == (2, 1)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        weighted_kmeans(np.empty((0, 2)), None, k=2)
    with pytest.raises(ValueError):
        weighted_kmeans(np.ones((3, 1)), np.array([1.0, -1.0, 1.0]), k=2)
    with pytest.raises(ValueError):
        weighted_kmeans(np.ones((3, 1)), np.ones(2), k=2)


def test_deterministic_under_seed():
    rng = np.random.default_rng(3)
    points = rng.normal(size=(50, 3))
    a = weighted_kmeans(points, None, k=4, seed=9)
    b = weighted_kmeans(points, None, k=4, seed=9)
    assert np.array_equal(a.centroids, b.centroids)


@given(seed=st.integers(0, 100), n=st.integers(3, 40), k=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_inertia_not_worse_than_single_centroid(seed, n, k):
    """k centroids are never worse than the weighted mean (k=1 optimum)."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2))
    weights = rng.uniform(0.1, 2.0, size=n)
    result = weighted_kmeans(points, weights, k=k, seed=seed)
    mean = (points * weights[:, None]).sum(0) / weights.sum()
    single = weighted_inertia(points, weights, mean[None, :])
    assert result.inertia <= single + 1e-7


@given(seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_reported_inertia_matches_centroids(seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(30, 2))
    weights = rng.uniform(0.5, 1.5, size=30)
    result = weighted_kmeans(points, weights, k=3, seed=seed)
    recomputed = weighted_inertia(points, weights, result.centroids)
    assert result.inertia == pytest.approx(recomputed, rel=1e-9)
