"""Ridge regression: BGD over Σ vs the closed form, predictions."""

import numpy as np
import pytest

from repro.baselines import MaterializedPipeline
from repro.core import EngineConfig, LMFAO
from repro.ml import FeatureSpec, train_linear_regression
from repro.ml.covariance import assemble_sigma, covariance_batch
from repro.ml.linreg import _objective, closed_form_theta, encode_rows, sigma_from_engine
from repro.paper import FAVORITA_TREE


@pytest.fixture(scope="module")
def small_spec():
    return FeatureSpec(
        label="units",
        continuous=("txns", "price"),
        categorical=("promo", "stype"),
    )


@pytest.fixture(scope="module")
def trained(favorita_db_module, small_spec):
    engine = LMFAO(favorita_db_module, EngineConfig(join_tree_edges=FAVORITA_TREE))
    return engine, train_linear_regression(
        engine, small_spec, ridge=1e-2, max_iterations=4000, tolerance=1e-12
    )


@pytest.fixture(scope="module")
def favorita_db_module():
    from repro.data import favorita

    return favorita(scale=0.05, seed=7)


def test_bgd_reaches_closed_form_objective(favorita_db_module, small_spec, trained):
    engine, model = trained
    sigma, index, count, _, _ = sigma_from_engine(engine, small_spec)
    reference = closed_form_theta(sigma, index, count, 1e-2)
    best = _objective(sigma, reference, count, 1e-2, index.label_column)
    # first-order BGD reaches the strongly-convex optimum up to a small gap
    assert model.objective <= best * 1.01


def test_objective_trace_monotone(trained):
    _, model = trained
    trace = model.objective_trace
    assert all(b <= a + 1e-12 for a, b in zip(trace, trace[1:]))


def test_predictions_against_numpy_ridge(favorita_db_module, small_spec, trained):
    """BGD predictions must match a scikit-style dense ridge fit."""
    engine, model = trained
    pipeline = MaterializedPipeline(favorita_db_module)
    join = pipeline.join
    rows = {a: join.column(a) for a in small_spec.all_attributes}
    x = encode_rows(model.index, rows)
    x_feat = np.delete(x, model.index.label_column, axis=1)
    y = join.column(small_spec.label).astype(np.float64)
    n = len(y)
    penalties = np.full(x_feat.shape[1], 1e-2)
    penalties[0] = 0.0  # intercept unpenalised, as in the engine objective
    w = np.linalg.solve(
        x_feat.T @ x_feat / n + np.diag(penalties), x_feat.T @ y / n
    )
    dense_pred = x_feat @ w
    model_pred = model.predict_rows(rows)
    # same objective => same predictions up to optimisation tolerance
    rmse = np.sqrt(np.mean((dense_pred - model_pred) ** 2))
    scale = np.sqrt(np.mean(dense_pred**2)) + 1e-9
    assert rmse / scale < 0.05


def test_label_parameter_fixed(trained):
    _, model = trained
    assert model.theta[model.index.label_column] == -1.0


def test_aggregates_reused_across_iterations(trained):
    """One aggregate pass, many iterations (the paper's point)."""
    _, model = trained
    assert model.iterations > 1
    assert model.num_aggregates == len(covariance_batch(model.spec))


def test_unseen_category_encodes_to_zero(trained):
    _, model = trained
    rows = {
        "units": np.array([0.0]),
        "txns": np.array([100.0]),
        "price": np.array([50.0]),
        "promo": np.array([999]),  # unseen category
        "stype": np.array([999]),
    }
    prediction = model.predict_rows(rows)
    assert prediction.shape == (1,)
    assert np.isfinite(prediction[0])
