"""The covariance batch: query generation and Σ assembly."""

import numpy as np
import pytest

from repro.baselines import MaterializedPipeline
from repro.core import EngineConfig, LMFAO
from repro.ml import FeatureSpec, assemble_sigma, covariance_batch
from repro.ml.features import favorita_features, retailer_features
from repro.ml.linreg import encode_rows
from repro.paper import FAVORITA_TREE


def expected_query_count(c: int, t: int) -> int:
    """c continuous (incl. label), t categorical.

    1 count + c sums + t histograms + C(c+1,2) cont-cont + t*c cat-cont
    + C(t,2) cat-cat.
    """
    return 1 + c + t + c * (c + 1) // 2 + t * c + t * (t - 1) // 2


def test_batch_size_formula():
    spec = FeatureSpec(label="y", continuous=("a", "b"), categorical=("p", "q", "r"))
    batch = covariance_batch(spec)
    assert len(batch) == expected_query_count(3, 3)
    assert batch.num_aggregates == len(batch)  # one aggregate per entry


def test_batch_sizes_for_paper_specs(favorita_db, retailer_db):
    fav = favorita_features(favorita_db)
    ret = retailer_features(retailer_db)
    assert len(covariance_batch(fav)) == expected_query_count(
        1 + len(fav.continuous), len(fav.categorical)
    )
    # Retailer: 31 continuous incl. label, 8 categorical -> the published
    # order of magnitude (hundreds of aggregates)
    ret_batch = covariance_batch(ret)
    assert len(ret_batch) == expected_query_count(31, 8)
    assert 600 <= ret_batch.num_aggregates <= 1000


def test_sigma_matches_design_matrix(favorita_db):
    spec = FeatureSpec(
        label="units",
        continuous=("txns", "price"),
        categorical=("store", "promo", "family"),
    )
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    run = engine.run(covariance_batch(spec))
    sigma, index, count = assemble_sigma(spec, run.results)

    pipeline = MaterializedPipeline(favorita_db)
    join = pipeline.join
    rows = {a: join.column(a) for a in spec.all_attributes}
    x = encode_rows(index, rows)
    x[:, index.label_column] = join.column(spec.label)
    reference = x.T @ x
    assert count == join.num_rows
    assert np.allclose(sigma, reference)


def test_sigma_is_symmetric_psd(favorita_db, favorita_engine):
    spec = FeatureSpec(label="units", continuous=("txns",), categorical=("stype",))
    run = favorita_engine.run(covariance_batch(spec))
    sigma, _, _ = assemble_sigma(spec, run.results)
    assert np.allclose(sigma, sigma.T)
    eigenvalues = np.linalg.eigvalsh(sigma)
    assert eigenvalues.min() >= -1e-8 * max(1.0, eigenvalues.max())


def test_feature_index_layout(favorita_db, favorita_engine):
    spec = FeatureSpec(label="units", continuous=("txns",), categorical=("promo",))
    run = favorita_engine.run(covariance_batch(spec))
    _, index, _ = assemble_sigma(spec, run.results)
    names = index.column_names()
    assert names[0] == "1"
    assert names[1] == "units"
    assert names[2] == "txns"
    assert all(n.startswith("promo=") for n in names[3:])
    assert index.dimension == len(names)


def test_spec_validation(favorita_db):
    from repro.util.errors import QueryError

    with pytest.raises(QueryError):
        FeatureSpec(label="units", continuous=("units",), categorical=())
    spec = favorita_features(favorita_db)
    spec.validate_against(favorita_db.schema)
    bad = FeatureSpec(label="nope", continuous=(), categorical=())
    with pytest.raises(Exception):
        bad.validate_against(favorita_db.schema)


def test_infer_features(favorita_db):
    from repro.ml.features import infer_features

    spec = infer_features(favorita_db, label="units")
    assert "txns" in spec.continuous
    assert "units" not in spec.continuous
    assert spec.num_features > 5
