"""Rk-means: grid coreset construction and approximation quality."""

import numpy as np
import pytest

from repro.baselines import MaterializedPipeline
from repro.ml import rk_means
from repro.ml.rkmeans import closest_centroid, evaluate_against_lloyds
from repro.util.errors import QueryError


@pytest.fixture(scope="module")
def db():
    from repro.data import favorita

    return favorita(scale=0.05, seed=13)


@pytest.fixture(scope="module")
def result(db):
    return rk_means(db, dimensions=("units", "txns", "price"), k=3, seed=0)


def test_requires_dimensions(db):
    with pytest.raises(QueryError):
        rk_means(db, dimensions=(), k=3)


def test_query_count_is_n_plus_one(result):
    assert result.num_queries == 4  # three dimensions + the grid query


def test_grid_weights_total_rows(db, result):
    """Grid point weights partition the dataset: Σ weights = |D|."""
    join = MaterializedPipeline(db).join
    assert result.grid_weights.sum() == pytest.approx(join.num_rows)


def test_grid_points_lie_on_per_dimension_centroids(result):
    """Each grid coordinate in dimension j is one of the k 1-D centroids."""
    for j in range(len(result.dimensions)):
        coords = set(np.round(result.grid_points[:, j], 9))
        assert len(coords) <= result.k


def test_coreset_is_small(db, result):
    join = MaterializedPipeline(db).join
    assert result.coreset_size <= min(result.k ** 3, join.num_rows)


def test_centroid_shape_and_steps(result):
    assert result.centroids.shape == (3, 3)
    assert set(result.step_seconds) == {
        "step1_histograms",
        "step2_kmeans_1d",
        "step3_grid",
        "step4_kmeans_grid",
    }
    assert set(result.per_dimension_seconds) == set(result.dimensions)


def test_quality_close_to_lloyds(db, result):
    """The paper's constant-factor approximation: on well-behaved data the
    relative gap to Lloyd's should be a modest constant."""
    evaluation = evaluate_against_lloyds(db, result, lloyd_runs=5, seed=1)
    assert evaluation.rk_inertia >= 0
    assert evaluation.lloyd_inertia_mean > 0
    assert evaluation.relative_approximation < 2.0
    assert 0 < evaluation.coreset_ratio <= 1.0


def test_closest_centroid_probe(result):
    point = result.centroids[1]
    assert closest_centroid(result, point) == 1


def test_single_dimension(db):
    result = rk_means(db, dimensions=("units",), k=2, seed=0)
    assert result.centroids.shape == (2, 1)
    assert result.num_queries == 2
