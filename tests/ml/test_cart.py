"""CART over aggregate batches vs direct computation on the join."""

import numpy as np
import pytest

from repro.baselines import MaterializedPipeline
from repro.core import EngineConfig, LMFAO
from repro.ml import CartConfig, FeatureSpec, RegressionTree, cart_node_batch
from repro.paper import FAVORITA_TREE
from repro.query.predicates import Op, Predicate


@pytest.fixture(scope="module")
def db():
    from repro.data import favorita

    return favorita(scale=0.05, seed=11)


@pytest.fixture(scope="module")
def spec():
    return FeatureSpec(
        label="units", continuous=("txns", "price"), categorical=("promo", "stype")
    )


def test_node_batch_shapes(spec):
    groupby = cart_node_batch(spec, path=())
    # one totals query + one per feature
    assert len(groupby) == 1 + spec.num_features
    assert groupby.num_aggregates == 3 * (1 + spec.num_features)

    thresholds = {"txns": [1.0, 2.0], "price": [3.0]}
    indicator = cart_node_batch(spec, path=(), mode="indicator", thresholds=thresholds)
    # totals + per-threshold triples + categorical group-bys
    assert indicator.num_aggregates == 3 + 3 * 3 + 3 * 2


def test_indicator_mode_requires_thresholds(spec):
    with pytest.raises(ValueError):
        cart_node_batch(spec, path=(), mode="indicator")
    with pytest.raises(ValueError):
        cart_node_batch(spec, path=(), mode="nope")


def test_root_split_matches_exhaustive_search(db, spec):
    """The engine-chosen root split equals brute force over the join."""
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    tree = RegressionTree(spec, CartConfig(max_depth=1, min_samples=5)).fit(engine)
    join = MaterializedPipeline(db).join
    y = join.column("units").astype(float)

    def variance(mask):
        if mask.sum() == 0:
            return 0.0
        sel = y[mask]
        return sel @ sel - sel.sum() ** 2 / mask.sum()

    best = (np.inf, None, None)
    for feature in spec.continuous:
        col = join.column(feature)
        for t in np.unique(col)[:-1]:
            mask = col <= t
            if mask.sum() < 5 or (~mask).sum() < 5:
                continue
            v = variance(mask) + variance(~mask)
            if v < best[0] - 1e-9:
                best = (v, feature, float(t))
    for feature in spec.categorical:
        col = join.column(feature)
        for value in np.unique(col):
            mask = col == value
            if mask.sum() < 5 or (~mask).sum() < 5:
                continue
            v = variance(mask) + variance(~mask)
            if v < best[0] - 1e-9:
                best = (v, feature, float(value))

    assert tree.root.feature == best[1]
    assert tree.root.threshold == pytest.approx(best[2])


def test_tree_predictions_are_leaf_means(db, spec):
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    tree = RegressionTree(spec, CartConfig(max_depth=2, min_samples=5)).fit(engine)
    join = MaterializedPipeline(db).join
    rows = {a: join.column(a) for a in spec.all_attributes}
    predictions = tree.predict_rows(rows)
    y = join.column("units").astype(float)
    # group rows by predicted leaf value; each group's mean must equal it
    for value in np.unique(predictions):
        mask = predictions == value
        assert y[mask].mean() == pytest.approx(value, rel=1e-9)


def test_indicator_mode_agrees_with_groupby_mode(db, spec):
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    a = RegressionTree(
        spec, CartConfig(max_depth=2, min_samples=5, mode="groupby")
    ).fit(engine)
    b = RegressionTree(
        spec,
        CartConfig(max_depth=2, min_samples=5, mode="indicator", num_thresholds=200),
    ).fit(engine)
    # with exhaustive thresholds both modes choose the same root split
    assert a.root.feature == b.root.feature
    assert a.root.threshold == pytest.approx(b.root.threshold)


def test_tree_respects_depth_and_counts(db, spec):
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    tree = RegressionTree(spec, CartConfig(max_depth=2, min_samples=5)).fit(engine)

    def walk(node, depth=0):
        assert depth <= 2
        if not node.is_leaf:
            assert node.left.count + node.right.count == pytest.approx(node.count)
            walk(node.left, depth + 1)
            walk(node.right, depth + 1)

    walk(tree.root)
    assert tree.total_aggregates >= tree.aggregates_per_node * tree.num_nodes > 0
    assert "predict" in tree.describe()


def test_unfitted_tree_raises(spec):
    with pytest.raises(RuntimeError):
        RegressionTree(spec, CartConfig()).predict_rows({"txns": np.array([1.0])})
    assert RegressionTree(spec, CartConfig()).describe() == "(unfitted tree)"


def test_path_conditions_restrict_counts(db, spec):
    """Aggregates under a path condition match the filtered join."""
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    path = (Predicate("promo", Op.EQ, 1.0),)
    batch = cart_node_batch(spec, path)
    run = engine.run(batch)
    totals = run.results["node_total"].groups[()]
    join = MaterializedPipeline(db).join
    mask = join.column("promo") == 1
    assert totals[0] == pytest.approx(mask.sum())
    assert totals[1] == pytest.approx(join.column("units")[mask].sum())
