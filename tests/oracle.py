"""The ordered differential oracle: independent ranking over the join.

The engine's ordered path (:mod:`repro.core.topk`) ranks with composite
sort keys (one ``sorted``/``heapq``/``lexsort`` pass over
``(partition, ±value, residual key)``). The oracle here deliberately
uses a *different* algorithm over a *different* evaluation: the full
grouped result comes from brute-force evaluation over the materialised
join (:func:`tests.helpers.oracle`), and the ranking is a two-pass
stable sort per partition — residual key ascending first, then a stable
sort on the order value with ``reverse=descending``. Agreement between
the two is therefore evidence, not tautology.

``assert_ordered_equal`` is the comparison contract of every ordered
grid: key *sequences* (including tie order) must be identical, values
numerically equal within float tolerance. When pandas is importable the
oracle additionally cross-checks its own ranking against a
``DataFrame.sort_values`` implementation; the environment here ships
without pandas, so that arm is skipped silently rather than stubbed.
"""

from __future__ import annotations

import math

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.query.query import Query, QueryResult

from tests.helpers import oracle

try:  # optional cross-check only — never a hard dependency
    import pandas as _pd
except ImportError:  # pragma: no cover - absent in the shipped image
    _pd = None


def rank_reference(query: Query, full: QueryResult) -> QueryResult:
    """Rank + truncate ``full`` per the query's order spec (reference).

    Two-pass stable sort per partition: rows are first ordered by the
    residual group-by key ascending, then stably by the order aggregate
    (``reverse`` for descending specs) — ties keep the residual order,
    realising the same total order as the engine's composite keys by a
    different route. Partitions are emitted in ascending key order.
    """
    spec = query.order_by
    if spec is None:
        raise ValueError(f"{query.name} is not an ordered query")
    partition = tuple(query.group_by.index(a) for a in spec.partition_by)
    in_partition = set(partition)
    residual = tuple(
        i for i in range(len(query.group_by)) if i not in in_partition
    )

    buckets: dict[tuple, list] = {}
    for key, values in full.groups.items():
        key = key if isinstance(key, tuple) else (key,)
        part = tuple(key[i] for i in partition)
        buckets.setdefault(part, []).append(
            (key, tuple(float(v) for v in values))
        )

    groups: dict[tuple, tuple[float, ...]] = {}
    for part in sorted(buckets):
        rows = sorted(
            buckets[part], key=lambda row: tuple(row[0][i] for i in residual)
        )
        rows.sort(key=lambda row: row[1][spec.agg_index], reverse=spec.descending)
        if query.limit is not None:
            rows = rows[: query.limit]
        for key, values in rows:
            groups[key] = values
    result = QueryResult(query=query, groups=groups)
    if _pd is not None:
        _pandas_cross_check(query, full, result)
    return result


def ordered_oracle(db_or_join: Database | Relation, query: Query) -> QueryResult:
    """Ground truth for an ordered query: brute-force join + reference rank."""
    return rank_reference(query, oracle(db_or_join, query))


def assert_ordered_equal(
    actual: QueryResult,
    expected: QueryResult,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-9,
) -> None:
    """Sequence equality of ordered results: same keys, same *order*.

    Tie order is part of the contract — two results that contain the
    same rows but interleave ties differently fail here, which is what
    makes the cross-backend / cross-executor / incremental grids assert
    bit-exact determinism rather than mere set agreement.
    """
    actual_keys = list(actual.groups)
    expected_keys = list(expected.groups)
    assert actual_keys == expected_keys, (
        f"{actual.query.name}: ordered key sequences differ;\n"
        f"  actual[:8]   = {actual_keys[:8]}\n"
        f"  expected[:8] = {expected_keys[:8]}"
    )
    for key, want in expected.groups.items():
        got = actual.groups[key]
        assert len(got) == len(want), f"width mismatch at {key}"
        for g, w in zip(got, want):
            assert math.isclose(g, w, rel_tol=rel_tol, abs_tol=abs_tol), (
                f"{actual.query.name}[{key}]: {g} != {w}"
            )


def _pandas_cross_check(
    query: Query, full: QueryResult, reference: QueryResult
) -> None:  # pragma: no cover - pandas absent in the shipped image
    """Third opinion via ``DataFrame.sort_values`` (runs only with pandas)."""
    spec = query.order_by
    rows = []
    for key, values in full.groups.items():
        key = key if isinstance(key, tuple) else (key,)
        rows.append(dict(zip(query.group_by, key)) | {"__v": values[spec.agg_index]})
    if not rows:
        assert reference.groups == {}
        return
    frame = _pd.DataFrame(rows)
    residual = [a for a in query.group_by if a not in spec.partition_by]
    frame = frame.sort_values(
        list(spec.partition_by) + ["__v"] + residual,
        ascending=[True] * len(spec.partition_by)
        + [not spec.descending]
        + [True] * len(residual),
        kind="stable",
    )
    if query.limit is not None:
        if spec.partition_by:
            frame = frame.groupby(list(spec.partition_by), sort=False).head(
                query.limit
            )
        else:
            frame = frame.head(query.limit)
    keys = [
        tuple(row) for row in frame[list(query.group_by)].itertuples(index=False)
    ]
    assert keys == list(reference.groups), "pandas cross-check diverged"
