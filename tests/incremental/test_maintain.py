"""Differential correctness of incremental maintenance.

The oracle is always a from-scratch run over the current database
(:meth:`MaintainedBatch.recompute` builds a fresh engine: cold tries,
recompilation). In ``"rescan"`` mode the maintained state must be
*bit-for-bit* equal to recomputation; in ``"auto"`` mode the numeric
fast path introduces only float-associativity drift, checked with the
standard tolerance helper.
"""

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.incremental import MaintainedBatch
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Factor, Op, Predicate, Query, QueryBatch
from repro.util.errors import PlanError

from tests.helpers import assert_results_equal


def retailer_queries() -> QueryBatch:
    return QueryBatch(
        [
            Query("total", aggregates=(Aggregate.sum("inventoryunits"),)),
            Query(
                "by_locn",
                group_by=("locn",),
                aggregates=(Aggregate.sum("inventoryunits"), Aggregate.count()),
            ),
            Query(
                "by_category",
                group_by=("category",),
                aggregates=(
                    Aggregate.product((Factor("prize"), Factor("inventoryunits"))),
                ),
            ),
        ]
    )


def _sample_rows(rng, relation, count):
    count = min(count, relation.num_rows)
    picks = rng.choice(relation.num_rows, size=count, replace=False)
    return [relation.row(int(i)) for i in picks]


def _random_delta(rng, db, relation_names):
    """One random insert or delete batch against the current database."""
    name = relation_names[int(rng.integers(len(relation_names)))]
    relation = db.relation(name)
    rows = _sample_rows(rng, relation, int(rng.integers(1, 6)))
    if rng.random() < 0.5:
        return {"inserts": {name: rows}}
    return {"deletes": {name: rows}}


def _assert_exact(handle):
    fresh = handle.recompute()
    for name, result in handle.results.items():
        assert result.groups == fresh.results[name].groups, name


def _assert_close(handle):
    fresh = handle.recompute()
    for name, result in handle.results.items():
        assert_results_equal(result, fresh.results[name])


# ------------------------------------------------------------- initial state
def test_initial_results_match_run(favorita_engine):
    batch = example_queries()
    handle = favorita_engine.maintain(batch)
    base = favorita_engine.run(batch)
    for query in batch:
        assert handle.results[query.name].groups == base.results[query.name].groups


# ------------------------------------------------------ differential (exact)
def test_interleaved_updates_exact_rescan(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_mode="rescan"),
    )
    handle = engine.maintain(example_queries())
    rng = np.random.default_rng(17)
    for _ in range(6):
        handle.apply(**_random_delta(rng, handle.database, ("Sales", "Items", "Oil")))
        _assert_exact(handle)


def test_interleaved_updates_exact_rescan_retailer(retailer_db):
    engine = LMFAO(retailer_db, EngineConfig(incremental_mode="rescan"))
    handle = engine.maintain(retailer_queries())
    rng = np.random.default_rng(23)
    for _ in range(6):
        handle.apply(
            **_random_delta(rng, handle.database, ("Inventory", "Item", "Weather"))
        )
        _assert_exact(handle)


# ------------------------------------------------- differential (auto/numeric)
def test_interleaved_updates_auto(favorita_db):
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    handle = engine.maintain(example_queries())
    rng = np.random.default_rng(5)
    numeric_rounds = 0
    for _ in range(8):
        outcome = handle.apply(
            **_random_delta(rng, handle.database, ("Sales", "Items", "Holidays"))
        )
        numeric_rounds += outcome.groups_numeric
        _assert_close(handle)
    assert numeric_rounds > 0  # the fast path actually engaged


def test_interleaved_updates_auto_retailer(retailer_db):
    engine = LMFAO(retailer_db)
    handle = engine.maintain(retailer_queries())
    rng = np.random.default_rng(41)
    for _ in range(6):
        handle.apply(
            **_random_delta(rng, handle.database, ("Inventory", "Location", "Item"))
        )
        _assert_close(handle)


def test_dangling_inserts(favorita_engine):
    """Inserted facts referencing absent dimension keys join to nothing."""
    handle = favorita_engine.maintain(example_queries())
    items = handle.database.relation("Items")
    missing_item = int(items.column("item").max()) + 10
    outcome = handle.apply(
        inserts={"Sales": [(1, 1, missing_item, 99.0, 0)]}
    )
    assert outcome.groups_numeric > 0
    _assert_close(handle)


# ------------------------------------------------------- parallel configurations
@pytest.mark.parametrize("workers, partitions", [(4, 1), (1, 4), (4, 4)])
def test_interleaved_updates_exact_rescan_parallel(favorita_db, workers, partitions):
    """Maintenance refreshes dirty groups through the partitioned path.

    Same update sequence as :func:`test_interleaved_updates_exact_rescan`;
    the maintained state must stay bit-for-bit equal to a from-scratch
    recompute under the *same* parallel configuration (the maintainer and
    the executor split tries at the same cut points and merge in the same
    partition order).
    """
    engine = LMFAO(
        favorita_db,
        EngineConfig(
            join_tree_edges=FAVORITA_TREE,
            incremental_mode="rescan",
            workers=workers,
            partitions=partitions,
            parallel_threshold=0,
        ),
    )
    handle = engine.maintain(example_queries())
    rng = np.random.default_rng(17)
    for _ in range(6):
        handle.apply(**_random_delta(rng, handle.database, ("Sales", "Items", "Oil")))
        _assert_exact(handle)


@pytest.mark.parametrize("workers, partitions", [(4, 1), (1, 4), (4, 4)])
def test_interleaved_updates_auto_parallel(favorita_db, workers, partitions):
    """The numeric fast path composes with partitioned execution."""
    engine = LMFAO(
        favorita_db,
        EngineConfig(
            join_tree_edges=FAVORITA_TREE,
            workers=workers,
            partitions=partitions,
            parallel_threshold=0,
        ),
    )
    handle = engine.maintain(example_queries())
    rng = np.random.default_rng(5)
    numeric_rounds = 0
    for _ in range(8):
        outcome = handle.apply(
            **_random_delta(rng, handle.database, ("Sales", "Items", "Holidays"))
        )
        numeric_rounds += outcome.groups_numeric
        _assert_close(handle)
    assert numeric_rounds > 0


def test_parallel_initial_state_matches_engine_run(favorita_db):
    """handle construction and engine.run agree under a parallel config."""
    config = EngineConfig(
        join_tree_edges=FAVORITA_TREE, workers=4, partitions=3, parallel_threshold=0
    )
    engine = LMFAO(favorita_db, config)
    batch = example_queries()
    handle = engine.maintain(batch)
    run = engine.run(batch)
    for query in batch:
        assert handle.results[query.name].groups == run.results[query.name].groups


# ------------------------------------------------------------------ edge cases
def test_empty_apply_is_noop(favorita_engine):
    handle = favorita_engine.maintain(example_queries())
    before = {name: dict(r.groups) for name, r in handle.results.items()}
    outcome = handle.apply(inserts={"Sales": []})
    assert outcome.relations_changed == ()
    assert outcome.groups_numeric == outcome.groups_rescanned == 0
    assert outcome.groups_skipped == 0
    assert outcome.refreshed_queries == ()
    for name, groups in before.items():
        assert handle.results[name].groups == groups


def test_delete_to_empty_group(favorita_engine):
    handle = favorita_engine.maintain(example_queries())
    sales = handle.database.relation("Sales")
    store = int(sales.column("store")[0])
    assert (store,) in handle.results["Q2"].groups
    outcome = handle.apply(deletes={"Sales": sales.column("store") == store})
    assert "Sales" in outcome.relations_changed
    assert (store,) not in handle.results["Q2"].groups
    _assert_exact(handle)


def test_leaf_vs_root_touch_different_slices(favorita_engine):
    handle = favorita_engine.maintain(example_queries())
    rules = handle.rules
    oil = handle.database.relation("Oil")
    sales = handle.database.relation("Sales")

    oil_out = handle.apply(inserts={"Oil": [oil.row(0)]})
    sales_out = handle.apply(inserts={"Sales": [sales.row(0)]})
    total = rules.num_groups
    for outcome, relation in ((oil_out, "Oil"), (sales_out, "Sales")):
        ran = outcome.groups_numeric + outcome.groups_rescanned
        assert ran + outcome.groups_skipped == total
        assert ran <= len(rules.dirty_groups({relation}))
        assert outcome.groups_skipped > 0  # something was off the dirty path
    # the affected-view rule: a leaf relation reaches strictly fewer views
    # than the tree allows, and never more than its path closure
    assert set(handle.rules.affected_views("Oil")) <= set(rules.view_source)
    _assert_close(handle)


def test_delta_cutoff_stops_propagation(favorita_engine):
    handle = favorita_engine.maintain(example_queries())
    rows = _sample_rows(np.random.default_rng(3), handle.database.relation("Sales"), 4)
    # net-zero change: delete and re-insert the same tuples in one round
    outcome = handle.apply(inserts={"Sales": rows}, deletes={"Sales": rows})
    assert outcome.refreshed_views == ()
    assert outcome.refreshed_queries == ()
    # only the groups at the Sales node ran; consumers were cut off
    assert outcome.groups_rescanned == len(handle.rules.groups_by_node["Sales"])
    _assert_exact(handle)


def test_cutoff_disabled_reruns_the_static_closure(favorita_db):
    config = EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_cutoff=False)
    handle = LMFAO(favorita_db, config).maintain(example_queries())
    rows = _sample_rows(np.random.default_rng(3), handle.database.relation("Sales"), 4)
    outcome = handle.apply(inserts={"Sales": rows}, deletes={"Sales": rows})
    assert (
        outcome.groups_rescanned
        == len(handle.rules.dirty_groups({"Sales"}))
        > len(handle.rules.groups_by_node["Sales"])
    )
    _assert_exact(handle)


def test_strict_numeric_mode_raises_on_deletes(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_mode="numeric"),
    )
    handle = engine.maintain(example_queries())
    sales = handle.database.relation("Sales")
    with pytest.raises(PlanError):
        handle.apply(deletes={"Sales": [sales.row(0)]})
    # the raise happens before any state is touched
    assert handle.database.relation("Sales").num_rows == sales.num_rows
    _assert_exact(handle)


def test_strict_numeric_mode_accepts_inserts(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_mode="numeric"),
    )
    handle = engine.maintain(example_queries())
    sales = handle.database.relation("Sales")
    outcome = handle.apply(inserts={"Sales": [sales.row(0)]})
    # every changed-node group took the O(|Δ|) path; only downstream
    # propagation (consumers of the refreshed views) rescanned
    assert outcome.groups_numeric == len(handle.rules.groups_by_node["Sales"])
    _assert_close(handle)


def test_failed_apply_leaves_state_untouched(favorita_engine):
    """A bad delta in a multi-relation apply must not half-commit."""
    handle = favorita_engine.maintain(example_queries())
    items = handle.database.relation("Items")
    before_rows = handle.database.relation("Items").num_rows
    with pytest.raises(Exception):
        handle.apply(
            inserts={"Items": [items.row(0)]},
            deletes={"Sales": [(999, 999, 999, 1.0, 0)]},  # not present
        )
    assert handle.database.relation("Items").num_rows == before_rows
    _assert_exact(handle)


def test_unknown_incremental_mode_rejected(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_mode="bogus"),
    )
    # the message names the config key and the offending value, like every
    # other EngineConfig validation error
    with pytest.raises(
        PlanError, match=r"EngineConfig\.incremental_mode .*'bogus'"
    ):
        engine.maintain(example_queries())


def test_merge_delta_outputs_is_copy_on_write():
    """The numeric merge builds the successor version's artifact without
    touching the previous one: neither the target dict, nor its stored
    value lists, nor its columnar ArrayViewData mirror may change —
    readers pinned to the old version keep a coherent artifact while the
    new version is being built (snapshot isolation). The merged result is
    a plain dict (the old columnar mirror does not describe it)."""
    from repro.core.runtime import ArrayViewData

    target = ArrayViewData.from_arrays(
        [np.array([1, 2])], np.array([[1.0], [2.0]])
    )
    old_list = target[2]
    delta = ArrayViewData.from_arrays(
        [np.array([2, 3])], np.array([[5.0], [7.0]])
    )
    merged, changed = MaintainedBatch._merge_delta_outputs(target, delta)
    assert changed
    assert merged == {1: [1.0], 2: [7.0], 3: [7.0]}
    assert not isinstance(merged, ArrayViewData)
    # the previous version is untouched — dict, lists and arrays alike
    assert target == {1: [1.0], 2: [2.0]} and target.has_columns
    assert target[2] is old_list and old_list == [2.0]
    target.check_consistent()
    # the delta *source* is never mutated either: its arrays stay valid
    assert delta == {2: [5.0], 3: [7.0]} and delta.has_columns
    delta.check_consistent()
    # shared untouched entries are carried by reference (structural sharing)
    assert merged[1] is target[1]


def test_numeric_merge_never_leaks_desynced_arrays(favorita_db, monkeypatch):
    """End-to-end incremental guard under LMFAO_DEBUG with the NumPy
    backend: carried plans included, every maintained store must keep its
    columnar state coherent (or dropped) after init and every apply."""
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    batch = QueryBatch(
        [
            Query("units_total", aggregates=(Aggregate.sum("units"),)),
            # cross-node group-by: carried block in the root plan
            Query("store_class", group_by=("store", "class"), aggregates=(
                Aggregate.sum("units"), Aggregate.count(),
            )),
        ]
    )
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, backend="numpy"),
    )
    handle = engine.maintain(batch)
    sales = favorita_db.relation("Sales")
    handle.apply(inserts={"Sales": [sales.row(0), sales.row(1)]})
    handle.apply(deletes={"Sales": [sales.row(0)]})
    recomputed = handle.recompute()
    for name in recomputed.results:
        assert_results_equal(handle[name], recomputed.results[name])


def test_with_pushed_shared_predicates(favorita_db):
    """Physical filters on base relations compose with maintenance."""
    shared = (Predicate("units", Op.GT, 2.0),)
    batch = QueryBatch(
        [
            Query("filtered_total", aggregates=(Aggregate.sum("units"),), where=shared),
            Query(
                "filtered_by_store",
                group_by=("store",),
                aggregates=(Aggregate.count(),),
                where=shared,
            ),
        ]
    )
    config = EngineConfig(
        join_tree_edges=FAVORITA_TREE, push_shared_predicates=True
    )
    handle = LMFAO(favorita_db, config).maintain(batch)
    rng = np.random.default_rng(11)
    for _ in range(3):
        handle.apply(**_random_delta(rng, handle.database, ("Sales",)))
        _assert_close(handle)


# ------------------------------------------------------------------ delta rules
def test_affected_views_cover_changed_view_names(favorita_db):
    # rescan mode keeps the state bit-exact, so a view outside the static
    # delta rule can never spuriously report as refreshed
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, incremental_mode="rescan"),
    )
    handle = engine.maintain(example_queries())
    rng = np.random.default_rng(29)
    for relation in ("Sales", "Items", "Oil", "Holidays"):
        allowed = set(handle.rules.affected_views(relation))
        delta = {
            "inserts": {
                relation: _sample_rows(rng, handle.database.relation(relation), 3)
            }
        }
        outcome = handle.apply(**delta)
        assert set(outcome.refreshed_views) <= allowed, relation


def test_dirty_groups_respect_execution_order(favorita_engine):
    handle = favorita_engine.maintain(example_queries())
    order = handle.rules.execution_order
    dirty = handle.rules.dirty_groups({"Items"})
    positions = [order.index(g) for g in dirty]
    assert positions == sorted(positions)
