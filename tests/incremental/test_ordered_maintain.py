"""Ordered top-k under maintenance: maintained handle vs recompute oracle.

Deletes are the hard case for truncated results: a row evicted from the
top-k by an earlier round must *reappear* when the rows above it are
deleted — information a result-only maintainer would have forgotten.
The maintainer keeps the full raw store per ordered query precisely for
this, and :func:`repro.incremental.rules.refresh_ordered` re-ranks only
the dirtied partitions. Every test here is differential: after each
apply the handle's finished results must equal a from-scratch engine
over the current database **as a sequence** (rank and tie order
included), under insert-only, delete-only and mixed delta rounds, and
through the server's group-committed write path where several queued
deltas coalesce into one refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.query import Aggregate, Factor, OrderSpec, Query, QueryBatch
from repro.query.functions import identity
from repro.serve import AggregateServer

from tests.oracle import assert_ordered_equal, ordered_oracle

_C = Attribute.categorical
_F = Attribute.continuous


def _db(n=600, seed=21):
    rng = np.random.default_rng(seed)
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("g"), _C("h"), _F("x"))),
        {
            "k": rng.integers(0, 20, n),
            "g": rng.integers(0, 5, n),
            "h": rng.integers(0, 4, n),
            "x": rng.integers(-3, 7, n).astype(float),
        },
    )
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"), _F("z"))),
        {
            "k": np.arange(20),
            "w": rng.integers(0, 4, 20),
            "z": rng.integers(1, 5, 20).astype(float),
        },
    )
    return Database([fact, dim])


def _batch():
    return QueryBatch(
        [
            Query(
                "topk_gh",
                group_by=("g", "h"),
                aggregates=(
                    Aggregate((Factor("x", identity),)),
                    Aggregate.count(),
                ),
                order_by=OrderSpec(
                    agg_index=0, descending=True, partition_by=("g",)
                ),
                limit=2,
            ),
            Query(
                "ordered_h",
                group_by=("h",),
                aggregates=(Aggregate((Factor("x", identity),)),),
                order_by=OrderSpec(agg_index=0, descending=False),
            ),
            Query(
                "plain_g",
                group_by=("g",),
                aggregates=(Aggregate.count(),),
            ),
        ]
    )


def _insert(rng, count=25):
    return {
        "Fact": {
            "k": rng.integers(0, 20, count),
            "g": rng.integers(0, 5, count),
            "h": rng.integers(0, 4, count),
            "x": rng.integers(-3, 7, count).astype(float),
        }
    }


def _assert_handle_matches_recompute(handle):
    fresh = handle.recompute()
    join = handle.db.materialize_join()
    for query in handle.compiled.batch:
        got = handle[query.name]
        want = fresh.results[query.name]
        if query.is_ordered:
            assert list(got.groups.items()) == list(want.groups.items()), (
                f"{query.name}: maintained order diverged from recompute"
            )
            assert_ordered_equal(got, ordered_oracle(join, query))
        else:
            assert got.groups == want.groups


@pytest.mark.parametrize("mode", ["auto", "rescan"])
def test_ordered_maintained_equals_recompute_over_mixed_rounds(mode):
    engine = LMFAO(_db(), EngineConfig(incremental_mode=mode))
    handle = engine.maintain(_batch())
    rng = np.random.default_rng(99)
    for step in range(5):
        kind = ("insert", "delete", "mixed", "insert", "mixed")[step]
        if kind == "insert":
            outcome = handle.apply(inserts=_insert(rng))
        else:
            fact = handle.db.relation("Fact")
            mask = np.zeros(len(fact), dtype=bool)
            victims = rng.choice(len(fact), size=min(15, len(fact)), replace=False)
            mask[victims] = True
            if kind == "delete":
                outcome = handle.apply(deletes={"Fact": mask})
            else:
                outcome = handle.apply(
                    inserts=_insert(rng), deletes={"Fact": mask}
                )
        assert outcome.version == step + 1
        _assert_handle_matches_recompute(handle)


def test_delete_resurrects_evicted_rows():
    """A key pushed out of the top-k must come back when its betters go.

    Partition g=0 has three h-groups with sums 30 > 20 > 10; at k=2 the
    sum-10 group is evicted. Deleting the sum-30 rows must bring it back
    — bit-placed, not merely present.
    """
    rows = []
    for h, (copies, each) in enumerate([(3, 10.0), (2, 10.0), (1, 10.0)]):
        rows += [(h, 0, h, each)] * copies  # k joins Dim below
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("g"), _C("h"), _F("x"))),
        {
            "k": np.array([r[0] for r in rows]),
            "g": np.array([r[1] for r in rows]),
            "h": np.array([r[2] for r in rows]),
            "x": np.array([r[3] for r in rows]),
        },
    )
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"))),
        {"k": np.arange(3), "w": np.zeros(3, dtype=int)},
    )
    engine = LMFAO(Database([fact, dim]), EngineConfig(incremental_mode="auto"))
    batch = QueryBatch(
        [
            Query(
                "top2",
                group_by=("g", "h"),
                aggregates=(Aggregate((Factor("x", identity),)),),
                order_by=OrderSpec(
                    agg_index=0, descending=True, partition_by=("g",)
                ),
                limit=2,
            )
        ]
    )
    handle = engine.maintain(batch)
    assert [k for k, _ in handle["top2"].ranked()] == [(0, 0), (0, 1)]
    mask = fact.column("h") == 0  # delete every sum-30 row
    handle.apply(deletes={"Fact": mask})
    assert [k for k, _ in handle["top2"].ranked()] == [(0, 1), (0, 2)]
    _assert_handle_matches_recompute(handle)


def test_ordered_through_group_committed_write_queue():
    """Server-routed handle: coalesced group commits refresh ordered
    results identically to applying each delta sequentially."""
    db = _db(n=300, seed=4)
    batch = _batch()
    with AggregateServer(db, EngineConfig()) as server:
        handle = server.maintain(batch)
        rng = np.random.default_rng(7)
        deltas = [_insert(rng, 10) for _ in range(4)]
        for delta in deltas:
            handle.apply(inserts=delta)
        fact = server.engine.snapshot().db.relation("Fact")
        mask = np.zeros(len(fact), dtype=bool)
        mask[:20] = True
        handle.apply(deletes={"Fact": mask})
        _assert_handle_matches_recompute(handle)
        # sequential oracle: same deltas, one at a time, fresh engine
        oracle_engine = LMFAO(db, EngineConfig())
        oracle_handle = oracle_engine.maintain(batch)
        for delta in deltas:
            oracle_handle.apply(inserts=delta)
        oracle_handle.apply(deletes={"Fact": mask})
        for query in batch:
            if query.is_ordered:
                assert list(handle[query.name].groups.items()) == list(
                    oracle_handle[query.name].groups.items()
                )
