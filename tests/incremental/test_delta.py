"""Delta relations: coercion, validation and base-relation application."""

import numpy as np
import pytest

from repro.data import Attribute, Relation, RelationSchema
from repro.data.catalog import Database
from repro.incremental import (
    RelationDelta,
    coalesce_deltas,
    coalesce_relation_deltas,
    normalize_deltas,
)
from repro.util.errors import SchemaError

_C = Attribute.categorical
_F = Attribute.continuous


@pytest.fixture()
def tiny_db():
    r = Relation(
        RelationSchema("R", (_C("a"), _F("x"))),
        {"a": [1, 1, 2, 3], "x": [10.0, 10.0, 20.0, 30.0]},
    )
    s = Relation(RelationSchema("S", (_C("a"), _C("b"))), {"a": [1, 2, 3], "b": [7, 8, 9]})
    return Database([r, s], name="tiny")


# ------------------------------------------------------------- normalisation
def test_normalize_from_rows(tiny_db):
    deltas = normalize_deltas(tiny_db, {"R": [(4, 40.0)]}, None)
    assert set(deltas) == {"R"}
    assert deltas["R"].insert_only
    assert deltas["R"].num_inserts == 1


def test_normalize_from_columns_and_relation(tiny_db):
    deltas = normalize_deltas(
        tiny_db,
        {"R": {"a": [5], "x": [50.0]}},
        {"S": Relation(tiny_db.relation("S").schema, {"a": [1], "b": [7]})},
    )
    assert deltas["R"].insert_only
    assert not deltas["S"].insert_only


def test_normalize_delete_mask(tiny_db):
    mask = np.array([True, False, False, False])
    deltas = normalize_deltas(tiny_db, None, {"R": mask})
    assert deltas["R"].delete_mask is mask
    assert not deltas["R"].insert_only


def test_empty_deltas_are_dropped(tiny_db):
    assert normalize_deltas(tiny_db, {"R": []}, None) == {}
    assert normalize_deltas(tiny_db, None, None) == {}
    mask = np.zeros(4, dtype=bool)
    assert normalize_deltas(tiny_db, None, {"R": mask}) == {}


def test_unknown_relation_rejected(tiny_db):
    with pytest.raises(SchemaError):
        normalize_deltas(tiny_db, {"nope": [(1, 2.0)]}, None)


def test_wrong_attributes_rejected(tiny_db):
    wrong = Relation(RelationSchema("R", (_C("a"), _F("y"))), {"a": [1], "y": [1.0]})
    with pytest.raises(SchemaError):
        normalize_deltas(tiny_db, {"R": wrong}, None)


# -------------------------------------------------------------- application
def test_apply_deletes_before_inserts(tiny_db):
    relation = tiny_db.relation("R")
    delta = RelationDelta(
        relation="R",
        inserts=Relation.from_rows(relation.schema, [(1, 10.0)]),
        deletes=Relation.from_rows(relation.schema, [(1, 10.0), (1, 10.0)]),
    )
    updated = delta.apply_to(relation)
    # two occurrences removed, one re-inserted
    assert updated.num_rows == 3
    assert sorted(updated.iter_rows()) == [(1, 10.0), (2, 20.0), (3, 30.0)]


def test_apply_mask(tiny_db):
    relation = tiny_db.relation("R")
    delta = RelationDelta(relation="R", delete_mask=np.array([False, True, True, False]))
    updated = delta.apply_to(relation)
    assert sorted(updated.iter_rows()) == [(1, 10.0), (3, 30.0)]


def test_mask_length_mismatch(tiny_db):
    delta = RelationDelta(relation="R", delete_mask=np.array([True, False]))
    with pytest.raises(SchemaError):
        delta.apply_to(tiny_db.relation("R"))


def test_delete_missing_row_raises(tiny_db):
    relation = tiny_db.relation("R")
    delta = RelationDelta(
        relation="R", deletes=Relation.from_rows(relation.schema, [(9, 90.0)])
    )
    with pytest.raises(SchemaError):
        delta.apply_to(relation)


# -------------------------------------------------- relation append/tombstone
def test_concat_appends_bag(tiny_db):
    relation = tiny_db.relation("R")
    more = Relation.from_rows(relation.schema, [(1, 10.0)])
    combined = relation.concat(more)
    assert combined.num_rows == 5
    assert list(combined.iter_rows()).count((1, 10.0)) == 3


def test_concat_schema_mismatch(tiny_db):
    with pytest.raises(SchemaError):
        tiny_db.relation("R").concat(tiny_db.relation("S"))


def test_remove_rows_is_multiset(tiny_db):
    relation = tiny_db.relation("R")
    removed = relation.remove_rows(Relation.from_rows(relation.schema, [(1, 10.0)]))
    assert removed.num_rows == 3
    assert list(removed.iter_rows()).count((1, 10.0)) == 1


# ------------------------------------------------------------ group coalescing
def _delta(db, name, inserts=None, deletes=None, mask=None):
    schema = db.relation(name).schema
    return RelationDelta(
        relation=name,
        inserts=Relation.from_rows(schema, inserts) if inserts else None,
        deletes=Relation.from_rows(schema, deletes) if deletes else None,
        delete_mask=mask,
    )


def _rows(relation_or_none):
    if relation_or_none is None:
        return []
    return list(relation_or_none.iter_rows())


def test_coalesce_concatenates_inserts_in_order(tiny_db):
    first = _delta(tiny_db, "R", inserts=[(4, 40.0)])
    second = _delta(tiny_db, "R", inserts=[(5, 50.0), (6, 60.0)])
    merged = coalesce_relation_deltas(first, second)
    assert merged.insert_only
    assert _rows(merged.inserts) == [(4, 40.0), (5, 50.0), (6, 60.0)]


def test_coalesce_cancels_delete_against_pending_insert(tiny_db):
    # insert (4, 40.0) then delete it again: the pair never touches the base
    first = _delta(tiny_db, "R", inserts=[(4, 40.0), (5, 50.0)])
    second = _delta(tiny_db, "R", deletes=[(4, 40.0)])
    merged = coalesce_relation_deltas(first, second)
    assert _rows(merged.inserts) == [(5, 50.0)]
    assert merged.deletes is None
    assert merged.insert_only


def test_coalesce_cancellation_is_bag_wise(tiny_db):
    # two pending copies, three deletes: one delete survives for the base
    first = _delta(tiny_db, "R", inserts=[(1, 10.0), (1, 10.0)])
    second = _delta(tiny_db, "R", deletes=[(1, 10.0)] * 3)
    merged = coalesce_relation_deltas(first, second)
    assert merged.inserts is None
    assert _rows(merged.deletes) == [(1, 10.0)]


def test_coalesced_apply_matches_sequential_apply(tiny_db):
    relation = tiny_db.relation("R")
    first = _delta(tiny_db, "R", inserts=[(1, 10.0), (4, 40.0)], deletes=[(2, 20.0)])
    second = _delta(tiny_db, "R", inserts=[(5, 50.0)], deletes=[(4, 40.0), (1, 10.0)])
    sequential = second.apply_to(first.apply_to(relation))
    merged = coalesce_relation_deltas(first, second)
    assert sorted(merged.apply_to(relation).iter_rows()) == sorted(
        sequential.iter_rows()
    )


def test_coalesced_apply_raises_on_same_invalid_deltas(tiny_db):
    # second deletes a row that neither the base nor first's inserts carry:
    # sequential application raises, and so must the merged delta
    relation = tiny_db.relation("R")
    first = _delta(tiny_db, "R", inserts=[(4, 40.0)])
    second = _delta(tiny_db, "R", deletes=[(9, 90.0)])
    with pytest.raises(SchemaError):
        second.apply_to(first.apply_to(relation))
    merged = coalesce_relation_deltas(first, second)
    with pytest.raises(SchemaError):
        merged.apply_to(relation)


def test_delete_mask_is_a_group_boundary(tiny_db):
    first = _delta(tiny_db, "R", inserts=[(4, 40.0)])
    masked = _delta(tiny_db, "R", mask=np.array([True, False, False, False]))
    assert coalesce_relation_deltas(first, masked) is None
    # ...but a mask on *first* composes fine (it indexes the original rows)
    merged = coalesce_relation_deltas(masked, first)
    assert merged is not None
    assert merged.delete_mask is masked.delete_mask
    updated = merged.apply_to(tiny_db.relation("R"))
    assert sorted(updated.iter_rows()) == sorted(
        first.apply_to(masked.apply_to(tiny_db.relation("R"))).iter_rows()
    )


def test_coalesce_delta_maps_pass_through_and_cancel(tiny_db):
    first = {
        "R": _delta(tiny_db, "R", inserts=[(4, 40.0)]),
        "S": _delta(tiny_db, "S", inserts=[(4, 11)]),
    }
    second = {"R": _delta(tiny_db, "R", deletes=[(4, 40.0)])}
    merged = coalesce_deltas(first, second)
    # R cancelled to nothing and is dropped; S passes through by reference
    assert set(merged) == {"S"}
    assert merged["S"] is first["S"]


def test_coalesce_delta_maps_mask_boundary_returns_none(tiny_db):
    first = {"R": _delta(tiny_db, "R", inserts=[(4, 40.0)])}
    second = {"R": _delta(tiny_db, "R", mask=np.array([True, False, False, False]))}
    assert coalesce_deltas(first, second) is None
