"""Delta relations: coercion, validation and base-relation application."""

import numpy as np
import pytest

from repro.data import Attribute, Relation, RelationSchema
from repro.data.catalog import Database
from repro.incremental import RelationDelta, normalize_deltas
from repro.util.errors import SchemaError

_C = Attribute.categorical
_F = Attribute.continuous


@pytest.fixture()
def tiny_db():
    r = Relation(
        RelationSchema("R", (_C("a"), _F("x"))),
        {"a": [1, 1, 2, 3], "x": [10.0, 10.0, 20.0, 30.0]},
    )
    s = Relation(RelationSchema("S", (_C("a"), _C("b"))), {"a": [1, 2, 3], "b": [7, 8, 9]})
    return Database([r, s], name="tiny")


# ------------------------------------------------------------- normalisation
def test_normalize_from_rows(tiny_db):
    deltas = normalize_deltas(tiny_db, {"R": [(4, 40.0)]}, None)
    assert set(deltas) == {"R"}
    assert deltas["R"].insert_only
    assert deltas["R"].num_inserts == 1


def test_normalize_from_columns_and_relation(tiny_db):
    deltas = normalize_deltas(
        tiny_db,
        {"R": {"a": [5], "x": [50.0]}},
        {"S": Relation(tiny_db.relation("S").schema, {"a": [1], "b": [7]})},
    )
    assert deltas["R"].insert_only
    assert not deltas["S"].insert_only


def test_normalize_delete_mask(tiny_db):
    mask = np.array([True, False, False, False])
    deltas = normalize_deltas(tiny_db, None, {"R": mask})
    assert deltas["R"].delete_mask is mask
    assert not deltas["R"].insert_only


def test_empty_deltas_are_dropped(tiny_db):
    assert normalize_deltas(tiny_db, {"R": []}, None) == {}
    assert normalize_deltas(tiny_db, None, None) == {}
    mask = np.zeros(4, dtype=bool)
    assert normalize_deltas(tiny_db, None, {"R": mask}) == {}


def test_unknown_relation_rejected(tiny_db):
    with pytest.raises(SchemaError):
        normalize_deltas(tiny_db, {"nope": [(1, 2.0)]}, None)


def test_wrong_attributes_rejected(tiny_db):
    wrong = Relation(RelationSchema("R", (_C("a"), _F("y"))), {"a": [1], "y": [1.0]})
    with pytest.raises(SchemaError):
        normalize_deltas(tiny_db, {"R": wrong}, None)


# -------------------------------------------------------------- application
def test_apply_deletes_before_inserts(tiny_db):
    relation = tiny_db.relation("R")
    delta = RelationDelta(
        relation="R",
        inserts=Relation.from_rows(relation.schema, [(1, 10.0)]),
        deletes=Relation.from_rows(relation.schema, [(1, 10.0), (1, 10.0)]),
    )
    updated = delta.apply_to(relation)
    # two occurrences removed, one re-inserted
    assert updated.num_rows == 3
    assert sorted(updated.iter_rows()) == [(1, 10.0), (2, 20.0), (3, 30.0)]


def test_apply_mask(tiny_db):
    relation = tiny_db.relation("R")
    delta = RelationDelta(relation="R", delete_mask=np.array([False, True, True, False]))
    updated = delta.apply_to(relation)
    assert sorted(updated.iter_rows()) == [(1, 10.0), (3, 30.0)]


def test_mask_length_mismatch(tiny_db):
    delta = RelationDelta(relation="R", delete_mask=np.array([True, False]))
    with pytest.raises(SchemaError):
        delta.apply_to(tiny_db.relation("R"))


def test_delete_missing_row_raises(tiny_db):
    relation = tiny_db.relation("R")
    delta = RelationDelta(
        relation="R", deletes=Relation.from_rows(relation.schema, [(9, 90.0)])
    )
    with pytest.raises(SchemaError):
        delta.apply_to(relation)


# -------------------------------------------------- relation append/tombstone
def test_concat_appends_bag(tiny_db):
    relation = tiny_db.relation("R")
    more = Relation.from_rows(relation.schema, [(1, 10.0)])
    combined = relation.concat(more)
    assert combined.num_rows == 5
    assert list(combined.iter_rows()).count((1, 10.0)) == 3


def test_concat_schema_mismatch(tiny_db):
    with pytest.raises(SchemaError):
        tiny_db.relation("R").concat(tiny_db.relation("S"))


def test_remove_rows_is_multiset(tiny_db):
    relation = tiny_db.relation("R")
    removed = relation.remove_rows(Relation.from_rows(relation.schema, [(1, 10.0)]))
    assert removed.num_rows == 3
    assert list(removed.iter_rows()).count((1, 10.0)) == 1
