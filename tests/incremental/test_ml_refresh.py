"""ML refresh paths: models retrained from maintained aggregates."""

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.ml import CartConfig, FeatureSpec, IncrementalLinearRegression, RegressionTree
from repro.ml.linreg import train_linear_regression
from repro.paper import FAVORITA_TREE


@pytest.fixture(scope="module")
def small_spec():
    return FeatureSpec(
        label="units",
        continuous=("txns", "price"),
        categorical=("promo", "stype"),
    )


@pytest.fixture(scope="module")
def favorita_db_module():
    from repro.data import favorita

    return favorita(scale=0.05, seed=7)


def _config():
    return EngineConfig(join_tree_edges=FAVORITA_TREE)


def test_incremental_linreg_matches_retraining(favorita_db_module, small_spec):
    engine = LMFAO(favorita_db_module, _config())
    ilr = IncrementalLinearRegression(
        engine, small_spec, ridge=1e-2, max_iterations=4000, tolerance=1e-12
    )
    baseline = train_linear_regression(
        engine, small_spec, ridge=1e-2, max_iterations=4000, tolerance=1e-12
    )
    np.testing.assert_allclose(ilr.model.theta, baseline.theta, rtol=1e-8, atol=1e-10)

    sales = ilr.handle.database.relation("Sales")
    rng = np.random.default_rng(2)
    picks = rng.choice(sales.num_rows, size=20, replace=False)
    model = ilr.apply(inserts={"Sales": [sales.row(int(i)) for i in picks]})
    assert ilr.last_apply is not None
    assert ilr.last_apply.relations_changed == ("Sales",)

    fresh_engine = LMFAO(ilr.handle.database, _config())
    fresh = train_linear_regression(
        fresh_engine, small_spec, ridge=1e-2, max_iterations=4000, tolerance=1e-12
    )
    np.testing.assert_allclose(model.theta, fresh.theta, rtol=1e-6, atol=1e-8)


def test_incremental_linreg_tracks_new_categories(favorita_db_module):
    spec = FeatureSpec(label="units", continuous=("price",), categorical=("stype",))
    engine = LMFAO(favorita_db_module, _config())
    ilr = IncrementalLinearRegression(engine, spec, max_iterations=200)
    dim_before = ilr.model.index.dimension
    stores = ilr.handle.database.relation("StoRes")
    new_store = int(stores.column("store").max()) + 1
    new_stype = int(stores.column("stype").max()) + 1
    ilr.apply(
        inserts={
            "StoRes": [(new_store, 1, 1, new_stype, 1)],
            "Sales": [(1, new_store, 1, 3.0, 0)],
            "Transactions": [(1, new_store, 100.0)],
        }
    )
    assert ilr.model.index.dimension == dim_before + 1
    assert new_stype in ilr.model.index.categories["stype"]


def test_cart_refresh_equals_refit(favorita_db_module, small_spec):
    config = CartConfig(max_depth=2, min_samples=5.0)
    engine = LMFAO(favorita_db_module, _config())
    tree = RegressionTree(spec=small_spec, config=config).fit(engine)

    sales = favorita_db_module.relation("Sales")
    rng = np.random.default_rng(9)
    picks = rng.choice(sales.num_rows, size=30, replace=False)
    updated = favorita_db_module.with_relation(
        sales.concat(sales.take(np.asarray(picks)))
    )
    updated_engine = LMFAO(updated, _config())
    tree.refresh(updated_engine)

    fresh = RegressionTree(spec=small_spec, config=config).fit(
        LMFAO(updated, _config())
    )
    assert tree.describe() == fresh.describe()
    assert tree.num_nodes == fresh.num_nodes
