"""User-defined function wrappers and the registry."""

import numpy as np
import pytest

from repro.query import Function, FunctionRegistry, identity, indicator, one, square
from repro.util.errors import QueryError


def test_builtins():
    x = np.array([1.0, -2.0, 3.0])
    assert list(identity(x)) == [1.0, -2.0, 3.0]
    assert list(one(x)) == [1.0, 1.0, 1.0]
    assert list(square(x)) == [1.0, 4.0, 9.0]


def test_scalar_application():
    assert square.scalar(3) == 9.0
    assert identity.scalar(7) == 7.0


def test_function_equality_is_by_name():
    f1 = Function("f", lambda x: x)
    f2 = Function("f", lambda x: x * 2)
    assert f1 == f2  # names identify functions structurally


def test_function_requires_name():
    with pytest.raises(QueryError):
        Function("", lambda x: x)


@pytest.mark.parametrize(
    "op,value,inputs,expected",
    [
        ("<=", 2.0, [1, 2, 3], [1.0, 1.0, 0.0]),
        (">=", 2.0, [1, 2, 3], [0.0, 1.0, 1.0]),
        ("<", 2.0, [1, 2, 3], [1.0, 0.0, 0.0]),
        (">", 2.0, [1, 2, 3], [0.0, 0.0, 1.0]),
        ("==", 2.0, [1, 2, 3], [0.0, 1.0, 0.0]),
        ("!=", 2.0, [1, 2, 3], [1.0, 0.0, 1.0]),
    ],
)
def test_indicator(op, value, inputs, expected):
    fn = indicator(op, value)
    assert list(fn(np.array(inputs))) == expected


def test_indicator_names_are_canonical():
    assert indicator("<=", 2.0).name == indicator("<=", 2).name
    assert indicator("<=", 2.5).name != indicator("<=", 2.0).name
    with pytest.raises(QueryError):
        indicator("~", 1.0)


def test_registry_registration():
    reg = FunctionRegistry()
    assert "id" in reg and "sq" in reg
    fn = Function("custom", lambda x: x + 1)
    reg.register(fn)
    assert reg.get("custom") is fn
    reg.register(fn)  # same object: fine
    with pytest.raises(QueryError):
        reg.register(Function("custom", lambda x: x))
    with pytest.raises(QueryError):
        reg.get("missing")
