"""Property tests for the query layer's canonical forms."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import Aggregate, Factor, parse_query
from repro.query.functions import identity, square

_ATTRS = st.sampled_from(["alpha", "beta", "gamma", "delta"])
_FUNCS = st.sampled_from([identity, square])


@st.composite
def factors(draw):
    return Factor(draw(_ATTRS), draw(_FUNCS))


@given(fs=st.lists(factors(), max_size=5))
@settings(max_examples=50, deadline=None)
def test_aggregate_order_insensitive(fs):
    """Any permutation of the factor multiset is the same aggregate."""
    import random

    shuffled = list(fs)
    random.Random(0).shuffle(shuffled)
    assert Aggregate(tuple(fs)) == Aggregate(tuple(shuffled))
    assert Aggregate(tuple(fs)).signature == Aggregate(tuple(shuffled)).signature


@given(fs=st.lists(factors(), min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_aggregate_repr_parses_back(fs):
    """repr of an aggregate is valid query syntax for the built-ins."""
    aggregate = Aggregate(tuple(fs))
    text = f"SELECT {repr(aggregate)} FROM D"
    parsed = parse_query(text)
    assert parsed.aggregates == (aggregate,)


@given(
    gb=st.lists(_ATTRS, unique=True, max_size=3),
    fs=st.lists(factors(), min_size=1, max_size=3),
)
@settings(max_examples=50, deadline=None)
def test_query_round_trip_through_parser(gb, fs):
    from repro.query import Query

    query = Query("q", group_by=tuple(gb), aggregates=(Aggregate(tuple(fs)),))
    select = ", ".join(list(gb) + [repr(a) for a in query.aggregates])
    text = f"SELECT {select} FROM D"
    if gb:
        text += " GROUP BY " + ", ".join(gb)
    parsed = parse_query(text, "q")
    assert parsed.group_by == query.group_by
    assert parsed.aggregates == query.aggregates
