"""The SQL-ish parser: every shape the paper writes, plus error cases."""

import pytest

from repro.query import Aggregate, Factor, FunctionRegistry, Function, parse_query
from repro.query.functions import square
from repro.util.errors import ParseError, QueryError


def test_scalar_sum():
    q = parse_query("SELECT SUM(units) FROM D", "Q1")
    assert q.name == "Q1"
    assert q.group_by == ()
    assert q.aggregates == (Aggregate.sum("units"),)


def test_count():
    q = parse_query("SELECT SUM(1) FROM D")
    assert q.aggregates == (Aggregate.count(),)


def test_group_by_with_udf():
    reg = FunctionRegistry()
    g = reg.register(Function("g", lambda x: x))
    h = reg.register(Function("h", lambda x: x))
    q = parse_query(
        "SELECT store, SUM(g(item)*h(date)) FROM D GROUP BY store", "Q2", reg
    )
    assert q.group_by == ("store",)
    assert q.aggregates == (Aggregate((Factor("item", g), Factor("date", h))),)


def test_multi_aggregate_and_where():
    q = parse_query(
        "SELECT SUM(1), SUM(y), SUM(sq(y)) FROM D WHERE x <= 3 AND z != 1"
    )
    assert len(q.aggregates) == 3
    assert q.aggregates[2] == Aggregate.sum("y", square)
    assert len(q.where) == 2
    assert q.where[0].attribute == "x"


def test_case_insensitive_keywords():
    q = parse_query("select store, sum(units) from D group by store")
    assert q.group_by == ("store",)


def test_multi_group_by():
    q = parse_query("SELECT a, b, SUM(1) FROM D GROUP BY a, b")
    assert q.group_by == ("a", "b")


def test_where_all_operators():
    q = parse_query(
        "SELECT SUM(1) FROM D WHERE a <= 1 AND b >= 2 AND c < 3 AND d > 4 "
        "AND e == 5 AND f != 6 AND g = 7 AND h <> 8"
    )
    assert [p.op.value for p in q.where] == [
        "<=", ">=", "<", ">", "==", "!=", "==", "!=",
    ]


@pytest.mark.parametrize(
    "text",
    [
        "SELECT store FROM D GROUP BY store",  # no aggregate
        "SELECT a, SUM(1) FROM D",  # select attr without group by
        "SELECT SUM(1) FROM D GROUP BY a",  # group by without select attr
        "SELECT SUM(2*x) FROM D",  # literal other than 1
        "SELECT SUM(x) FROM",  # truncated
        "SELECT SUM(x FROM D",  # unbalanced
        "SELECT SUM(1) FROM D WHERE x <= y",  # non-constant comparison
        "FROM D",  # no select
        "SELECT SUM(g(item)) FROM D",  # unknown function
        "SELECT SUM(1) FROM D ; DROP",  # trailing garbage
    ],
)
def test_parse_errors(text):
    with pytest.raises(QueryError):  # ParseError or unknown-function errors
        parse_query(text)


def test_sum_of_square_via_repeated_factor():
    q = parse_query("SELECT SUM(y*y) FROM D")
    assert q.aggregates[0] == Aggregate((Factor("y"), Factor("y")))
