"""Query and QueryResult semantics, plus batches."""

import pytest

from repro.query import Aggregate, Op, Predicate, Query, QueryBatch
from repro.query.query import QueryResult
from repro.util.errors import QueryError


def test_query_attributes_cover_everything():
    q = Query(
        "q",
        group_by=("a",),
        aggregates=(Aggregate.sum("b"),),
        where=(Predicate("c", Op.LE, 5),),
    )
    assert q.attributes == ("a", "b", "c")


def test_query_validation(favorita_db):
    Query("q", group_by=("store",)).validate_against(favorita_db.schema)
    with pytest.raises(QueryError):
        Query("q", group_by=("nope",)).validate_against(favorita_db.schema)
    with pytest.raises(QueryError):
        Query("", group_by=("store",))
    with pytest.raises(QueryError):
        Query("q", group_by=("a", "a"))
    with pytest.raises(QueryError):
        Query("q", aggregates=())


def test_query_result_scalar():
    q = Query("q")
    r = QueryResult(q, {(): (42.0,)})
    assert r.scalar() == 42.0
    assert QueryResult(q, {}).scalar() == 0.0
    grouped = Query("g", group_by=("a",))
    with pytest.raises(QueryError):
        QueryResult(grouped, {}).scalar()


def test_query_result_indexing():
    q = Query("q", group_by=("a",))
    r = QueryResult(q, {(3,): (1.0, 2.0)})
    assert r[3] == (1.0, 2.0)
    assert r[(3,)] == (1.0, 2.0)
    assert len(r) == 1


def test_batch_rejects_duplicates_and_empty():
    q = Query("q")
    with pytest.raises(QueryError):
        QueryBatch([q, Query("q", group_by=("a",))])
    with pytest.raises(QueryError):
        QueryBatch([])


def test_batch_aggregate_count():
    batch = QueryBatch(
        [
            Query("a", aggregates=(Aggregate.count(), Aggregate.sum("x"))),
            Query("b", aggregates=(Aggregate.count(),)),
        ]
    )
    assert batch.num_aggregates == 3
    assert len(batch) == 2
    assert "a" in batch and "c" not in batch
    with pytest.raises(QueryError):
        batch.query("c")


def test_shared_predicates():
    shared = Predicate("x", Op.LE, 3)
    batch = QueryBatch(
        [
            Query("a", where=(shared, Predicate("y", Op.GT, 0))),
            Query("b", where=(Predicate("x", Op.LE, 3),)),
        ]
    )
    assert [p.signature for p in batch.shared_predicates()] == [shared.signature]


def test_predicate_evaluate_and_parse():
    import numpy as np

    p = Predicate("x", Op.parse("<>"), 2)
    assert p.op is Op.NE
    assert list(p.evaluate(np.array([1, 2, 3]))) == [True, False, True]
    with pytest.raises(QueryError):
        Op.parse("~~")
