"""Sum-product aggregate structure and signatures."""

import pytest

from repro.query import Aggregate, Factor, square
from repro.query.functions import identity
from repro.util.errors import QueryError


def test_count_has_no_factors():
    agg = Aggregate.count()
    assert agg.is_count()
    assert agg.attributes == ()
    assert repr(agg) == "SUM(1)"


def test_factor_order_is_canonical():
    a = Aggregate((Factor("x"), Factor("y", square)))
    b = Aggregate((Factor("y", square), Factor("x")))
    assert a == b
    assert a.signature == b.signature


def test_duplicate_factors_are_kept():
    # SUM(x*x) is a product with two identical factors, not SUM(x)
    agg = Aggregate((Factor("x"), Factor("x")))
    assert len(agg.factors) == 2
    assert agg.attributes == ("x",)
    assert agg != Aggregate.sum("x")


def test_with_factor_extends_product():
    base = Aggregate.sum("x")
    extended = base.with_factor(Factor("y"))
    assert len(extended.factors) == 2
    assert base != extended


def test_sum_helper_uses_identity():
    agg = Aggregate.sum("x")
    assert agg.factors[0].function is identity


def test_validate_against():
    agg = Aggregate.sum("x")
    agg.validate_against(("x", "y"))
    with pytest.raises(QueryError):
        agg.validate_against(("y",))


def test_signature_distinguishes_functions():
    assert Aggregate.sum("x").signature != Aggregate.sum("x", square).signature
