"""Reproduction of Figure 3: the multi-output plan for Group 6.

Pinned structure: the trie order ``item, date, store``; one V_I→S lookup
per item value (not per triple); the γ prefix-product chain of Q2
(α2/α4/α6); and the β running-sum sharing between Q1 and V_S→I (β1).

The sharing assertion uses a variant of Q3 with aggregate ``SUM(units)``:
Figure 3 draws ``V_S→I(i) = β1`` with ``β0 += β1 · α1`` for Q1, which
requires both chains to carry the same factor multiset below the item
level — true when V_S→I propagates the same ``SUM(units)``.
"""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries
from repro.query import Aggregate, Query, QueryBatch
from repro.query.aggregates import Factor
from repro.paper import g as g_fn, h as h_fn


def _sales_group(compiled):
    for index, group in enumerate(compiled.group_plan.groups):
        if "Q1" in group.artifact_names:
            return index, compiled.plans[index]
    raise AssertionError("no group containing Q1")


@pytest.fixture()
def figure3(favorita_db):
    """The paper's batch with Q3 propagating SUM(units) (see module doc)."""
    q1 = Query("Q1", aggregates=(Aggregate.sum("units"),))
    q2 = Query(
        "Q2",
        group_by=("store",),
        aggregates=(Aggregate((Factor("item", g_fn), Factor("date", h_fn))),),
    )
    q3 = Query("Q3", group_by=("class",), aggregates=(Aggregate.sum("units"),))
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS),
    )
    return engine.compile(QueryBatch([q1, q2, q3]))


def test_attribute_order_is_item_date_store(figure3):
    _, plan = _sales_group(figure3)
    assert plan.order == ("item", "date", "store")


def test_one_items_lookup_per_item(figure3):
    """V_I→S is keyed on item and bound at level 0 — one probe per item
    value, exactly the hoisting Figure 3 highlights."""
    index, plan = _sales_group(figure3)
    items_binding = next(
        b for b in plan.bindings if "Items_Sales" in b.view
    )
    assert items_binding.bind_level == 0
    source = figure3.generated_source(index)
    probe_lines = [
        line for line in source.splitlines() if f"B" in line and ".get(v0)" in line
    ]
    # exactly one probe against the item-keyed Items view
    items_probes = [
        line
        for line in probe_lines
        if any(
            f"B{i} = env.bindings['{items_binding.view}']" in source
            and f"B{i}.get(v0)" in line
            for i in range(len(plan.bindings))
        )
    ]
    assert len(items_probes) >= 1


def test_q1_and_v_s_i_share_beta1(figure3):
    """Figure 3's running-sum sharing: V_S→I(i) = β1 and β0 += β1 · α1."""
    _, plan = _sales_group(figure3)
    emissions = {e.artifact: e for e in plan.emissions}
    view_name = next(a for a in emissions if "Sales_Items" in a)
    v_slot = emissions[view_name].slots[0]
    q1_slot = emissions["Q1"].slots[0]
    assert v_slot.beta is not None and q1_slot.beta is not None
    q1_top = plan.betas[q1_slot.beta]
    # Q1's chain starts at the item level and continues with exactly the
    # β node that V_S→I emits — the shared β1.
    assert q1_top.level == 0
    assert q1_top.child == v_slot.beta
    shared = plan.betas[v_slot.beta]
    assert shared.level == 1  # accumulated per date
    assert shared.reset_level == 0  # reset per item


def test_q2_gamma_chain_matches_alphas(figure3):
    """Q2's emission multiplies a 3-level γ chain — α2, α4, α6."""
    _, plan = _sales_group(figure3)
    emissions = {e.artifact: e for e in plan.emissions}
    slot = emissions["Q2"].slots[0]
    assert slot.beta is None  # everything is bound at or above store
    chain_levels = []
    gid = slot.gamma
    while gid is not None:
        node = plan.gammas[gid]
        chain_levels.append(node.level)
        gid = node.parent
    assert chain_levels == [2, 1, 0]


def test_emissions_modes(figure3):
    """V_S→I is prefix-aligned (assignment); Q2 accumulates; Q1 is scalar."""
    _, plan = _sales_group(figure3)
    emissions = {e.artifact: e for e in plan.emissions}
    view_name = next(a for a in emissions if "Sales_Items" in a)
    assert emissions[view_name].aligned
    assert not emissions["Q2"].aligned
    assert emissions["Q1"].group_by == ()


def test_plan_statistics_shape(figure3):
    _, plan = _sales_group(figure3)
    stats = plan.statistics()
    assert stats["relation_levels"] == 3
    assert stats["bindings"] == 3
    assert stats["emissions"] == 3
    assert stats["carried_blocks"] == 0


def test_factorization_reduces_beta_nodes(favorita_db):
    """Without factorisation each artifact evaluates everything at its
    deepest level: more work, no shared chains."""
    config = dict(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS)
    fact = LMFAO(favorita_db, EngineConfig(**config)).compile(example_queries())
    flat = LMFAO(
        favorita_db, EngineConfig(factorize=False, **config)
    ).compile(example_queries())
    _, fact_plan = _sales_group(fact)
    _, flat_plan = _sales_group(flat)
    fact_stats = fact_plan.statistics()
    flat_stats = flat_plan.statistics()
    assert fact_stats["beta_nodes"] >= flat_stats["beta_nodes"]
    # unfactorised plans put every term at one level: fewer, fatter nodes
    deepest = max(b.level for b in flat_plan.betas)
    assert all(
        b.level == deepest or b.terms == () for b in flat_plan.betas
    ) or flat_stats["beta_nodes"] <= fact_stats["beta_nodes"]
