"""Shared-memory lifecycle of the multiprocess executor.

The contract under test (see :mod:`repro.core.mpexec`):

* one segment per ``(snapshot version, trie)`` — created on first use,
  **reused** by every later run over the same version, and unlinked
  exactly once;
* closing the engine (or letting it be garbage-collected) unlinks every
  segment and leaves nothing in the process-wide registry or ``/dev/shm``;
* superseded snapshot versions are reclaimed once unpinned, while a pinned
  version survives concurrent ``apply`` — the run-during-apply guarantee;
* a dying worker surfaces a clean :class:`PlanError` (never a hang) and
  the pool respawns transparently on next use.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.core import EngineConfig, LMFAO, mpexec
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.query import Aggregate, Query, QueryBatch
from repro.util.errors import PlanError

C = Attribute.categorical
X = Attribute.continuous

_PROCESS_CONFIG = EngineConfig(
    executor="process", workers=2, partitions=2, parallel_threshold=0
)


def _db(rows: int = 240) -> Database:
    sales = Relation(
        RelationSchema("Sales", (C("store"), C("item"), X("units"))),
        {
            "store": [i % 12 for i in range(rows)],
            "item": [i % 5 for i in range(rows)],
            "units": [float(i % 7) for i in range(rows)],
        },
    )
    return Database([sales])


def _batch() -> QueryBatch:
    return QueryBatch(
        [
            Query(
                "q",
                group_by=("store",),
                aggregates=(Aggregate.count(), Aggregate.sum("units")),
            )
        ]
    )


def _dev_shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith("lmfao_")}


# ------------------------------------------------------------- segment reuse
def test_segments_created_once_per_version_and_reused():
    with LMFAO(_db(), _PROCESS_CONFIG) as engine:
        baseline = LMFAO(_db(), EngineConfig()).run(_batch())
        first = engine.run(_batch())
        executor = engine._process_executor()
        segments = executor.segment_names()
        assert len(segments) == 1  # one trie, one segment
        for _ in range(2):
            run = engine.run(_batch())
            assert run.results["q"].groups == baseline.results["q"].groups
        assert executor.segment_names() == segments  # reused, not re-exported
        assert first.results["q"].groups == baseline.results["q"].groups


def test_close_unlinks_every_segment():
    engine = LMFAO(_db(), _PROCESS_CONFIG)
    engine.run(_batch())
    executor = engine._process_executor()
    names = executor.segment_names()
    assert names
    assert set(names) <= set(mpexec.active_segment_names())
    assert set(names) <= _dev_shm_segments()
    engine.close()
    assert not set(names) & set(mpexec.active_segment_names())
    assert not set(names) & _dev_shm_segments()
    engine.close()  # idempotent


def test_garbage_collected_engine_unlinks_segments():
    engine = LMFAO(_db(), _PROCESS_CONFIG)
    engine.run(_batch())
    names = set(engine._process_executor().segment_names())
    assert names
    del engine
    gc.collect()
    assert not names & set(mpexec.active_segment_names())
    assert not names & _dev_shm_segments()


# ------------------------------------------------------- version pinning / GC
def test_superseded_version_collected_after_release():
    with LMFAO(_db(), _PROCESS_CONFIG) as engine:
        handle = engine.maintain(_batch())
        engine.run(_batch())  # export the current version's segments
        executor = engine._process_executor()
        old = set(executor.segment_names())
        assert old
        handle.apply(inserts={"Sales": [(1, 2, 3.0)]})
        engine.run(_batch())  # runs on the new version, then releases it
        current = set(executor.segment_names())
        assert not old & current, "superseded version's segments must be gone"
        assert current, "the new version has its own segments"
        oracle = LMFAO(engine.db, EngineConfig()).run(_batch())
        assert engine.run(_batch()).results["q"].groups == oracle.results["q"].groups


def test_pinned_version_survives_apply():
    """While a run holds a version pinned, installing a successor must not
    unlink the pinned version's segments (the mapped-trie guarantee)."""
    with LMFAO(_db(), _PROCESS_CONFIG) as engine:
        handle = engine.maintain(_batch())
        engine.run(_batch())  # export the current version's segments
        executor = engine._process_executor()
        version = engine.snapshot().version
        old = set(executor.segment_names())
        assert old
        executor.retain(version)  # what execute() does for the run's duration
        try:
            handle.apply(inserts={"Sales": [(1, 2, 3.0)]})
            engine.run(_batch())  # new version exports; old one is pinned
            assert old <= set(executor.segment_names())
        finally:
            executor.release(version)
        assert not old & set(executor.segment_names())


# ------------------------------------------------------- merge determinism
def test_results_do_not_depend_on_worker_count():
    """The canonical chunk grid: merged float sums associate identically
    at every worker count (regression — per-worker chunking used to make
    ``workers=2`` and ``workers=4`` reassociate non-integral partials)."""
    rows = 240
    sales = Relation(
        RelationSchema("Sales", (C("store"), C("item"), X("units"))),
        {
            "store": [i % 12 for i in range(rows)],
            "item": [i % 5 for i in range(rows)],
            "units": [0.1 + (i % 7) / 3.0 for i in range(rows)],  # non-integral
        },
    )
    db = Database([sales])
    runs = []
    for workers in (1, 2, 4):
        with LMFAO(
            db,
            EngineConfig(
                executor="process", workers=workers, partitions=5,
                parallel_threshold=0,
            ),
        ) as engine:
            runs.append(engine.run(_batch()).results["q"].groups)
    assert runs[0] == runs[1] == runs[2]


# ------------------------------------------------------------- worker crashes
def test_worker_death_raises_plan_error_not_hang():
    with LMFAO(_db(), _PROCESS_CONFIG) as engine:
        baseline = LMFAO(_db(), EngineConfig()).run(_batch())
        engine.run(_batch())
        executor = engine._process_executor()
        for proc in list(executor._procs):
            proc.kill()
        with pytest.raises(PlanError, match="worker process died"):
            engine.run(_batch())
        # the pool respawns transparently and the segments were kept
        run = engine.run(_batch())
        assert run.results["q"].groups == baseline.results["q"].groups
    assert not _dev_shm_segments() & set(mpexec.active_segment_names())


def test_worker_crash_leaks_no_segments():
    engine = LMFAO(_db(), _PROCESS_CONFIG)
    engine.run(_batch())
    executor = engine._process_executor()
    names = set(executor.segment_names())
    for proc in list(executor._procs):
        proc.kill()
    with pytest.raises(PlanError):
        engine.run(_batch())
    engine.close()
    assert not names & set(mpexec.active_segment_names())
    assert not names & _dev_shm_segments()


# ----------------------------------------------------------------- reporting
def test_worker_exception_carries_traceback():
    """An in-worker failure surfaces the worker's traceback, not a hang."""
    with LMFAO(_db(), _PROCESS_CONFIG) as engine:
        compiled = engine.compile(_batch())
        engine.run(_batch())
        executor = engine._process_executor()
        export = next(iter(executor._segments.values())).export
        index = next(
            i
            for i, plan in enumerate(compiled.plans)
            if mpexec.plan_function_names(plan)
        )
        with pytest.raises(PlanError, match="failed in a worker"):
            # an empty functions mapping cannot satisfy the plan — the
            # failure happens inside the worker and travels back whole
            executor.execute_group(compiled, index, export, {}, {}, {})
