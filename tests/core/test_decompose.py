"""γ/β decomposition invariants on real plans."""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.core.plan import CountTerm, RowSumTerm
from repro.ml import covariance_batch
from repro.ml.features import favorita_features
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries


@pytest.fixture()
def plans(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS),
    )
    return engine.compile(example_queries()).plans


@pytest.fixture()
def lr_plans(favorita_db):
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    return engine.compile(covariance_batch(favorita_features(favorita_db))).plans


def test_beta_levels_strictly_increase(plans, lr_plans):
    for plan in list(plans) + list(lr_plans):
        for node in plan.betas:
            assert node.reset_level < node.level
            if node.child is not None:
                assert plan.betas[node.child].level > node.level
                assert plan.betas[node.child].reset_level == node.level


def test_gamma_levels_weakly_increase(plans, lr_plans):
    for plan in list(plans) + list(lr_plans):
        for node in plan.gammas:
            if node.parent is not None:
                assert plan.gammas[node.parent].level <= node.level
            for term in node.terms:
                assert term.level <= node.level


def test_every_chain_has_a_row_anchor(plans, lr_plans):
    """Every aggregate carries exactly one Count/RowSum terminal."""
    for plan in list(plans) + list(lr_plans):
        for emission in plan.emissions:
            for slot in emission.slots:
                anchors = 0
                gid = slot.gamma
                while gid is not None:
                    node = plan.gammas[gid]
                    anchors += sum(
                        isinstance(t, (CountTerm, RowSumTerm)) for t in node.terms
                    )
                    gid = node.parent
                bid = slot.beta
                while bid is not None:
                    node = plan.betas[bid]
                    anchors += sum(
                        isinstance(t, (CountTerm, RowSumTerm)) for t in node.terms
                    )
                    bid = node.child
                assert anchors == 1, (emission.artifact, slot.slot)


def test_hash_consing_shares_nodes(lr_plans):
    """The LR batch has hundreds of aggregates but far fewer chains."""
    fact = next(p for p in lr_plans if p.node == "Sales")
    emitted = sum(len(e.slots) for e in fact.emissions)
    assert emitted > 50
    assert len(fact.betas) < emitted  # sharing happened


def test_support_only_when_chain_descends(plans, lr_plans):
    for plan in list(plans) + list(lr_plans):
        for emission in plan.emissions:
            for slot in emission.slots:
                if not emission.group_by:
                    assert slot.support is None
                if slot.support is not None:
                    support = plan.betas[slot.support]
                    assert support.reset_level == slot.level
                    assert len(support.terms) == 1
                    assert isinstance(support.terms[0], CountTerm)


def test_row_products_canonical(lr_plans):
    for plan in lr_plans:
        for product in plan.row_products:
            assert list(product) == sorted(product)
