"""NumPy backend: differential equality with the Python backend."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO
from repro.core.npbackend import NumpyCompiledGroup, supports_plan
from repro.core.runtime import ArrayViewData
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries
from repro.query import Aggregate, Factor, Op, Predicate, Query, QueryBatch
from repro.query.functions import identity
from repro.util.errors import CyclicSchemaError, PlanError

from tests.helpers import assert_results_equal
from tests.strategies import instances

_C = Attribute.categorical
_F = Attribute.continuous


def _compare_backends(db, batch, **config):
    python_run = LMFAO(db, EngineConfig(backend="python", **config)).run(batch)
    numpy_run = LMFAO(db, EngineConfig(backend="numpy", **config)).run(batch)
    for name in python_run.results:
        assert_results_equal(
            numpy_run.results[name], python_run.results[name], rel_tol=1e-9
        )
    return numpy_run


def _integer_db(n=4000, seed=11):
    """Integer-valued star schema: float64 arithmetic is exact on it."""
    rng = np.random.default_rng(seed)
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("g"), _C("h"), _F("x"))),
        {
            "k": rng.integers(0, 40, n),
            "g": rng.integers(0, 6, n),
            "h": rng.integers(0, 4, n),
            "x": rng.integers(-4, 9, n).astype(float),
        },
    )
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"), _F("z"))),
        {
            "k": np.arange(40),
            "w": rng.integers(0, 5, 40),
            "z": rng.integers(1, 6, 40).astype(float),
        },
    )
    return Database([fact, dim])


def _integer_batch():
    """Scalar + aligned + hash emissions, cross-node group-bys, a filter."""
    return QueryBatch(
        [
            Query("total", aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("by_g", group_by=("g",), aggregates=(
                Aggregate((Factor("x", identity), Factor("z", identity))),
            )),
            Query("by_h", group_by=("h",), aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("by_gh", group_by=("g", "h"), aggregates=(
                Aggregate((Factor("x", identity),)),
            )),
            Query("by_w", group_by=("w",), aggregates=(
                Aggregate((Factor("x", identity),)),
            )),
            Query("filtered", group_by=("g",), aggregates=(
                Aggregate.count(),
            ), where=(Predicate("h", Op.EQ, 1),)),
        ]
    )


def test_paper_example_fully_vectorized(favorita_db):
    run = _compare_backends(
        favorita_db,
        example_queries(),
        join_tree_edges=FAVORITA_TREE,
        root_override=EXAMPLE_ROOTS,
    )
    assert run.compiled.native_group_count == run.compiled.num_groups


def test_carried_blocks_fall_back_to_python(favorita_db):
    """Two-categorical covariance queries carry attributes across nodes."""
    from repro.ml import covariance_batch
    from repro.ml.features import favorita_features

    batch = covariance_batch(favorita_features(favorita_db))
    run = _compare_backends(favorita_db, batch, join_tree_edges=FAVORITA_TREE)
    assert 0 < run.compiled.native_group_count < run.compiled.num_groups
    carried = [p for p in run.compiled.plans if p.carried_blocks]
    assert carried and not any(supports_plan(p) for p in carried)
    with pytest.raises(PlanError):
        NumpyCompiledGroup(carried[0])


def test_float_keys_run_natively(retailer_db):
    """Float group-bys (rejected by the C backend) stay vectorized."""
    batch = QueryBatch(
        [Query("hist", group_by=("prize",), aggregates=(Aggregate.count(),))]
    )
    run = _compare_backends(retailer_db, batch)
    assert run.compiled.native_group_count == run.compiled.num_groups


def test_bit_exact_on_integer_data():
    db = _integer_db()
    batch = _integer_batch()
    base = LMFAO(db, EngineConfig(backend="python", workers=1, partitions=1)).run(
        batch
    )
    run = LMFAO(db, EngineConfig(backend="numpy", workers=1, partitions=1)).run(
        batch
    )
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


@pytest.mark.parametrize("workers,partitions", [(1, 3), (4, 1), (4, 4)])
def test_bit_exact_partitioned(workers, partitions):
    db = _integer_db()
    batch = _integer_batch()
    base = LMFAO(db, EngineConfig(backend="python", workers=1, partitions=1)).run(
        batch
    )
    run = LMFAO(
        db,
        EngineConfig(
            backend="numpy",
            workers=workers,
            partitions=partitions,
            parallel_threshold=0,
        ),
    ).run(batch)
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


@pytest.mark.parametrize("partitions", [1, 3])
def test_incremental_maintenance_bit_compatible(partitions):
    """Inserts (numeric path) and deletes (rescan) through the backend."""
    db = _integer_db()
    batch = _integer_batch()
    config = EngineConfig(
        backend="numpy", partitions=partitions, parallel_threshold=0
    )
    handle = LMFAO(db, config).maintain(batch)
    handle.apply(inserts={"Fact": [(1, 2, 3, 4.0), (3, 1, 0, -2.0)]})
    recomputed = handle.recompute()
    for name in recomputed.results:
        assert handle[name].groups == recomputed.results[name].groups, name
    handle.apply(deletes={"Fact": [(1, 2, 3, 4.0)]})
    recomputed = handle.recompute()
    for name in recomputed.results:
        assert handle[name].groups == recomputed.results[name].groups, name


def test_empty_relation():
    db = _integer_db(n=0)
    batch = _integer_batch()
    base = LMFAO(db, EngineConfig(backend="python")).run(batch)
    run = LMFAO(db, EngineConfig(backend="numpy")).run(batch)
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


def test_outputs_keep_columnar_arrays():
    """Non-scalar emissions come back as ArrayViewData with intact arrays."""
    from repro.core.runtime import node_trie

    db = _integer_db()
    engine = LMFAO(db, EngineConfig(backend="numpy"))
    compiled = engine.compile(_integer_batch())
    index = next(
        i
        for i, plan in enumerate(compiled.plans)
        if compiled.native_groups[i] is not None
        and any(e.group_by for e in plan.emissions)
        and not plan.bindings
    )
    plan = compiled.plans[index]
    trie = node_trie(db, plan.node, plan.order, (), {})
    outputs = compiled.native_groups[index].execute(
        trie, {}, {}, compiled.functions
    )
    keyed = [e.artifact for e in plan.emissions if e.group_by]
    assert keyed
    for name in keyed:
        data = outputs[name]
        assert isinstance(data, ArrayViewData) and data.has_columns
        rebuilt = ArrayViewData.from_arrays(data.key_columns, data.value_matrix)
        assert dict(rebuilt) == dict(data)


def test_missing_view_data_raises(favorita_db, favorita_engine):
    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings and supports_plan(p))
    group = NumpyCompiledGroup(plan)
    with pytest.raises(PlanError):
        group.prepare_bindings({}, {})


def test_trie_order_mismatch_raises(favorita_db, favorita_engine):
    from repro.data import TrieIndex

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if supports_plan(p))
    group = NumpyCompiledGroup(plan)
    wrong = TrieIndex(favorita_db.relation(plan.node), ())
    with pytest.raises(PlanError):
        group.execute(wrong, {}, {}, compiled.functions)


def test_array_view_data_roundtrip():
    data = ArrayViewData.from_arrays(
        [np.array([3, 1, 2])], np.array([[1.0], [2.0], [3.0]])
    )
    assert data == {3: [1.0], 1: [2.0], 2: [3.0]}
    assert data.has_columns
    data.drop_columnar()
    assert not data.has_columns
    assert data == {3: [1.0], 1: [2.0], 2: [3.0]}
    multi = ArrayViewData.from_arrays(
        [np.array([1, 1]), np.array([4, 5])], np.array([[1.0, 0.0], [0.5, 2.0]])
    )
    assert multi == {(1, 4): [1.0, 0.0], (1, 5): [0.5, 2.0]}


@given(instance=instances())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_numpy_backend_matches_python_on_random_instances(instance):
    try:
        _compare_backends(instance.db, instance.batch)
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
