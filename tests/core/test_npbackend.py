"""NumPy backend: differential equality with the Python backend."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO
from repro.core.npbackend import NumpyCompiledGroup, supports_plan
from repro.core.runtime import ArrayViewData
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries
from repro.query import Aggregate, Factor, Op, Predicate, Query, QueryBatch
from repro.query.functions import identity
from repro.util.errors import CyclicSchemaError, PlanError

from tests.helpers import assert_results_equal
from tests.strategies import instances

_C = Attribute.categorical
_F = Attribute.continuous


def _compare_backends(db, batch, **config):
    python_run = LMFAO(db, EngineConfig(backend="python", **config)).run(batch)
    numpy_run = LMFAO(db, EngineConfig(backend="numpy", **config)).run(batch)
    for name in python_run.results:
        assert_results_equal(
            numpy_run.results[name], python_run.results[name], rel_tol=1e-9
        )
    return numpy_run


def _integer_db(n=4000, seed=11):
    """Integer-valued star schema: float64 arithmetic is exact on it."""
    rng = np.random.default_rng(seed)
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("g"), _C("h"), _F("x"))),
        {
            "k": rng.integers(0, 40, n),
            "g": rng.integers(0, 6, n),
            "h": rng.integers(0, 4, n),
            "x": rng.integers(-4, 9, n).astype(float),
        },
    )
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"), _F("z"))),
        {
            "k": np.arange(40),
            "w": rng.integers(0, 5, 40),
            "z": rng.integers(1, 6, 40).astype(float),
        },
    )
    return Database([fact, dim])


def _integer_batch():
    """Scalar + aligned + hash emissions, cross-node group-bys, a filter."""
    return QueryBatch(
        [
            Query("total", aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("by_g", group_by=("g",), aggregates=(
                Aggregate((Factor("x", identity), Factor("z", identity))),
            )),
            Query("by_h", group_by=("h",), aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("by_gh", group_by=("g", "h"), aggregates=(
                Aggregate((Factor("x", identity),)),
            )),
            Query("by_w", group_by=("w",), aggregates=(
                Aggregate((Factor("x", identity),)),
            )),
            # cross-node group-by: the Dim view carries w into Fact's plan,
            # so every test running this batch exercises a carried block
            Query("by_gw", group_by=("g", "w"), aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("filtered", group_by=("g",), aggregates=(
                Aggregate.count(),
            ), where=(Predicate("h", Op.EQ, 1),)),
        ]
    )


def test_paper_example_fully_vectorized(favorita_db):
    run = _compare_backends(
        favorita_db,
        example_queries(),
        join_tree_edges=FAVORITA_TREE,
        root_override=EXAMPLE_ROOTS,
    )
    assert run.compiled.native_group_count == run.compiled.num_groups


def test_carried_blocks_run_natively(favorita_db):
    """Two-categorical covariance queries carry attributes across nodes.

    These were the last whole-group fallback class; since the CSR
    entry-list lowering they run vectorized end-to-end, bit-compatible
    with the interpreted oracle.
    """
    from repro.ml import covariance_batch
    from repro.ml.features import favorita_features

    batch = covariance_batch(favorita_features(favorita_db))
    run = _compare_backends(favorita_db, batch, join_tree_edges=FAVORITA_TREE)
    assert run.compiled.native_group_count == run.compiled.num_groups
    carried = [p for p in run.compiled.plans if p.carried_blocks]
    assert carried and all(supports_plan(p) for p in carried)
    NumpyCompiledGroup(carried[0])  # constructs without PlanError


def test_supports_plan_accepts_figure3_style_carried_plans(favorita_db):
    """Cross-node group-bys over the paper schema decompose into plans
    with carried blocks — previously rejected, now first-class."""
    batch = QueryBatch(
        [
            Query("stores_by_class", group_by=("store", "class"), aggregates=(
                Aggregate.sum("units"), Aggregate.count(),
            )),
        ]
    )
    engine = LMFAO(
        favorita_db, EngineConfig(backend="numpy", join_tree_edges=FAVORITA_TREE)
    )
    compiled = engine.compile(batch)
    assert any(plan.carried_blocks for plan in compiled.plans)
    assert all(supports_plan(plan) for plan in compiled.plans)
    assert compiled.native_group_count == compiled.num_groups


def test_float_keys_run_natively(retailer_db):
    """Float group-bys (rejected by the C backend) stay vectorized."""
    batch = QueryBatch(
        [Query("hist", group_by=("prize",), aggregates=(Aggregate.count(),))]
    )
    run = _compare_backends(retailer_db, batch)
    assert run.compiled.native_group_count == run.compiled.num_groups


def test_bit_exact_on_integer_data():
    db = _integer_db()
    batch = _integer_batch()
    base = LMFAO(db, EngineConfig(backend="python", workers=1, partitions=1)).run(
        batch
    )
    run = LMFAO(db, EngineConfig(backend="numpy", workers=1, partitions=1)).run(
        batch
    )
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


@pytest.mark.parametrize("workers,partitions", [(1, 3), (4, 1), (4, 4)])
def test_bit_exact_partitioned(workers, partitions):
    db = _integer_db()
    batch = _integer_batch()
    base = LMFAO(db, EngineConfig(backend="python", workers=1, partitions=1)).run(
        batch
    )
    run = LMFAO(
        db,
        EngineConfig(
            backend="numpy",
            workers=workers,
            partitions=partitions,
            parallel_threshold=0,
        ),
    ).run(batch)
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


@pytest.mark.parametrize("partitions", [1, 3])
def test_incremental_maintenance_bit_compatible(partitions):
    """Inserts (numeric path) and deletes (rescan) through the backend."""
    db = _integer_db()
    batch = _integer_batch()
    config = EngineConfig(
        backend="numpy", partitions=partitions, parallel_threshold=0
    )
    handle = LMFAO(db, config).maintain(batch)
    handle.apply(inserts={"Fact": [(1, 2, 3, 4.0), (3, 1, 0, -2.0)]})
    recomputed = handle.recompute()
    for name in recomputed.results:
        assert handle[name].groups == recomputed.results[name].groups, name
    handle.apply(deletes={"Fact": [(1, 2, 3, 4.0)]})
    recomputed = handle.recompute()
    for name in recomputed.results:
        assert handle[name].groups == recomputed.results[name].groups, name


def test_empty_relation():
    db = _integer_db(n=0)
    batch = _integer_batch()
    base = LMFAO(db, EngineConfig(backend="python")).run(batch)
    run = LMFAO(db, EngineConfig(backend="numpy")).run(batch)
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


# ------------------------------------------------- carried-block edge cases


def _carried_star(fact_keys, dim_keys, dim_rows_per_key=1, n=500, seed=3):
    """A 2-node star whose cross-node batch always has a carried block.

    ``fact_keys``/``dim_keys`` control the semi-join overlap; duplicated
    dim keys control the carried entry-segment lengths.
    """
    rng = np.random.default_rng(seed)
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("g"), _F("x"))),
        {
            "k": rng.choice(fact_keys, n) if len(fact_keys) else np.empty(0),
            "g": rng.integers(0, 5, n),
            "x": rng.integers(-3, 8, n).astype(float),
        } if len(fact_keys) else {"k": [], "g": [], "x": []},
    )
    dim_k = np.repeat(np.asarray(dim_keys, dtype=np.int64), dim_rows_per_key)
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"), _F("z"))),
        {
            "k": dim_k,
            "w": rng.integers(0, 4, len(dim_k)),
            "z": rng.integers(1, 5, len(dim_k)).astype(float),
        },
    )
    return Database([fact, dim])


def _carried_batch():
    """Cross-node group-bys: every keyed plan probes a carried view."""
    return QueryBatch(
        [
            Query("by_gw", group_by=("g", "w"), aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("by_gw_z", group_by=("g", "w"), aggregates=(
                Aggregate((Factor("x", identity), Factor("z", identity))),
            )),
            Query("total", aggregates=(Aggregate((Factor("x", identity),)),)),
        ]
    )


def _assert_carried_native(db, batch, **config):
    run = _compare_backends(db, batch, **config)
    assert any(p.carried_blocks for p in run.compiled.plans)
    assert run.compiled.native_group_count == run.compiled.num_groups
    return run


def test_carried_empty_view():
    """A carried view with zero entries: every probe misses, no crash."""
    _assert_carried_native(
        _carried_star(fact_keys=np.arange(10), dim_keys=[]), _carried_batch()
    )


def test_carried_all_probe_misses():
    """Disjoint join keys: the alive mask dies at the bind level for every
    run, so carried expansions see only zero-count segments."""
    run = _assert_carried_native(
        _carried_star(fact_keys=np.arange(100, 110), dim_keys=np.arange(10)),
        _carried_batch(),
    )
    assert run.results["by_gw"].groups == {}


def test_carried_one_entry_segments():
    """Unique dim keys: every carried entry segment has exactly one entry."""
    _assert_carried_native(
        _carried_star(fact_keys=np.arange(20), dim_keys=np.arange(20)),
        _carried_batch(),
    )


def test_carried_multi_entry_segments():
    """Duplicated dim keys: segments of width > 1, accumulation in
    entry-list order."""
    _assert_carried_native(
        _carried_star(fact_keys=np.arange(12), dim_keys=np.arange(12),
                      dim_rows_per_key=4),
        _carried_batch(),
    )


def test_carried_empty_fact():
    """An empty trie under a carried plan: zero runs to expand."""
    _assert_carried_native(
        _carried_star(fact_keys=np.empty(0, dtype=np.int64),
                      dim_keys=np.arange(4), n=0),
        _carried_batch(),
    )


def test_carried_two_blocks_nested_expansion():
    """Two carried views keyed in one emission: the cross-product
    expansion nests entry loops two deep, in block-index order."""
    rng = np.random.default_rng(9)
    n, nk = 2000, 40
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("j"), _C("g"), _F("x"))),
        {
            "k": rng.integers(0, nk, n),
            "j": rng.integers(0, nk, n),
            "g": rng.integers(0, 5, n),
            "x": rng.integers(-3, 7, n).astype(float),
        },
    )
    d1 = Relation(
        RelationSchema("D1", (_C("k"), _C("w"), _F("z"))),
        {
            "k": rng.integers(0, nk, 120),
            "w": rng.integers(0, 4, 120),
            "z": rng.integers(1, 5, 120).astype(float),
        },
    )
    d2 = Relation(
        RelationSchema("D2", (_C("j"), _C("v"), _F("u"))),
        {
            "j": rng.integers(0, nk, 90),
            "v": rng.integers(0, 3, 90),
            "u": rng.integers(1, 6, 90).astype(float),
        },
    )
    db = Database([fact, d1, d2])
    batch = QueryBatch(
        [
            Query("wv", group_by=("w", "v"), aggregates=(
                Aggregate((Factor("x", identity),)), Aggregate.count(),
            )),
            Query("gwv", group_by=("g", "w", "v"), aggregates=(
                Aggregate((Factor("z", identity), Factor("u", identity))),
            )),
        ]
    )
    run = _compare_backends(db, batch)
    assert any(len(p.carried_blocks) > 1 for p in run.compiled.plans)
    assert run.compiled.native_group_count == run.compiled.num_groups
    base = LMFAO(db, EngineConfig(backend="python")).run(batch)
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


@pytest.mark.parametrize("workers,partitions", [(1, 3), (4, 1), (4, 4)])
def test_carried_bit_exact_partitioned(workers, partitions):
    """Carried plans through the partition/merge path, single-run edges
    included (partitions > distinct level-0 runs of the small trie)."""
    db = _carried_star(fact_keys=np.arange(8), dim_keys=np.arange(6),
                       dim_rows_per_key=2)
    batch = _carried_batch()
    base = LMFAO(db, EngineConfig(backend="python", workers=1, partitions=1)).run(
        batch
    )
    run = LMFAO(
        db,
        EngineConfig(
            backend="numpy",
            workers=workers,
            partitions=partitions,
            parallel_threshold=0,
        ),
    ).run(batch)
    assert run.compiled.native_group_count == run.compiled.num_groups
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups, name


def test_outputs_keep_columnar_arrays():
    """Non-scalar emissions come back as ArrayViewData with intact arrays."""
    from repro.core.runtime import node_trie

    db = _integer_db()
    engine = LMFAO(db, EngineConfig(backend="numpy"))
    compiled = engine.compile(_integer_batch())
    index = next(
        i
        for i, plan in enumerate(compiled.plans)
        if compiled.native_groups[i] is not None
        and any(e.group_by for e in plan.emissions)
        and not plan.bindings
    )
    plan = compiled.plans[index]
    trie = node_trie(db, plan.node, plan.order, (), {})
    outputs = compiled.native_groups[index].execute(
        trie, {}, {}, compiled.functions
    )
    keyed = [e.artifact for e in plan.emissions if e.group_by]
    assert keyed
    for name in keyed:
        data = outputs[name]
        assert isinstance(data, ArrayViewData) and data.has_columns
        rebuilt = ArrayViewData.from_arrays(data.key_columns, data.value_matrix)
        assert dict(rebuilt) == dict(data)


def test_missing_view_data_raises(favorita_db, favorita_engine):
    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings and supports_plan(p))
    group = NumpyCompiledGroup(plan)
    with pytest.raises(PlanError):
        group.prepare_bindings({}, {})


def test_trie_order_mismatch_raises(favorita_db, favorita_engine):
    from repro.data import TrieIndex

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if supports_plan(p))
    group = NumpyCompiledGroup(plan)
    wrong = TrieIndex(favorita_db.relation(plan.node), ())
    with pytest.raises(PlanError):
        group.execute(wrong, {}, {}, compiled.functions)


def test_array_view_data_roundtrip():
    data = ArrayViewData.from_arrays(
        [np.array([3, 1, 2])], np.array([[1.0], [2.0], [3.0]])
    )
    assert data == {3: [1.0], 1: [2.0], 2: [3.0]}
    assert data.has_columns
    data.drop_columnar()
    assert not data.has_columns
    assert data == {3: [1.0], 1: [2.0], 2: [3.0]}
    multi = ArrayViewData.from_arrays(
        [np.array([1, 1]), np.array([4, 5])], np.array([[1.0, 0.0], [0.5, 2.0]])
    )
    assert multi == {(1, 4): [1.0, 0.0], (1, 5): [0.5, 2.0]}


@given(instance=instances())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_numpy_backend_matches_python_on_random_instances(instance):
    try:
        _compare_backends(instance.db, instance.batch)
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
