"""Failure hygiene of the parallel scheduler (:meth:`LMFAO._run_parallel`).

A group that raises mid-execution must propagate its exception out of
``run()`` promptly — queued tasks cancelled, the pool drained, no
half-merged partial output leaked into the run's result stores — and the
engine must stay fully usable for the next batch.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.query import Aggregate, Factor, Query, QueryBatch
from repro.query.functions import Function

C = Attribute.categorical


class Boom(RuntimeError):
    pass


def _db(rows: int = 4000) -> Database:
    fact = Relation(
        RelationSchema("A", (C("k"), C("g"))),
        {"k": [i % 50 for i in range(rows)], "g": [i % 7 for i in range(rows)]},
    )
    return Database([fact])


def _raise(_values: np.ndarray) -> np.ndarray:
    raise Boom("injected failure")


def _parallel_config() -> EngineConfig:
    # pinned: the CI legs rewrite EngineConfig defaults, and this file
    # specifically targets the thread scheduler's cleanup path.
    return EngineConfig(
        workers=4, partitions=4, parallel_threshold=0, executor="thread"
    )


def test_parallel_failure_propagates_without_hanging():
    db = _db()
    bad = QueryBatch([
        Query(
            "q_bad",
            group_by=("g",),
            aggregates=(Aggregate((Factor("k", Function("boom", _raise)),)),),
        ),
    ])
    engine = LMFAO(db, _parallel_config())
    before = threading.active_count()
    start = time.monotonic()
    with pytest.raises(Boom):
        engine.run(bad)
    assert time.monotonic() - start < 30, "failed run did not return promptly"
    # shutdown(wait=True, cancel_futures=True) drained the pool: no
    # scheduler worker threads survive the failed run.
    deadline = time.monotonic() + 10
    while threading.active_count() > before and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= before, "leaked pool threads"


def test_parallel_failure_leaks_no_partial_results_and_engine_stays_usable():
    db = _db()
    good = QueryBatch(
        [Query("q", group_by=("g",), aggregates=(Aggregate.count(),))]
    )
    mixed = QueryBatch([
        Query("q", group_by=("g",), aggregates=(Aggregate.count(),)),
        Query(
            "q_bad",
            group_by=("g",),
            aggregates=(Aggregate((Factor("k", Function("boom2", _raise)),)),),
        ),
    ])
    engine = LMFAO(db, _parallel_config())
    baseline = LMFAO(db, EngineConfig(workers=1, partitions=1)).run(good)
    with pytest.raises(Boom):
        engine.run(mixed)
    # the engine is reusable after the failure, and the rerun's results
    # are complete and bit-identical to the sequential baseline — nothing
    # half-merged from the failed run shadows them.
    run = engine.run(good)
    assert run.results["q"].groups == baseline.results["q"].groups
    assert run.results["q"].groups


def test_parallel_failure_repeats_deterministically():
    """Every retry of a failing batch raises (no poisoned scheduler state
    swallowing the second failure)."""
    db = _db()
    bad = QueryBatch([
        Query(
            "q_bad",
            group_by=("g",),
            aggregates=(Aggregate((Factor("k", Function("boom3", _raise)),)),),
        ),
    ])
    engine = LMFAO(db, _parallel_config())
    for _ in range(3):
        with pytest.raises(Boom):
            engine.run(bad)
