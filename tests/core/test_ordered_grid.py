"""Ordered differential grids: engine vs the independent ranking oracle.

The correctness anchor of the ordered-emission layer: for any generated
instance (adversarial tie distributions, ``k ∈ {0, 1, small, > group}``,
empty partitions — see :func:`tests.strategies.ordered_instances`), the
engine's finished results must match :func:`tests.oracle.ordered_oracle`
**as a sequence** — same rows, same rank order, same tie order — and
every point of the execution grid ``{python, numpy, c} × {thread,
process} × partitions × {heap, sort}`` must be bit-identical to the
sequential Python baseline. Integer-valued data makes float64 exact, so
any divergence is a real kernel or merge bug, never numeric noise.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO, costmodel
from repro.core.cbackend import gcc_available
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.query import Aggregate, Factor, OrderSpec, Query, QueryBatch
from repro.query.functions import identity
from repro.util.errors import CyclicSchemaError

from tests.helpers import assert_results_equal
from tests.oracle import assert_ordered_equal, ordered_oracle
from tests.strategies import ordered_instances

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_GRID = [(1, 2), (4, 1), (4, 5)]


def _oracle_checked_baseline(instance):
    """Sequential Python run, each query checked against the oracle."""
    try:
        engine = LMFAO(
            instance.db,
            EngineConfig(workers=1, partitions=1, parallel_threshold=0),
        )
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    baseline = engine.execute(engine.compile(instance.batch))
    join = instance.db.materialize_join()
    for query in instance.batch:
        if query.is_ordered:
            assert_ordered_equal(
                baseline.results[query.name], ordered_oracle(join, query)
            )
        else:
            from tests.helpers import oracle

            assert_results_equal(baseline.results[query.name], oracle(join, query))
    return baseline


def _ranked_or_bag(result):
    return (
        list(result.groups.items())
        if result.query.is_ordered
        else result.groups
    )


def _grid_matches_baseline(instance, backend: str) -> None:
    baseline = _oracle_checked_baseline(instance)
    config = EngineConfig(
        backend=backend, workers=1, partitions=1, parallel_threshold=0
    )
    runner = LMFAO(instance.db, config)
    compiled = runner.compile(instance.batch)
    grid = _GRID if backend == "python" else [(1, 1), *_GRID]
    for workers, partitions in grid:
        runner.config = replace(config, workers=workers, partitions=partitions)
        run = runner.execute(compiled)
        for name, expected in baseline.results.items():
            assert _ranked_or_bag(run.results[name]) == _ranked_or_bag(expected), (
                f"{backend} backend, workers={workers}, "
                f"partitions={partitions}: {name} diverged"
            )


@given(instance=ordered_instances())
@settings(max_examples=20, **_SETTINGS)
def test_ordered_python_grid_vs_oracle(instance):
    _grid_matches_baseline(instance, "python")


@given(instance=ordered_instances())
@settings(max_examples=10, **_SETTINGS)
def test_ordered_numpy_grid_vs_oracle(instance):
    _grid_matches_baseline(instance, "numpy")


@pytest.mark.skipif(not gcc_available(), reason="gcc not on PATH")
@given(instance=ordered_instances())
@settings(max_examples=6, **_SETTINGS)
def test_ordered_c_grid_vs_oracle(instance):
    _grid_matches_baseline(instance, "c")


@given(instance=ordered_instances(max_queries=2))
@settings(max_examples=8, **_SETTINGS)
def test_forced_topk_kernels_bit_exact(instance):
    """LMFAO_FORCE_TOPK=heap and =sort agree with auto, bit for bit."""
    baseline = _oracle_checked_baseline(instance)
    previous = os.environ.get(costmodel.FORCE_TOPK_ENV)
    try:
        for force in ("heap", "sort"):
            os.environ[costmodel.FORCE_TOPK_ENV] = force
            engine = LMFAO(
                instance.db,
                EngineConfig(workers=1, partitions=1, parallel_threshold=0),
            )
            run = engine.run(instance.batch)
            for name, expected in baseline.results.items():
                assert _ranked_or_bag(run.results[name]) == _ranked_or_bag(
                    expected
                ), f"forced {force}: {name} diverged"
    finally:
        if previous is None:
            os.environ.pop(costmodel.FORCE_TOPK_ENV, None)
        else:
            os.environ[costmodel.FORCE_TOPK_ENV] = previous


# ------------------------------------------------------- fixed process grid


def _star_instance(n=3000, seed=13):
    _C = Attribute.categorical
    _F = Attribute.continuous
    rng = np.random.default_rng(seed)
    fact = Relation(
        RelationSchema("Fact", (_C("k"), _C("g"), _C("h"), _F("x"))),
        {
            "k": rng.integers(0, 40, n),
            "g": rng.integers(0, 6, n),
            "h": rng.integers(0, 4, n),
            "x": rng.integers(-4, 9, n).astype(float),
        },
    )
    dim = Relation(
        RelationSchema("Dim", (_C("k"), _C("w"), _F("z"))),
        {
            "k": np.arange(40),
            "w": rng.integers(0, 5, 40),
            "z": rng.integers(1, 6, 40).astype(float),
        },
    )
    db = Database([fact, dim])
    batch = QueryBatch(
        [
            Query(
                "topk_gh",
                group_by=("g", "h"),
                aggregates=(
                    Aggregate((Factor("x", identity),)),
                    Aggregate.count(),
                ),
                order_by=OrderSpec(
                    agg_index=0, descending=True, partition_by=("g",)
                ),
                limit=2,
            ),
            Query(
                "topk_gw",  # carried block: w rides in from Dim
                group_by=("g", "w"),
                aggregates=(Aggregate((Factor("x", identity),)),),
                order_by=OrderSpec(agg_index=0, descending=False),
                limit=3,
            ),
            Query(
                "plain_h",
                group_by=("h",),
                aggregates=(Aggregate.count(),),
            ),
        ]
    )
    return db, batch


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_ordered_process_executor_bit_exact(backend):
    """The multiprocess executor point of the ordered grid."""
    db, batch = _star_instance()
    baseline = LMFAO(
        db, EngineConfig(workers=1, partitions=1, parallel_threshold=0)
    ).run(batch)
    join = db.materialize_join()
    for query in batch:
        if query.is_ordered:
            assert_ordered_equal(
                baseline.results[query.name], ordered_oracle(join, query)
            )
    engine = LMFAO(
        db,
        EngineConfig(
            backend=backend,
            executor="process",
            workers=3,
            partitions=4,
            parallel_threshold=0,
        ),
    )
    try:
        run = engine.run(batch)
        for name, expected in baseline.results.items():
            assert _ranked_or_bag(run.results[name]) == _ranked_or_bag(expected)
    finally:
        engine.close()


def test_ordered_decisions_consistent_under_debug(monkeypatch):
    """Satellite contract: under LMFAO_DEBUG=1 every ordered run records
    its top-k kernel per query inside the producing group's decision
    entry, and decisions/group_times/skipped_groups stay consistent (the
    engine's extended debug asserts run on every execution)."""
    monkeypatch.setenv("LMFAO_DEBUG", "1")
    db, batch = _star_instance(n=800)
    run = LMFAO(db, EngineConfig()).run(batch)
    recorded = {
        name: strategy
        for entry in run.decisions.values()
        for name, strategy in entry.get("topk", {}).items()
    }
    assert set(recorded) == {"topk_gh", "topk_gw"}
    assert set(recorded.values()) <= {
        costmodel.STRATEGY_HEAP,
        costmodel.STRATEGY_SORT,
    }
    assert set(run.decisions) == set(run.group_times)
    assert not set(run.skipped_groups) & set(run.decisions)
