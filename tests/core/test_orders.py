"""Attribute-order heuristic and view bindings."""

import pytest

from repro.core import EngineConfig, LMFAO, ViewGenerator, build_groups
from repro.core.orders import order_group
from repro.jointree import JoinTree
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries
from repro.query import Aggregate, Query, QueryBatch


def _orders_for(db, batch, roots=None):
    tree = JoinTree(db.schema, list(FAVORITA_TREE))
    from repro.jointree import assign_roots

    roots = roots or assign_roots(db, tree, batch)
    view_plan = ViewGenerator(db, tree).generate(batch, roots)
    group_plan = build_groups(view_plan)
    return view_plan, group_plan, [
        order_group(g, view_plan, db) for g in group_plan.groups
    ]


def test_figure3_order(favorita_db):
    _, group_plan, orders = _orders_for(
        favorita_db, example_queries(), EXAMPLE_ROOTS
    )
    index = next(
        i for i, g in enumerate(group_plan.groups) if "Q1" in g.artifact_names
    )
    assert tuple(l.attr for l in orders[index].relation_levels) == (
        "item",
        "date",
        "store",
    )


def test_payload_attributes_excluded(favorita_db):
    """units appears only in factors — never a trie level."""
    _, group_plan, orders = _orders_for(
        favorita_db, example_queries(), EXAMPLE_ROOTS
    )
    for order in orders:
        assert all(l.attr != "units" for l in order.relation_levels)


def test_bindings_cover_incoming_views(favorita_db):
    view_plan, group_plan, orders = _orders_for(
        favorita_db, example_queries(), EXAMPLE_ROOTS
    )
    for group, order in zip(group_plan.groups, orders):
        assert {b.view for b in order.bindings} == set(group.incoming_view_names())
        for binding in order.bindings:
            # key levels are consistent with the level map
            for attr, level in zip(binding.key, binding.key_levels):
                assert order.level_of[attr] == level
            assert binding.bind_level == max(binding.key_levels)


def test_carried_block_created_for_nonlocal_group_by(favorita_db):
    batch = QueryBatch(
        [Query("cc", group_by=("class", "city"), aggregates=(Aggregate.count(),))]
    )
    view_plan, group_plan, orders = _orders_for(favorita_db, batch)
    carried = [cb for order in orders for cb in order.carried_blocks]
    assert carried, "expected at least one carried block"
    for block in carried:
        assert block.carried
        assert block.key


def test_key_attributes_sorted_by_name(favorita_db):
    """Binding keys follow the view's canonical (name-sorted) group-by."""
    _, _, orders = _orders_for(favorita_db, example_queries(), EXAMPLE_ROOTS)
    for order in orders:
        for binding in order.bindings:
            assert list(binding.key) == sorted(binding.key)
