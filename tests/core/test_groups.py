"""Multi-output grouping: acyclicity, ablation, topological order."""

import pytest

from repro.core import EngineConfig, LMFAO, ViewGenerator, build_groups
from repro.core.engine import _topological_order
from repro.jointree import JoinTree
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries


@pytest.fixture()
def view_plan(favorita_db):
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    return ViewGenerator(favorita_db, tree).generate(example_queries(), EXAMPLE_ROOTS)


def test_multi_output_off_gives_one_artifact_per_group(view_plan):
    plan = build_groups(view_plan, multi_output=False)
    assert all(len(g.artifacts) == 1 for g in plan.groups)
    total_artifacts = len(view_plan.views) + len(view_plan.outputs)
    assert plan.num_groups == total_artifacts


def test_grouping_is_acyclic(view_plan):
    plan = build_groups(view_plan)
    # Kahn must consume every group
    order = _topological_order(plan)
    assert len(order) == plan.num_groups
    position = {g: i for i, g in enumerate(order)}
    for consumer, producers in plan.dependencies.items():
        for producer in producers:
            assert position[producer] < position[consumer]


def test_group_incoming_views(view_plan):
    plan = build_groups(view_plan)
    sales_group = next(g for g in plan.groups if "Q1" in g.artifact_names)
    incoming = set(sales_group.incoming_view_names())
    assert len(incoming) == 3  # T, I, H views


def test_group_of_view_lookup(view_plan):
    plan = build_groups(view_plan)
    some_view = next(iter(view_plan.views))
    group = plan.group_of_view(some_view)
    assert some_view in group.artifact_names
    from repro.util.errors import PlanError

    with pytest.raises(PlanError):
        plan.group_of_view("nonexistent")


def test_groups_share_node_scans_when_safe(favorita_db):
    """Multiple compatible outputs at one node land in one group."""
    from repro.query import Aggregate, Query, QueryBatch

    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    batch = QueryBatch(
        [
            Query("a", aggregates=(Aggregate.count(),)),
            Query("b", group_by=("store",), aggregates=(Aggregate.count(),)),
            Query("c", group_by=("item",), aggregates=(Aggregate.sum("units"),)),
        ]
    )
    compiled = engine.compile(batch)
    sales_groups = [
        g
        for g in compiled.group_plan.groups
        if g.node == "Sales" and g.outputs
    ]
    assert len(sales_groups) == 1
    assert len(sales_groups[0].outputs) == 3
