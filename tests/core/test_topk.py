"""Unit tests of the ordered-emission finishing kernels and their knobs.

The differential grids (``test_ordered_grid.py``) anchor end-to-end
correctness; this file pins the pieces in isolation: the four kernels'
pairwise bit-equality on adversarial raw stores, the cost model's
heap-vs-sort choice and its forcing envs, the query-layer validation,
and the ordered accessors on :class:`QueryResult`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import costmodel, topk
from repro.core.runtime import ArrayViewData
from repro.query import Aggregate, Factor, OrderSpec, Query
from repro.query.functions import identity
from repro.util.errors import QueryError

from tests.oracle import rank_reference
from repro.query.query import QueryResult


def _query(group_by, *, agg_index=0, descending=True, partition_by=(), limit=None):
    return Query(
        "Q",
        group_by=group_by,
        aggregates=(Aggregate((Factor("x", identity),)), Aggregate.count()),
        order_by=OrderSpec(
            agg_index=agg_index, descending=descending, partition_by=partition_by
        ),
        limit=limit,
    )


def _columnar(raw: dict, width: int) -> ArrayViewData:
    """An ArrayViewData mirroring ``raw``, as the NumPy backend emits it."""
    data = ArrayViewData(raw)
    keys = list(raw)
    data.key_columns = [
        np.array([k[i] for k in keys]) for i in range(len(keys[0]) if keys else 0)
    ]
    data.value_matrix = np.array(
        [list(raw[k]) for k in keys], dtype=np.float64
    ).reshape(len(keys), width)
    return data


@st.composite
def raw_stores(draw):
    """Random raw group stores with dense keys and heavy value collisions."""
    n = draw(st.integers(0, 40))
    keys = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 4), st.integers(0, 3)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    # values drawn from a tiny domain: ties everywhere, including the
    # all-equal extreme when the domain collapses
    lo = draw(st.integers(0, 2))
    hi = draw(st.integers(lo, lo + draw(st.sampled_from([0, 1, 3]))))
    return {
        k: (float(draw(st.integers(lo, hi))), float(draw(st.integers(1, 3))))
        for k in keys
    }


@given(
    raw=raw_stores(),
    limit=st.sampled_from([None, 0, 1, 2, 5, 100]),
    descending=st.booleans(),
    parts=st.integers(0, 2),
    agg_index=st.integers(0, 1),
)
@settings(max_examples=120, deadline=None)
def test_all_four_kernels_agree(raw, limit, descending, parts, agg_index):
    """dict-heap ≡ dict-sort ≡ columnar-heap ≡ columnar-sort ≡ oracle."""
    group_by = ("a", "b", "c")
    query = _query(
        group_by,
        agg_index=agg_index,
        descending=descending,
        partition_by=group_by[:parts],
        limit=limit,
    )
    outcomes = []
    if limit == 0:
        for raw_variant in (raw, _columnar(raw, 2)):
            assert topk.finish_ordered(query, raw_variant)[0] == {}
        return
    for strategy in ("heap", "sort"):
        finished_dict = (
            topk._finish_dict_heap(query, raw)
            if strategy == "heap"
            else topk._finish_dict_sort(query, raw)
        )
        finished_col = (
            topk._finish_columnar_heap(query, _columnar(raw, 2))
            if strategy == "heap"
            else topk._finish_columnar_sort(query, _columnar(raw, 2))
        )
        outcomes.append(list(finished_dict.items()))
        outcomes.append(list(finished_col.items()))
    assert all(o == outcomes[0] for o in outcomes[1:]), outcomes
    full = QueryResult(query=query, groups={k: v for k, v in raw.items()})
    assert outcomes[0] == list(rank_reference(query, full).groups.items())


def test_finish_ordered_records_cost_model_choice(monkeypatch):
    raw = {(i, j): (float(i * j % 5), 1.0) for i in range(10) for j in range(20)}
    query = _query(("a", "b"), partition_by=("a",), limit=2)
    monkeypatch.delenv(costmodel.FORCE_TOPK_ENV, raising=False)
    monkeypatch.delenv(costmodel.FORCE_STRATEGY_ENV, raising=False)
    _, strategy = topk.finish_ordered(query, raw)
    assert strategy == costmodel.STRATEGY_HEAP  # k=2 of 200 items
    _, strategy = topk.finish_ordered(_query(("a", "b"), limit=None), raw)
    assert strategy == costmodel.STRATEGY_SORT  # unlimited = full sort
    monkeypatch.setenv(costmodel.FORCE_TOPK_ENV, "sort")
    _, strategy = topk.finish_ordered(query, raw)
    assert strategy == costmodel.STRATEGY_SORT


def test_force_strategy_heap_pins_topk_but_not_grouping(monkeypatch):
    """LMFAO_FORCE_STRATEGY=heap: grouping stays auto, top-k forced."""
    monkeypatch.setenv(costmodel.FORCE_STRATEGY_ENV, "heap")
    monkeypatch.delenv(costmodel.FORCE_TOPK_ENV, raising=False)
    assert costmodel.forced_strategy() is None
    assert costmodel.forced_topk() == costmodel.STRATEGY_HEAP
    # the dedicated env takes precedence
    monkeypatch.setenv(costmodel.FORCE_TOPK_ENV, "sort")
    assert costmodel.forced_topk() == costmodel.STRATEGY_SORT
    monkeypatch.setenv(costmodel.FORCE_TOPK_ENV, "bogus")
    with pytest.raises(Exception):
        costmodel.forced_topk()


def test_topk_strategy_thresholds(monkeypatch):
    monkeypatch.delenv(costmodel.FORCE_TOPK_ENV, raising=False)
    monkeypatch.delenv(costmodel.FORCE_STRATEGY_ENV, raising=False)
    assert costmodel.topk_strategy(None, 10_000) == costmodel.STRATEGY_SORT
    assert costmodel.topk_strategy(5, 10_000) == costmodel.STRATEGY_HEAP
    assert costmodel.topk_strategy(9_000, 10_000) == costmodel.STRATEGY_SORT
    # tiny stores never bother with selection
    assert costmodel.topk_strategy(1, 4) == costmodel.STRATEGY_SORT


# --------------------------------------------------------------- query layer


def test_query_validation_rejects_bad_order_specs():
    agg = (Aggregate((Factor("x", identity),)),)
    with pytest.raises(QueryError):
        Query("Q", group_by=("a",), aggregates=agg, limit=3)  # limit w/o order
    with pytest.raises(QueryError):
        Query("Q", aggregates=agg, order_by=OrderSpec())  # scalar ordered
    with pytest.raises(QueryError):
        Query(
            "Q", group_by=("a",), aggregates=agg, order_by=OrderSpec(agg_index=7)
        )
    with pytest.raises(QueryError):
        Query(
            "Q",
            group_by=("a",),
            aggregates=agg,
            order_by=OrderSpec(partition_by=("zzz",)),
        )
    with pytest.raises(QueryError):
        Query(
            "Q", group_by=("a",), aggregates=agg, order_by=OrderSpec(), limit=-1
        )
    with pytest.raises(QueryError):
        OrderSpec(agg_index=-1)
    with pytest.raises(QueryError):
        OrderSpec(partition_by=("a", "a"))


def test_query_repr_and_signature_cover_order():
    q = _query(("a", "b"), partition_by=("a",), limit=5)
    assert "ORDER BY" in repr(q) and "LIMIT 5" in repr(q)
    assert q.is_ordered
    plain = Query("Q", group_by=("a",), aggregates=(Aggregate.count(),))
    assert not plain.is_ordered
    assert OrderSpec(agg_index=1).signature != OrderSpec(agg_index=0).signature


def test_query_result_ranked_and_topk_accessors():
    query = _query(("a", "b"), partition_by=("a",), limit=2)
    groups = {(0, 1): (9.0, 1.0), (0, 2): (5.0, 1.0), (1, 0): (7.0, 2.0)}
    result = QueryResult(query=query, groups=groups)
    assert result.ranked() == list(groups.items())
    assert result.topk(partition=(0,)) == [
        ((0, 1), (9.0, 1.0)),
        ((0, 2), (5.0, 1.0)),
    ]
    assert result.topk(partition=(1,)) == [((1, 0), (7.0, 2.0))]
    plain = QueryResult(
        query=Query("P", group_by=("a",), aggregates=(Aggregate.count(),)),
        groups={(0,): (1.0,)},
    )
    with pytest.raises(QueryError):
        plain.ranked()
