"""View generation: pushdown, merging, factor placement."""

import pytest

from repro.core import EngineConfig, LMFAO, ViewGenerator
from repro.jointree import JoinTree
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Query, QueryBatch
from repro.query.aggregates import Factor
from repro.query.functions import square


@pytest.fixture()
def tree(favorita_db):
    return JoinTree(favorita_db.schema, list(FAVORITA_TREE))


def test_no_merging_keeps_views_separate(favorita_db, tree):
    batch = example_queries()
    roots = {"Q1": "Sales", "Q2": "Sales", "Q3": "Items"}
    merged = ViewGenerator(favorita_db, tree, merge_across_queries=True).generate(
        batch, roots
    )
    separate = ViewGenerator(favorita_db, tree, merge_across_queries=False).generate(
        batch, roots
    )
    assert separate.num_views > merged.num_views
    # unmerged: every query has its own view per edge below its root
    counts = separate.edge_view_counts()
    assert counts[("Holidays", "Sales")] == 3  # one per query


def test_factor_applied_at_highest_node(favorita_db, tree):
    """A factor over a join attribute is applied once, nearest the root."""
    query = Query("q", aggregates=(Aggregate.sum("date", square),))
    plan = ViewGenerator(favorita_db, tree).generate(
        QueryBatch([query]), {"q": "Sales"}
    )
    # date exists in Sales (the root): the factor must sit on the output,
    # not inside any view
    for view in plan.views.values():
        for aggregate in view.aggregates:
            assert all(f.attribute != "date" for f in aggregate.factors)
    output = plan.outputs[0]
    assert any(
        f.attribute == "date" for agg in output.aggregates for f in agg.factors
    )


def test_factor_below_root_is_pushed_into_view(favorita_db, tree):
    query = Query("q", aggregates=(Aggregate.sum("price"),))
    plan = ViewGenerator(favorita_db, tree).generate(
        QueryBatch([query]), {"q": "Sales"}
    )
    oil_views = plan.views_on_edge("Oil", "Transactions")
    assert len(oil_views) == 1
    assert any(
        f.attribute == "price"
        for agg in oil_views[0].aggregates
        for f in agg.factors
    )


def test_group_by_carried_up_through_views(favorita_db, tree):
    """A group-by attribute below the root widens every view on the path."""
    query = Query("q", group_by=("city",), aggregates=(Aggregate.count(),))
    plan = ViewGenerator(favorita_db, tree).generate(
        QueryBatch([query]), {"q": "Sales"}
    )
    by_edge = {(v.source, v.target): v for v in plan.views.values()}
    assert "city" in by_edge[("StoRes", "Transactions")].group_by
    assert "city" in by_edge[("Transactions", "Sales")].group_by


def test_aggregate_dedup_within_merged_view(favorita_db, tree):
    """Two queries with the same subtree partials share one view slot."""
    q1 = Query("a", aggregates=(Aggregate.count(),))
    q2 = Query("b", group_by=("store",), aggregates=(Aggregate.count(),))
    plan = ViewGenerator(favorita_db, tree).generate(
        QueryBatch([q1, q2]), {"a": "Sales", "b": "Sales"}
    )
    for view in plan.views.values():
        assert view.num_aggregates == 1  # identical count partials merged


def test_engine_rejects_unknown_attribute(favorita_db):
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    from repro.util.errors import QueryError

    with pytest.raises(QueryError):
        engine.compile(QueryBatch([Query("bad", group_by=("nope",))]))
