"""Differential bit-exactness of parallel execution on random instances.

The anchor property of the domain-parallel layer: for any tree-shaped
schema, any data and any sum-product batch, every point of the execution
grid ``{python, numpy, c} × {workers} × {partitions}`` must produce
**bit-for-bit** the same result dictionaries as the sequential Python
baseline (``backend="python", workers=1, partitions=1``; non-Python
backends are additionally checked at ``1 × 1``). The generated instances
are integer-valued
(see ``tests/strategies.py``), so float64 arithmetic is exact and
reassociation by partitioning cannot introduce drift — any difference is a
real merge or scheduling bug, never numeric noise.

``parallel_threshold=0`` forces fan-out even on tiny tries, which drags the
corner cases through the merge path: empty relations (empty partitions
cannot exist — ``TrieIndex.partitions`` never returns one — but empty
*tries* take the unsplittable path), single-run level-0 tries, and
partition counts exceeding the run count.

Since the carried-block lowering, the grid also runs **carried plans**
natively on the NumPy backend instead of falling back per group:
``carried_instances`` guarantees a cross-node group-by (hence a carried
block) in every generated batch, and the carried grid test asserts no
silent fallback happened.

The multiprocess executor extends the matrix along a second axis:
``{thread, process} × {python, numpy, c} × partitions``. The process
points run trie partitions in worker processes over shared-memory
segments (:mod:`repro.core.mpexec`) with local-combine-then-tree-reduce
merging — and must still be bit-identical to the sequential Python
baseline, including carried-heavy plans, empty relations and partition
counts exceeding the level-0 run count. Process engines are always
closed so the session-wide shared-memory leak fixture stays green.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO, costmodel
from repro.core.cbackend import gcc_available
from repro.util.errors import CyclicSchemaError

from tests.strategies import carried_instances, instances

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_GRID = [
    (workers, partitions)
    for workers in (1, 4)
    for partitions in (1, 2, 5)
    if (workers, partitions) != (1, 1)
]


def _grid_matches_sequential_python(instance, backend: str) -> None:
    # Pin the baseline to truly sequential execution: the CI parallel leg
    # rewrites EngineConfig *defaults* (see tests/conftest.py), and the
    # anchor property must stay "grid vs sequential", not "grid vs grid".
    try:
        engine = LMFAO(
            instance.db,
            EngineConfig(workers=1, partitions=1, parallel_threshold=0),
        )
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    baseline = engine.execute(engine.compile(instance.batch))

    config = EngineConfig(
        backend=backend, workers=1, partitions=1, parallel_threshold=0
    )
    runner = LMFAO(instance.db, config)
    compiled = runner.compile(instance.batch)
    # for non-Python backends the sequential 1×1 point is itself a
    # cross-backend differential check, so include it in the grid
    grid = _GRID if backend == "python" else [(1, 1), *_GRID]
    for workers, partitions in grid:
        runner.config = replace(config, workers=workers, partitions=partitions)
        run = runner.execute(compiled)
        for name, expected in baseline.results.items():
            got = run.results[name]
            assert got.groups == expected.groups, (
                f"{backend} backend, workers={workers}, partitions={partitions}: "
                f"{name} diverged from the sequential Python baseline"
            )


@given(instance=instances())
@settings(max_examples=25, **_SETTINGS)
def test_python_grid_bit_exact(instance):
    _grid_matches_sequential_python(instance, "python")


@given(instance=instances())
@settings(max_examples=12, **_SETTINGS)
def test_numpy_grid_bit_exact(instance):
    _grid_matches_sequential_python(instance, "numpy")


@pytest.mark.skipif(not gcc_available(), reason="gcc not on PATH")
@given(instance=instances())
@settings(max_examples=8, **_SETTINGS)
def test_c_grid_bit_exact(instance):
    _grid_matches_sequential_python(instance, "c")


@given(instance=carried_instances())
@settings(max_examples=10, **_SETTINGS)
def test_numpy_grid_bit_exact_carried(instance):
    """Carried plans through the whole grid, natively — no fallbacks."""
    _grid_matches_sequential_python(instance, "numpy")
    try:
        compiled = LMFAO(
            instance.db, EngineConfig(backend="numpy")
        ).compile(instance.batch)
    except CyclicSchemaError:  # pragma: no cover - 2-relation star is a tree
        pytest.skip("generated schema had a disconnected join graph")
    assert any(plan.carried_blocks for plan in compiled.plans)
    assert compiled.native_group_count == compiled.num_groups


@pytest.mark.skipif(not gcc_available(), reason="gcc not on PATH")
@given(instance=carried_instances())
@settings(max_examples=5, **_SETTINGS)
def test_c_grid_bit_exact_carried(instance):
    """The C backend still falls back per group on carried plans; the
    grid stays bit-exact through the mixed native/Python execution."""
    _grid_matches_sequential_python(instance, "c")


# ----------------------------------------------------- forced grouping strategy


class _force_strategy:
    """Temporarily pin ``LMFAO_FORCE_STRATEGY`` (restoring any prior value)."""

    def __init__(self, value: str) -> None:
        self.value = value

    def __enter__(self) -> None:
        self.prior = os.environ.get(costmodel.FORCE_STRATEGY_ENV)
        os.environ[costmodel.FORCE_STRATEGY_ENV] = self.value

    def __exit__(self, *exc_info) -> None:
        if self.prior is None:
            os.environ.pop(costmodel.FORCE_STRATEGY_ENV, None)
        else:
            os.environ[costmodel.FORCE_STRATEGY_ENV] = self.prior


def _forced_strategy_grid_bit_exact(instance) -> None:
    """Hash- and sort-based grouping must be interchangeable per emission:
    forcing either one globally, on every backend, partitioned or not,
    yields bit-for-bit the sequential Python baseline. The structural
    argument (order-preserving composite codes + stable sort give both
    paths identical group enumeration) is pinned here empirically."""
    try:
        engine = LMFAO(
            instance.db,
            EngineConfig(workers=1, partitions=1, parallel_threshold=0),
        )
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    with _force_strategy("auto"):
        baseline = engine.execute(engine.compile(instance.batch))

    backends = ["python", "numpy"] + (["c"] if gcc_available() else [])
    for strategy in ("hash", "sort"):
        with _force_strategy(strategy):
            for backend in backends:
                config = EngineConfig(
                    backend=backend, workers=1, partitions=1,
                    parallel_threshold=0, executor="thread",
                )
                runner = LMFAO(instance.db, config)
                compiled = runner.compile(instance.batch)
                for partitions in (1, 4):
                    runner.config = replace(config, partitions=partitions)
                    run = runner.execute(compiled)
                    for name, expected in baseline.results.items():
                        got = run.results[name]
                        assert got.groups == expected.groups, (
                            f"forced {strategy} grouping, {backend} backend, "
                            f"partitions={partitions}: {name} diverged from "
                            f"the sequential baseline"
                        )


@given(instance=instances())
@settings(max_examples=10, **_SETTINGS)
def test_forced_strategy_grid_bit_exact(instance):
    _forced_strategy_grid_bit_exact(instance)


@given(instance=carried_instances())
@settings(max_examples=6, **_SETTINGS)
def test_forced_strategy_grid_bit_exact_carried(instance):
    """Carried-keyed slot groups build their groupers per entry column —
    both strategies must agree there too."""
    _forced_strategy_grid_bit_exact(instance)


def test_forced_strategy_edge_geometries():
    """Deterministic corners through both forced strategies on the NumPy
    backend: an empty relation (zero grouped items), a single-key
    group-by (one group), and a partition count beyond the run count."""
    from repro.data import Attribute, Database, Relation, RelationSchema
    from repro.query import Aggregate, Query, QueryBatch

    C = Attribute.categorical
    batch = QueryBatch(
        [Query("q", group_by=("g",), aggregates=(Aggregate.count(),))]
    )
    for k, g in (
        ([], []),                          # empty relation
        ([1, 1, 2, 2], [3, 3, 3, 3]),      # single group key
        ([1, 1, 2, 2, 3, 3], [0, 1] * 3),  # 3 runs < 4 partitions
    ):
        fact = Relation(RelationSchema("A", (C("k"), C("g"))), {"k": k, "g": g})
        dim = Relation(
            RelationSchema("B", (C("k"), C("w"))),
            {"k": [1, 2, 3], "w": [5, 6, 7]},
        )
        db = Database([fact, dim])
        base = LMFAO(db, EngineConfig(workers=1, partitions=1)).run(batch)
        for strategy in ("hash", "sort"):
            with _force_strategy(strategy):
                run = LMFAO(
                    db,
                    EngineConfig(
                        backend="numpy", workers=1, partitions=4,
                        parallel_threshold=0, executor="thread",
                    ),
                ).run(batch)
            assert run.results["q"].groups == base.results["q"].groups, (
                f"forced {strategy}: k={k!r} g={g!r}"
            )


# ---------------------------------------------------------- process executor

_PROCESS_PARTITIONS = (2, 5)


def _process_grid_matches_sequential_python(instance, backend: str) -> None:
    """Every ``executor="process"`` grid point vs the sequential oracle.

    One 2-worker pool per instance (spawning processes per point would
    dominate the test); the partition axis varies per execute, which is
    how the engine reads it. The engine is closed afterwards so worker
    pools and shared-memory segments never outlive the example.
    """
    try:
        engine = LMFAO(
            instance.db,
            EngineConfig(workers=1, partitions=1, parallel_threshold=0),
        )
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    baseline = engine.execute(engine.compile(instance.batch))

    config = EngineConfig(
        backend=backend, executor="process", workers=2, partitions=2,
        parallel_threshold=0,
    )
    runner = LMFAO(instance.db, config)
    try:
        compiled = runner.compile(instance.batch)
        for partitions in _PROCESS_PARTITIONS:
            runner.config = replace(config, partitions=partitions)
            run = runner.execute(compiled)
            for name, expected in baseline.results.items():
                got = run.results[name]
                assert got.groups == expected.groups, (
                    f"{backend} backend, executor=process, workers=2, "
                    f"partitions={partitions}: {name} diverged from the "
                    f"sequential Python baseline"
                )
    finally:
        runner.close()


@given(instance=instances())
@settings(max_examples=6, **_SETTINGS)
def test_process_python_grid_bit_exact(instance):
    _process_grid_matches_sequential_python(instance, "python")


@given(instance=instances())
@settings(max_examples=4, **_SETTINGS)
def test_process_numpy_grid_bit_exact(instance):
    _process_grid_matches_sequential_python(instance, "numpy")


@pytest.mark.skipif(not gcc_available(), reason="gcc not on PATH")
@given(instance=instances())
@settings(max_examples=3, **_SETTINGS)
def test_process_c_grid_bit_exact(instance):
    """Workers recompile the C groups locally (per-process warm-up)."""
    _process_grid_matches_sequential_python(instance, "c")


@given(instance=carried_instances())
@settings(max_examples=3, **_SETTINGS)
def test_process_numpy_grid_bit_exact_carried(instance):
    """Carried-heavy plans through the multiprocess merge, natively."""
    _process_grid_matches_sequential_python(instance, "numpy")


def test_process_grid_covers_empty_and_unsplittable():
    """Corner geometry under the process executor: an empty relation and a
    single-run level 0 both take the in-process fallback (nothing to
    ship), partition counts beyond the run count clamp — all bit-exact."""
    from repro.data import Attribute, Database, Relation, RelationSchema
    from repro.query import Aggregate, Query, QueryBatch

    C = Attribute.categorical
    batch = QueryBatch(
        [Query("q", group_by=("g",), aggregates=(Aggregate.count(),))]
    )
    for k, g in (
        ([], []),                       # empty relation
        ([1] * 9, [0, 1, 2] * 3),       # single level-0 run
        ([1, 1, 2, 2, 3, 3], [0, 1] * 3),  # 3 runs < 5 partitions
    ):
        fact = Relation(RelationSchema("A", (C("k"), C("g"))), {"k": k, "g": g})
        dim = Relation(
            RelationSchema("B", (C("k"), C("w"))),
            {"k": [1, 2, 3], "w": [5, 6, 7]},
        )
        db = Database([fact, dim])
        base = LMFAO(db, EngineConfig(workers=1, partitions=1)).run(batch)
        with LMFAO(
            db,
            EngineConfig(
                executor="process", workers=4, partitions=5,
                parallel_threshold=0,
            ),
        ) as runner:
            run = runner.run(batch)
        assert run.results["q"].groups == base.results["q"].groups


def test_process_executor_actually_ships_partitions():
    """A splittable trie under ``executor="process"`` really exports a
    shared-memory segment (the offload is not silently falling back)."""
    from repro.data import Attribute, Database, Relation, RelationSchema
    from repro.query import Aggregate, Query, QueryBatch

    C = Attribute.categorical
    fact = Relation(
        RelationSchema("A", (C("k"), C("g"))),
        {"k": [0, 0, 1, 1, 2, 2, 3, 3], "g": [0, 1] * 4},
    )
    db = Database([fact])
    batch = QueryBatch(
        [Query("q", group_by=("g",), aggregates=(Aggregate.count(),))]
    )
    with LMFAO(
        db,
        EngineConfig(
            executor="process", workers=2, partitions=2, parallel_threshold=0
        ),
    ) as runner:
        base = LMFAO(db, EngineConfig()).run(batch)
        run = runner.run(batch)
        assert run.results["q"].groups == base.results["q"].groups
        assert runner._process_executor().segment_names()


def test_grid_covers_single_run_level0():
    """A fact table with a constant join key yields a single level-0 run."""
    from repro.data import Attribute, Database, Relation, RelationSchema
    from repro.query import Aggregate, Query, QueryBatch

    C = Attribute.categorical
    fact = Relation(
        RelationSchema("A", (C("k"), C("g"))),
        {"k": [1] * 12, "g": [0, 1, 2] * 4},
    )
    dim = Relation(RelationSchema("B", (C("k"), C("w"))), {"k": [1, 2], "w": [5, 6]})
    db = Database([fact, dim])
    batch = QueryBatch(
        [Query("q", group_by=("g",), aggregates=(Aggregate.count(),))]
    )
    base = LMFAO(db, EngineConfig(workers=1, partitions=1)).run(batch)
    run = LMFAO(
        db, EngineConfig(workers=4, partitions=4, parallel_threshold=0)
    ).run(batch)
    assert run.results["q"].groups == base.results["q"].groups
    assert run.results["q"].groups != {}
