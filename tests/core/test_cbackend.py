"""C backend: differential equality with the Python backend."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO
from repro.core.cbackend import gcc_available, supports_plan
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries
from repro.util.errors import CyclicSchemaError, PlanError

from tests.helpers import assert_results_equal
from tests.strategies import instances

pytestmark = pytest.mark.skipif(not gcc_available(), reason="gcc not on PATH")


def _compare_backends(db, batch, **config):
    python_run = LMFAO(db, EngineConfig(**config)).run(batch)
    c_run = LMFAO(db, EngineConfig(backend="c", **config)).run(batch)
    for name in python_run.results:
        assert_results_equal(
            c_run.results[name], python_run.results[name], rel_tol=1e-9
        )
    return c_run


def test_paper_example_fully_native(favorita_db):
    run = _compare_backends(
        favorita_db,
        example_queries(),
        join_tree_edges=FAVORITA_TREE,
        root_override=EXAMPLE_ROOTS,
    )
    assert run.compiled.native_group_count == run.compiled.num_groups


def test_covariance_batch_native(favorita_db):
    from repro.ml import covariance_batch
    from repro.ml.features import favorita_features

    batch = covariance_batch(favorita_features(favorita_db))
    run = _compare_backends(favorita_db, batch, join_tree_edges=FAVORITA_TREE)
    # carried-block plans (two-categorical queries) must also be native
    assert run.compiled.native_group_count == run.compiled.num_groups


def test_float_keys_fall_back_to_python(retailer_db):
    """Rk-means-style float group-bys are handled by the Python backend."""
    from repro.query import Aggregate, Query, QueryBatch

    batch = QueryBatch(
        [Query("hist", group_by=("prize",), aggregates=(Aggregate.count(),))]
    )
    run = _compare_backends(retailer_db, batch)
    assert run.compiled.native_group_count < run.compiled.num_groups


def test_where_predicates_native(favorita_db):
    from repro.query import Aggregate, Op, Predicate, Query, QueryBatch

    batch = QueryBatch(
        [
            Query(
                "w",
                group_by=("store",),
                aggregates=(Aggregate.sum("units"),),
                where=(Predicate("promo", Op.EQ, 1.0),),
            )
        ]
    )
    _compare_backends(favorita_db, batch, join_tree_edges=FAVORITA_TREE)


def test_supports_plan_checks_kinds(favorita_db):
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    compiled = engine.compile(example_queries())
    kinds = {
        attr: favorita_db.schema.attribute_kind(attr).value
        for attr in favorita_db.schema.all_attributes
    }
    assert all(supports_plan(plan, kinds) for plan in compiled.plans)
    # degrade one kind: plans touching it must be rejected
    kinds["item"] = "continuous"
    assert not all(supports_plan(plan, kinds) for plan in compiled.plans)


def test_c_sources_kept_for_inspection(favorita_db):
    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, backend="c")
    )
    compiled = engine.compile(example_queries())
    native = [g for g in compiled.native_groups if g is not None]
    assert native
    assert all("int32_t lmfao_run_g" in g.source for g in native)


@given(instance=instances())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_c_backend_matches_python_on_random_instances(instance):
    try:
        _compare_backends(instance.db, instance.batch)
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
