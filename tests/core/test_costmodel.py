"""Unit tests for the cost-based adaptive execution layer.

The model (:mod:`repro.core.costmodel`) treats the config's execution
knobs as advisory upper bounds: partition fan-out is gated on rows *per
partition* and capped at real concurrency, hash emissions may switch to
sort-based grouping, and ``backend="auto"`` picks a backend per group.
These tests pin the decision rules themselves plus the two recorded
regressions the model exists to fix (BENCH_parallel.json: partitions=4
slower than sequential; carried plans stuck on dense-key grouping).
"""

from __future__ import annotations

import pytest

from repro.core import EngineConfig, LMFAO
from repro.core import costmodel
from repro.core.costmodel import (
    MIN_SORT_ITEMS,
    SMALL_TRIE_ROWS,
    TrieStats,
    choose_backend,
    effective_concurrency,
    effective_partitions,
    emission_strategy,
    forced_strategy,
)
from repro.core.plan import Emission, EmissionSlot, KeyPart
from repro.core.runtime import partition_tries
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.data.trie import TrieIndex
from repro.query import Aggregate, Query, QueryBatch
from repro.serve.fingerprint import batch_fingerprint
from repro.util.errors import PlanError

C = Attribute.categorical


@pytest.fixture(autouse=True)
def _unforced_model(monkeypatch):
    """These tests pin the model's *own* rules, so the tests-costmodel CI
    leg's global ``LMFAO_FORCE_STRATEGY`` must not leak in; the override
    behaviour itself is covered explicitly below (and the bit-exactness
    grids in test_parallel_properties.py force both paths)."""
    monkeypatch.delenv(costmodel.FORCE_STRATEGY_ENV, raising=False)


def _single_relation_setup(rows: int = 10_000):
    """A 10k-row single-relation instance: the recorded misplan geometry
    (rows > parallel_threshold, but rows // threshold == 1)."""
    fact = Relation(
        RelationSchema("A", (C("k"), C("g"))),
        {"k": list(range(rows)), "g": [i % 7 for i in range(rows)]},
    )
    db = Database([fact])
    batch = QueryBatch(
        [Query("q", group_by=("g",), aggregates=(Aggregate.count(),))]
    )
    return db, fact, batch


# ------------------------------------------------------------- partitioning


def test_effective_partitions_gates_on_rows_per_partition():
    # the recorded misplan: 10k rows, default 8192 threshold, partitions=4
    # used to split into four ~2.5k-row slices; now it stays sequential.
    assert effective_partitions(10_000, 4, 8192) == 1
    assert effective_partitions(20_000, 4, 8192) == 2
    assert effective_partitions(40_000, 4, 8192) == 4
    assert effective_partitions(1_000_000, 4, 8192) == 4  # capped at config


def test_effective_partitions_zero_threshold_forces_fanout():
    # threshold == 0 is the escape hatch the differential grids pin: full
    # fan-out regardless of rows or concurrency.
    assert effective_partitions(10, 4, 0) == 4
    assert effective_partitions(10, 4, 0, concurrency=1) == 4


def test_effective_partitions_caps_at_concurrency():
    assert effective_partitions(1_000_000, 8, 8192, concurrency=2) == 2
    assert effective_partitions(1_000_000, 8, 8192, concurrency=1) == 1
    assert effective_partitions(1_000_000, 8, 8192, concurrency=16) == 8


def test_effective_partitions_trivial_cases():
    assert effective_partitions(1_000_000, 1, 8192) == 1
    assert effective_partitions(0, 4, 8192) == 1


def test_partition_tries_midsize_trie_runs_unpartitioned():
    """Satellite regression: ``partitions=4`` on a mid-size trie degrades
    to a single partition under the default threshold (rows per partition
    below the gate), while ``threshold=0`` still forces the fan-out."""
    db, fact, batch = _single_relation_setup()
    compiled = LMFAO(db, EngineConfig()).compile(batch)
    plan = compiled.plans[0]
    trie = TrieIndex(fact, plan.order)
    assert plan.partition_safe
    assert len(partition_tries(plan, trie, 4, 8192)) == 1
    assert len(partition_tries(plan, trie, 4, 0)) == 4
    # per-partition gate passes at threshold=2048, but one usable thread
    # means fan-out only adds merge work — the concurrency cap wins.
    assert len(partition_tries(plan, trie, 4, 2048)) == 4
    assert len(partition_tries(plan, trie, 4, 2048, concurrency=1)) == 1


def test_engine_run_records_partition_downgrade():
    """End-to-end over the engine: the run's decision record shows the
    advisory ``partitions=4`` downgraded to 1 on the misplan geometry and
    honoured under the forced-fan-out escape hatch."""
    db, _fact, batch = _single_relation_setup()
    # knobs pinned: the CI legs rewrite EngineConfig defaults
    config = EngineConfig(
        workers=1, partitions=4, parallel_threshold=8192,
        backend="numpy", executor="thread",
    )
    run = LMFAO(db, config).run(batch)
    assert run.decisions
    assert all(d["partitions"] == 1 for d in run.decisions.values())
    forced = LMFAO(
        db,
        EngineConfig(
            workers=1, partitions=4, parallel_threshold=0,
            backend="numpy", executor="thread",
        ),
    ).run(batch)
    assert any(d["partitions"] == 4 for d in forced.decisions.values())
    assert forced.results["q"].groups == run.results["q"].groups


def test_effective_concurrency_gil_and_cores():
    # pure Python under the thread executor is GIL-serialised
    assert effective_concurrency(EngineConfig(workers=8)) == 1
    cores = costmodel.usable_cores()
    assert effective_concurrency(
        EngineConfig(workers=8, backend="numpy")
    ) == min(8, cores)
    assert (
        effective_concurrency(EngineConfig(workers=2, executor="process"))
        == min(2, cores)
    )


# --------------------------------------------------------- emission strategy


def _hash_emission(host_level: int, key_level: int) -> Emission:
    slot = EmissionSlot(
        slot=0,
        level=host_level,
        key_parts=(KeyPart("rel", key_level),),
        key_blocks=(),
        carried_factors=(),
        gamma=None,
        beta=None,
    )
    return Emission(
        artifact="V",
        kind="view",
        width=1,
        group_by=("x",),
        slots=(slot,),
        aligned=False,
    )


def test_emission_strategy_small_inputs_stay_on_hash():
    stats = TrieStats(rows=500, level_runs=(100, MIN_SORT_ITEMS - 1))
    assert emission_strategy(_hash_emission(1, 1), stats) == "hash"


def test_emission_strategy_nearly_unique_keys_sort():
    # no span statistics (None = unbounded): nearly-unique keys sort
    items = 4 * MIN_SORT_ITEMS
    stats = TrieStats(rows=items, level_runs=(items, items))
    assert emission_strategy(_hash_emission(1, 1), stats) == "sort"


def test_emission_strategy_repeating_keys_hash():
    items = 4 * MIN_SORT_ITEMS
    # key lives at level 0 with only 10 distinct runs: heavy repetition
    stats = TrieStats(rows=items, level_runs=(10, items))
    assert emission_strategy(_hash_emission(1, 0), stats) == "hash"


def test_emission_strategy_dense_code_space_stays_on_hash():
    """Nearly-unique keys alone are not enough: while the composite code
    space fits the hash grouper's O(n) presence scan, hash wins — sort
    needs the wide-key regime where hash degrades to a full sort."""
    items = 4 * MIN_SORT_ITEMS
    dense = TrieStats(
        rows=items,
        level_runs=(items, items),
        level_spans=(items, items),  # contiguous ints: span == distinct
    )
    assert emission_strategy(_hash_emission(1, 1), dense) == "hash"
    wide = TrieStats(
        rows=items,
        level_runs=(items, items),
        level_spans=(items, 1_000_000 * items),  # sparse ids
    )
    assert emission_strategy(_hash_emission(1, 1), wide) == "sort"
    floaty = TrieStats(
        rows=items,
        level_runs=(items, items),
        level_spans=(items, None),  # float keys: unbounded space
    )
    assert emission_strategy(_hash_emission(1, 1), floaty) == "sort"


def test_emission_strategy_non_hash_modes_ignore_the_model():
    items = 4 * MIN_SORT_ITEMS
    stats = TrieStats(rows=items, level_runs=(items, items))
    aligned = Emission(
        artifact="V", kind="view", width=1, group_by=("x",),
        slots=_hash_emission(1, 1).slots, aligned=True,
    )
    scalar = Emission(
        artifact="Q", kind="query", width=1, group_by=(),
        slots=_hash_emission(-1, 1).slots, aligned=False,
    )
    assert emission_strategy(aligned, stats) == "hash"
    assert emission_strategy(scalar, stats) == "hash"


def test_forced_strategy_env(monkeypatch):
    monkeypatch.delenv(costmodel.FORCE_STRATEGY_ENV, raising=False)
    assert forced_strategy() is None
    for value, expected in (("hash", "hash"), ("sort", "sort"), ("auto", None)):
        monkeypatch.setenv(costmodel.FORCE_STRATEGY_ENV, value)
        assert forced_strategy() == expected
    monkeypatch.setenv(costmodel.FORCE_STRATEGY_ENV, "bogus")
    with pytest.raises(PlanError, match="LMFAO_FORCE_STRATEGY"):
        forced_strategy()


def test_forced_strategy_overrides_the_model(monkeypatch):
    items = 4 * MIN_SORT_ITEMS
    sorty = TrieStats(rows=items, level_runs=(items, items))
    monkeypatch.setenv(costmodel.FORCE_STRATEGY_ENV, "hash")
    assert emission_strategy(_hash_emission(1, 1), sorty) == "hash"
    monkeypatch.setenv(costmodel.FORCE_STRATEGY_ENV, "sort")
    assert emission_strategy(_hash_emission(1, 1), sorty) == "sort"
    # ... but never touches non-grouping emissions
    scalar = Emission(
        artifact="Q", kind="query", width=1, group_by=(),
        slots=_hash_emission(-1, 1).slots, aligned=False,
    )
    assert emission_strategy(scalar, sorty) == "hash"


def test_run_decisions_pick_sort_for_high_cardinality_group_by():
    """A nearly-unique, *sparse-valued* group-by key on a large trie
    flips its emission to sort-based grouping on the NumPy backend (the
    wide value range pushes the composite code space out of the hash
    grouper's dense presence-scan regime) — and the outputs stay
    bit-identical to the sequential Python baseline."""
    rows = 6000
    fact = Relation(
        RelationSchema("A", (C("k"), C("g"), C("h"))),
        {
            "k": list(range(rows)),
            "g": [((i * 7) % rows) * 1_000_003 for i in range(rows)],
            "h": [((i * 13) % rows) * 1_000_033 for i in range(rows)],
        },
    )
    db = Database([fact])
    batch = QueryBatch([
        Query("q1", group_by=("g",), aggregates=(Aggregate.count(),)),
        Query("q2", group_by=("h",), aggregates=(Aggregate.count(),)),
    ])
    baseline = LMFAO(
        db, EngineConfig(workers=1, partitions=1, backend="python")
    ).run(batch)
    run = LMFAO(
        db,
        EngineConfig(
            workers=1, partitions=1, backend="numpy", executor="thread"
        ),
    ).run(batch)
    chosen = [
        strategy
        for decision in run.decisions.values()
        for strategy in decision["strategies"].values()
    ]
    assert "sort" in chosen, f"expected a sort-grouped emission, got {chosen}"
    for name in ("q1", "q2"):
        assert run.results[name].groups == baseline.results[name].groups


def test_adaptive_off_without_override_is_static_hash():
    db, _fact, batch = _single_relation_setup()
    run = LMFAO(
        db,
        EngineConfig(
            workers=1, partitions=1, backend="numpy",
            executor="thread", adaptive=False,
        ),
    ).run(batch)
    for decision in run.decisions.values():
        assert all(s == "hash" for s in decision["strategies"].values())


# ------------------------------------------------------------ backend choice


def test_choose_backend_thresholds():
    assert choose_backend(SMALL_TRIE_ROWS - 1, has_c=True) == "python"
    assert choose_backend(SMALL_TRIE_ROWS, has_c=True) == "c"
    assert choose_backend(SMALL_TRIE_ROWS, has_c=False) == "numpy"


def test_auto_backend_runs_and_records_choice():
    db, _fact, batch = _single_relation_setup()
    baseline = LMFAO(
        db, EngineConfig(workers=1, partitions=1, backend="python")
    ).run(batch)
    run = LMFAO(
        db,
        EngineConfig(
            workers=1, partitions=1, backend="auto", executor="thread"
        ),
    ).run(batch)
    assert run.results["q"].groups == baseline.results["q"].groups
    assert run.decisions
    for decision in run.decisions.values():
        # 10k rows is past the small-trie cut: a native backend runs it
        assert decision["backend"] in {"numpy", "c"}


def test_auto_backend_validation():
    with pytest.raises(PlanError, match="adaptive"):
        EngineConfig(backend="auto", adaptive=False).validate()
    with pytest.raises(PlanError, match="process"):
        EngineConfig(backend="auto", executor="process").validate()


# ------------------------------------------------------- fingerprint hygiene


def test_strategy_never_enters_structural_fingerprints(monkeypatch):
    """Execution-strategy decisions are re-decided per run; a forced
    strategy override must not shift the serving layer's plan-cache key
    (the config itself, including ``adaptive``, does enter it)."""
    db, _fact, batch = _single_relation_setup(rows=64)
    engine = LMFAO(
        db, EngineConfig(backend="numpy", executor="thread")
    )
    monkeypatch.delenv(costmodel.FORCE_STRATEGY_ENV, raising=False)
    base = batch_fingerprint(batch, engine.tree, engine.config)[0]
    for value in ("hash", "sort", "auto"):
        monkeypatch.setenv(costmodel.FORCE_STRATEGY_ENV, value)
        assert batch_fingerprint(batch, engine.tree, engine.config)[0] == base
    adaptive_off = LMFAO(
        db,
        EngineConfig(backend="numpy", executor="thread", adaptive=False),
    )
    assert (
        batch_fingerprint(batch, adaptive_off.tree, adaptive_off.config)[0]
        != base
    )
