"""Structural invariants of compiled plans on random instances.

Beyond result equality (test_differential), every compiled plan must
satisfy the optimiser's internal contracts: views sit on tree edges with
group-bys covering their separators, groups form a DAG over producing
nodes, and emissions only reference chains that are in scope at their
level.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO
from repro.util.errors import CyclicSchemaError

from tests.strategies import instances

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _compile(instance):
    try:
        engine = LMFAO(instance.db, EngineConfig())
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    return engine, engine.compile(instance.batch)


@given(instance=instances())
@settings(**_SETTINGS)
def test_views_sit_on_edges_and_cover_separators(instance):
    engine, compiled = _compile(instance)
    tree = compiled.tree
    for view in compiled.view_plan.views.values():
        assert view.target in tree.neighbors(view.source)
        separator = set(tree.separator(view.source, view.target))
        assert separator <= set(view.group_by)
        # every group-by attribute exists in the source subtree
        subtree = tree.subtree_attributes(view.source, view.target)
        assert set(view.group_by) <= subtree


@given(instance=instances())
@settings(**_SETTINGS)
def test_group_homes_and_execution_order(instance):
    engine, compiled = _compile(instance)
    produced_at: dict[str, str] = {}
    for group in compiled.group_plan.groups:
        for view in group.views:
            assert view.source == group.node
            produced_at[view.name] = group.name
        for output in group.outputs:
            assert output.node == group.node
    # execution order is a permutation respecting dependencies
    position = {g: i for i, g in enumerate(compiled.execution_order)}
    assert sorted(position) == list(range(compiled.num_groups))
    for consumer, producers in compiled.group_plan.dependencies.items():
        for producer in producers:
            assert position[producer] < position[consumer]


@given(instance=instances())
@settings(**_SETTINGS)
def test_plan_scoping_invariants(instance):
    engine, compiled = _compile(instance)
    for plan in compiled.plans:
        num_rel = len(plan.relation_levels)
        for binding in plan.bindings:
            assert all(0 <= lvl < num_rel for lvl in binding.key_levels)
            assert binding.bind_level == max(binding.key_levels)
        for emission in plan.emissions:
            for slot in emission.slots:
                assert -1 <= slot.level < num_rel
                if slot.gamma is not None:
                    assert plan.gammas[slot.gamma].level <= slot.level
                if slot.beta is not None:
                    node = plan.betas[slot.beta]
                    assert node.reset_level == slot.level
                for part in slot.key_parts:
                    if part.kind == "rel":
                        assert part.level <= slot.level
                    else:
                        assert part.level in {cb.index for cb in plan.carried_blocks}


@given(instance=instances())
@settings(**_SETTINGS)
def test_merging_never_increases_views(instance):
    try:
        merged = LMFAO(instance.db, EngineConfig()).compile(instance.batch)
        unmerged = LMFAO(
            instance.db, EngineConfig(merge_views=False)
        ).compile(instance.batch)
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    assert merged.num_views <= unmerged.num_views
    assert merged.num_groups <= unmerged.num_groups + len(unmerged.view_plan.outputs)


@given(instance=instances())
@settings(**_SETTINGS)
def test_grouping_never_increases_groups(instance):
    try:
        grouped = LMFAO(instance.db, EngineConfig()).compile(instance.batch)
        ungrouped = LMFAO(
            instance.db, EngineConfig(multi_output=False)
        ).compile(instance.batch)
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    assert grouped.num_groups <= ungrouped.num_groups
