"""Snapshot/SnapshotStore unit semantics: sharing, invalidation, installs."""

import pytest

from repro.core import LMFAO, Snapshot, SnapshotStore
from repro.util.errors import PlanError


def test_with_relations_shares_unchanged_state(favorita_db):
    engine = LMFAO(favorita_db)
    base = engine.snapshot()
    from repro.paper import example_queries

    engine.run(example_queries())  # warm some tries
    assert base.tries  # the run populated the pinned snapshot's memo
    sales = favorita_db.relation("Sales")
    successor = base.with_relations({"Sales": sales.concat(sales.row_slice(0, 1))})
    assert successor.version == base.version + 1
    # unchanged relations are the very same objects
    assert successor.db.relation("Items") is base.db.relation("Items")
    # Sales tries invalidated, every other node's tries carried over
    assert all(key[0] != "Sales" for key in successor.tries)
    kept = {k for k in base.tries if k[0] != "Sales"}
    assert kept == set(successor.tries)
    assert all(successor.tries[k] is base.tries[k] for k in kept)
    # the base snapshot itself is untouched
    assert base.version == 0
    assert base.db.relation("Sales") is sales


def test_store_requires_direct_successor(favorita_db):
    engine = LMFAO(favorita_db)
    store = engine._snapshots
    base = store.current()
    v1 = base.with_relations({})
    store.install(v1)
    assert store.current() is v1
    assert engine.snapshot() is v1
    # installing a successor of the *old* base is a lost-update conflict
    stale = base.with_relations({})
    with pytest.raises(PlanError, match="snapshot version conflict"):
        store.install(stale)
    # as is skipping a version
    with pytest.raises(PlanError, match="snapshot version conflict"):
        store.install(Snapshot(version=5, db=favorita_db))
    assert store.current() is v1


def test_store_reads_are_stable_references(favorita_db):
    store = SnapshotStore(Snapshot(version=0, db=favorita_db))
    pinned = store.current()
    store.install(pinned.with_relations({}))
    assert pinned.version == 0  # the pin is unaffected by the install
    assert store.version == 1


# ------------------------------------------------------------ pins and GC
def test_unpinned_superseded_versions_are_collected(favorita_db):
    store = SnapshotStore(Snapshot(version=0, db=favorita_db))
    store.install(store.current().with_relations({}))
    store.install(store.current().with_relations({}))
    # nothing pinned: only the current version is retained
    assert store.retained_versions() == [2]


def test_pinned_version_survives_installs_until_release(favorita_db):
    store = SnapshotStore(Snapshot(version=0, db=favorita_db))
    pinned = store.pin()
    assert pinned.version == 0
    store.install(store.current().with_relations({}))
    store.install(store.current().with_relations({}))
    # v0 is held by the reader; v1 was never pinned and is gone
    assert store.retained_versions() == [0, 2]
    assert store.pinned_versions() == {0: 1}
    store.unpin(0)
    assert store.retained_versions() == [2]
    assert store.pinned_versions() == {}


def test_pins_are_refcounted_and_repinnable(favorita_db):
    store = SnapshotStore(Snapshot(version=0, db=favorita_db))
    first = store.pin()
    store.repin(first)  # a second reader of the same snapshot
    store.install(store.current().with_relations({}))
    store.unpin(0)
    assert store.retained_versions() == [0, 1]  # one reader still holds v0
    store.unpin(0)
    assert store.retained_versions() == [1]


def test_reclaim_hook_fires_outside_the_lock_with_dead_versions(favorita_db):
    store = SnapshotStore(Snapshot(version=0, db=favorita_db))
    reclaimed = []
    store.add_reclaim_hook(
        # re-entering the store from the hook must not deadlock
        lambda v: (reclaimed.append(v), store.retained_versions())
    )
    pinned = store.pin()
    store.install(store.current().with_relations({}))  # v0 pinned: kept
    assert reclaimed == []
    store.install(store.current().with_relations({}))  # v1 unpinned: dies
    assert reclaimed == [1]
    store.unpin(pinned.version)
    assert reclaimed == [1, 0]


def test_engine_run_pins_and_releases(favorita_db):
    engine = LMFAO(favorita_db)
    from repro.paper import example_queries

    engine.run(example_queries())
    assert engine._snapshots.pinned_versions() == {}
    assert engine._snapshots.retained_versions() == [0]
