"""Runtime preparation: binding reshapes and environment validation."""

import numpy as np
import pytest

from repro.core.plan import ViewBinding
from repro.core.runtime import GroupEnvironment, reshape_binding
from repro.util.errors import PlanError


def _binding(key, carried=(), block=None, width=1):
    return ViewBinding(
        view="V",
        num_aggregates=width,
        key=key,
        key_levels=tuple(range(len(key))),
        bind_level=len(key) - 1,
        carried=carried,
        block=block,
    )


def test_scalar_binding_identity():
    data = {1: [2.0], 2: [3.0]}
    binding = _binding(("a",))
    assert reshape_binding(binding, ("a",), data) is data


def test_scalar_binding_reorders_keys():
    data = {(1, 2): [5.0]}
    binding = ViewBinding(
        view="V",
        num_aggregates=1,
        key=("b", "a"),
        key_levels=(0, 1),
        bind_level=1,
        carried=(),
    )
    reshaped = reshape_binding(binding, ("a", "b"), data)
    assert reshaped == {(2, 1): [5.0]}


def test_carried_binding_groups_entries():
    data = {(1, 7): [2.0], (1, 8): [3.0], (2, 7): [4.0]}
    binding = _binding(("a",), carried=("c",), block=0)
    reshaped = reshape_binding(binding, ("a", "c"), data)
    assert set(reshaped) == {1, 2}
    assert sorted(reshaped[1]) == [((7,), [2.0]), ((8,), [3.0])]
    assert reshaped[2] == [((7,), [4.0])]


def test_carried_binding_multi_key():
    data = {(1, 2, 7): [1.0]}
    binding = ViewBinding(
        view="V",
        num_aggregates=1,
        key=("a", "b"),
        key_levels=(0, 1),
        bind_level=1,
        carried=("c",),
        block=0,
    )
    reshaped = reshape_binding(binding, ("a", "b", "c"), data)
    assert reshaped == {(1, 2): [((7,), [1.0])]}


def test_environment_validates_order(favorita_db, favorita_engine):
    from repro.data import TrieIndex
    from repro.paper import example_queries

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings)
    wrong_trie = TrieIndex(favorita_db.relation(plan.node), ())
    with pytest.raises(PlanError):
        GroupEnvironment(
            plan=plan,
            trie=wrong_trie,
            view_data={},
            view_group_by={},
            functions=compiled.functions,
        )


def test_environment_requires_view_data(favorita_db, favorita_engine):
    from repro.data import TrieIndex
    from repro.paper import example_queries

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings)
    trie = TrieIndex(favorita_db.relation(plan.node), plan.order)
    with pytest.raises(PlanError):
        GroupEnvironment(
            plan=plan,
            trie=trie,
            view_data={},  # missing inputs
            view_group_by={},
            functions=compiled.functions,
        )
