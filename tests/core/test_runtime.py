"""Runtime preparation: binding reshapes and environment validation."""

import numpy as np
import pytest

from repro.core.plan import ViewBinding
from repro.core.runtime import GroupEnvironment, reshape_binding
from repro.util.errors import PlanError


def _binding(key, carried=(), block=None, width=1):
    return ViewBinding(
        view="V",
        num_aggregates=width,
        key=key,
        key_levels=tuple(range(len(key))),
        bind_level=len(key) - 1,
        carried=carried,
        block=block,
    )


def test_scalar_binding_identity():
    data = {1: [2.0], 2: [3.0]}
    binding = _binding(("a",))
    assert reshape_binding(binding, ("a",), data) is data


def test_scalar_binding_reorders_keys():
    data = {(1, 2): [5.0]}
    binding = ViewBinding(
        view="V",
        num_aggregates=1,
        key=("b", "a"),
        key_levels=(0, 1),
        bind_level=1,
        carried=(),
    )
    reshaped = reshape_binding(binding, ("a", "b"), data)
    assert reshaped == {(2, 1): [5.0]}


def test_scalar_binding_reorders_three_part_keys():
    """The defensive branch: same attribute set, divergent orders.

    Cannot arise while both sides keep name-sorted keys, but the reshape
    must stay correct if conventions ever diverge — every entry is
    re-keyed by position, values untouched and aliased (no copies).
    """
    data = {(1, 2, 3): [5.0, 6.0], (4, 5, 6): [7.0, 8.0]}
    binding = ViewBinding(
        view="V",
        num_aggregates=2,
        key=("c", "a", "b"),
        key_levels=(0, 1, 2),
        bind_level=2,
        carried=(),
    )
    reshaped = reshape_binding(binding, ("a", "b", "c"), data)
    assert reshaped == {(3, 1, 2): [5.0, 6.0], (6, 4, 5): [7.0, 8.0]}
    assert reshaped[(3, 1, 2)] is data[(1, 2, 3)]


def test_merge_partial_outputs_with_empty_partition():
    """A partition that emitted nothing for an artifact merges as identity.

    Empty *tries* cannot reach the merge (partitions are never empty),
    but a partition can legitimately emit an empty dict — every run under
    it failed a semi-join probe or support guard.
    """
    from repro.core.plan import Emission, MultiOutputPlan, RelationLevel
    from repro.core.runtime import merge_partial_outputs

    plan = MultiOutputPlan(
        group_name="g",
        node="R",
        relation_levels=(RelationLevel(0, "a"),),
        carried_blocks=(),
        bindings=(),
        subsums=(),
        gammas=(),
        betas=(),
        emissions=(
            Emission("Q", "query", 2, ("a",), (), aligned=False),
            Emission("V", "view", 1, ("a",), (), aligned=True),
        ),
        row_products=(),
        level_functions=(),
    )
    partial = [
        {"Q": {1: [1.0, 2.0]}, "V": {5: [1.0]}},
        {"Q": {}, "V": {}},
        {"Q": {1: [0.5, 0.0], 2: [3.0, 1.0]}, "V": {6: [2.0]}},
    ]
    merged = merge_partial_outputs(plan, partial)
    assert merged["Q"] == {1: [1.5, 2.0], 2: [3.0, 1.0]}
    assert merged["V"] == {5: [1.0], 6: [2.0]}
    # inputs untouched (merge builds fresh containers)
    assert partial[0]["Q"] == {1: [1.0, 2.0]}


def test_merge_partial_outputs_aligned_columnar_fast_path():
    """ArrayViewData partials concatenate vectorised, arrays intact."""
    import numpy as np

    from repro.core.plan import Emission, MultiOutputPlan, RelationLevel
    from repro.core.runtime import ArrayViewData, merge_partial_outputs

    plan = MultiOutputPlan(
        group_name="g",
        node="R",
        relation_levels=(RelationLevel(0, "a"),),
        carried_blocks=(),
        bindings=(),
        subsums=(),
        gammas=(),
        betas=(),
        emissions=(Emission("V", "view", 1, ("a",), (), aligned=True),),
        row_products=(),
        level_functions=(),
    )
    parts = [
        ArrayViewData.from_arrays([np.array([1, 2])], np.array([[1.0], [2.0]])),
        ArrayViewData.from_arrays([np.array([], dtype=np.int64)], np.zeros((0, 1))),
        ArrayViewData.from_arrays([np.array([3])], np.array([[4.0]])),
    ]
    merged = merge_partial_outputs(plan, [{"V": p} for p in parts])
    assert merged["V"] == {1: [1.0], 2: [2.0], 3: [4.0]}
    assert isinstance(merged["V"], ArrayViewData) and merged["V"].has_columns
    assert merged["V"].key_columns[0].tolist() == [1, 2, 3]
    # a plain-dict partial disables the columnar fast path but not the merge
    merged = merge_partial_outputs(plan, [{"V": parts[0]}, {"V": {9: [5.0]}}])
    assert merged["V"] == {1: [1.0], 2: [2.0], 9: [5.0]}
    assert not isinstance(merged["V"], ArrayViewData)


def _columnar(keys, rows):
    from repro.core.runtime import ArrayViewData

    return ArrayViewData.from_arrays([np.asarray(keys)], np.asarray(rows, float))


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.__setitem__(9, [9.0]),
        lambda d: d.__delitem__(1),
        lambda d: d.update({9: [9.0]}),
        lambda d: d.__ior__({9: [9.0]}),
        lambda d: d.setdefault(9, [9.0]),
        lambda d: d.pop(1),
        lambda d: d.popitem(),
        lambda d: d.clear(),
    ],
)
def test_array_view_data_mutations_auto_drop_columnar(mutate):
    """Any mutating dict operation invalidates the columnar mirror, so a
    merge path that grows or rewrites entries can never serve stale
    arrays to a columnar consumer (regression: merge paths used to rely
    on callers remembering to call drop_columnar)."""
    data = _columnar([1, 2], [[1.0], [2.0]])
    assert data.has_columns
    mutate(data)
    assert not data.has_columns
    data.check_consistent()  # vacuously true without columns


def test_array_view_data_read_only_ops_keep_columnar():
    data = _columnar([1, 2], [[1.0], [2.0]])
    assert data[1] == [1.0] and data.get(7) is None and len(data) == 2
    assert list(data) == [1, 2] and 2 in data
    data.setdefault(1, [9.0])  # existing key: a read, not a mutation
    assert data.has_columns
    data.check_consistent()


def test_array_view_data_check_consistent_catches_desync():
    """The LMFAO_DEBUG invariant check fails loudly on the one mutation
    interception cannot see: writing through a stored aggregate list."""
    data = _columnar([1, 2], [[1.0], [2.0]])
    data.check_consistent()
    data[1][0] += 5.0  # in-place list write, dict methods never called
    assert data.has_columns  # ...so the arrays are now stale
    with pytest.raises(AssertionError, match="desynchronised"):
        data.check_consistent()


def test_merge_partial_outputs_accumulating_keeps_columnar_sources_intact():
    """The per-key summation path copies first-seen value lists; columnar
    partials come out of the merge unmutated and still consistent."""
    from repro.core.plan import Emission, MultiOutputPlan, RelationLevel
    from repro.core.runtime import ArrayViewData, merge_partial_outputs

    plan = MultiOutputPlan(
        group_name="g",
        node="R",
        relation_levels=(RelationLevel(0, "a"),),
        carried_blocks=(),
        bindings=(),
        subsums=(),
        gammas=(),
        betas=(),
        emissions=(Emission("Q", "query", 1, ("a",), (), aligned=False),),
        row_products=(),
        level_functions=(),
    )
    parts = [_columnar([1, 2], [[1.0], [2.0]]), _columnar([2, 3], [[5.0], [7.0]])]
    merged = merge_partial_outputs(plan, [{"Q": p} for p in parts])
    assert merged["Q"] == {1: [1.0], 2: [7.0], 3: [7.0]}
    assert not isinstance(merged["Q"], ArrayViewData)
    for part in parts:
        assert part.has_columns
        part.check_consistent()


def test_merge_partial_outputs_debug_flags_desynced_partial(monkeypatch):
    """Under LMFAO_DEBUG the merge asserts partials are coherent before
    trusting them."""
    from repro.core.plan import Emission, MultiOutputPlan, RelationLevel
    from repro.core.runtime import merge_partial_outputs

    monkeypatch.setenv("LMFAO_DEBUG", "1")
    plan = MultiOutputPlan(
        group_name="g",
        node="R",
        relation_levels=(RelationLevel(0, "a"),),
        carried_blocks=(),
        bindings=(),
        subsums=(),
        gammas=(),
        betas=(),
        emissions=(Emission("Q", "query", 1, ("a",), (), aligned=False),),
        row_products=(),
        level_functions=(),
    )
    bad = _columnar([1], [[1.0]])
    bad[1][0] = 99.0  # desync through the stored list
    with pytest.raises(AssertionError, match="desynchronised"):
        merge_partial_outputs(plan, [{"Q": bad}, {"Q": {2: [1.0]}}])


def test_carried_binding_groups_entries():
    data = {(1, 7): [2.0], (1, 8): [3.0], (2, 7): [4.0]}
    binding = _binding(("a",), carried=("c",), block=0)
    reshaped = reshape_binding(binding, ("a", "c"), data)
    assert set(reshaped) == {1, 2}
    assert sorted(reshaped[1]) == [((7,), [2.0]), ((8,), [3.0])]
    assert reshaped[2] == [((7,), [4.0])]


def test_carried_binding_multi_key():
    data = {(1, 2, 7): [1.0]}
    binding = ViewBinding(
        view="V",
        num_aggregates=1,
        key=("a", "b"),
        key_levels=(0, 1),
        bind_level=1,
        carried=("c",),
        block=0,
    )
    reshaped = reshape_binding(binding, ("a", "b", "c"), data)
    assert reshaped == {(1, 2): [((7,), [1.0])]}


def test_environment_validates_order(favorita_db, favorita_engine):
    from repro.data import TrieIndex
    from repro.paper import example_queries

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings)
    wrong_trie = TrieIndex(favorita_db.relation(plan.node), ())
    with pytest.raises(PlanError):
        GroupEnvironment(
            plan=plan,
            trie=wrong_trie,
            view_data={},
            view_group_by={},
            functions=compiled.functions,
        )


def test_environment_requires_view_data(favorita_db, favorita_engine):
    from repro.data import TrieIndex
    from repro.paper import example_queries

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings)
    trie = TrieIndex(favorita_db.relation(plan.node), plan.order)
    with pytest.raises(PlanError):
        GroupEnvironment(
            plan=plan,
            trie=trie,
            view_data={},  # missing inputs
            view_group_by={},
            functions=compiled.functions,
        )
