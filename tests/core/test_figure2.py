"""Reproduction of Figure 2: views, merging and the seven groups.

These tests pin the *structure* the paper shows for the running example:
six merged directional views (one per used edge direction), the aggregate
merging inside the Transactions-bound views, and the seven-group dependency
graph.
"""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries


@pytest.fixture()
def compiled(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS),
    )
    return engine.compile(example_queries())


def test_roots_match_paper(compiled):
    assert compiled.roots == EXAMPLE_ROOTS


def test_six_merged_views(compiled):
    """One merged view per used edge direction — Figure 2 (middle)."""
    counts = compiled.view_plan.edge_view_counts()
    assert counts == {
        ("StoRes", "Transactions"): 1,
        ("Oil", "Transactions"): 1,
        ("Transactions", "Sales"): 1,
        ("Items", "Sales"): 1,
        ("Holidays", "Sales"): 1,
        ("Sales", "Items"): 1,
    }


def test_view_group_bys_are_separators_plus_carried(compiled):
    views = {(v.source, v.target): v for v in compiled.view_plan.views.values()}
    assert views[("StoRes", "Transactions")].group_by == ("store",)
    assert views[("Oil", "Transactions")].group_by == ("date",)
    assert views[("Transactions", "Sales")].group_by == ("date", "store")
    assert views[("Items", "Sales")].group_by == ("item",)
    assert views[("Holidays", "Sales")].group_by == ("date",)
    assert views[("Sales", "Items")].group_by == ("item",)


def test_aggregate_merging_in_shared_views(compiled):
    """V_O→T and V_T→S each serve the count (Q1, Q2) and the price sum (Q3)."""
    views = {(v.source, v.target): v for v in compiled.view_plan.views.values()}
    assert views[("Oil", "Transactions")].num_aggregates == 2
    assert views[("Transactions", "Sales")].num_aggregates == 2
    # single-purpose views keep one aggregate
    assert views[("Items", "Sales")].num_aggregates == 1
    assert views[("Holidays", "Sales")].num_aggregates == 1


def test_view_usage_matches_paper(compiled):
    """'Several edges ... only have one view, which is used for all three
    queries' — and V_I→S serves only Q1, Q2; V_S→I only Q3."""
    plan = compiled.view_plan
    by_edge = {(v.source, v.target): v.name for v in plan.views.values()}
    for edge in [
        ("StoRes", "Transactions"),
        ("Oil", "Transactions"),
        ("Transactions", "Sales"),
        ("Holidays", "Sales"),
    ]:
        assert set(plan.queries_using[by_edge[edge]]) == {"Q1", "Q2", "Q3"}
    assert set(plan.queries_using[by_edge[("Items", "Sales")]]) == {"Q1", "Q2"}
    assert set(plan.queries_using[by_edge[("Sales", "Items")]]) == {"Q3"}


def test_seven_groups(compiled):
    """Figure 2 (right): exactly seven groups with the paper's contents."""
    groups = compiled.group_plan.groups
    assert len(groups) == 7
    by_content = {
        frozenset(
            name if name.startswith("Q") else name.split("_", 1)[1]
            for name in g.artifact_names
        )
        for g in groups
    }
    assert frozenset({"Q1", "Q2", "Sales_Items"}) in by_content
    assert frozenset({"Q3"}) in by_content
    assert frozenset({"StoRes_Transactions"}) in by_content


def test_group_dependency_dag(compiled):
    """The dependency edges of Figure 2 (right)."""
    groups = compiled.group_plan.groups
    name_of = {}
    for g in groups:
        for artifact in g.artifact_names:
            name_of[artifact] = g.name
    edges = set(compiled.group_plan.dependency_edges())
    v = {(v.source, v.target): v.name for v in compiled.view_plan.views.values()}
    # the Sales group (Q1, Q2, V_S→I) consumes T, I, H views
    sales_group = name_of["Q1"]
    assert (name_of[v[("Transactions", "Sales")]], sales_group) in edges
    assert (name_of[v[("Items", "Sales")]], sales_group) in edges
    assert (name_of[v[("Holidays", "Sales")]], sales_group) in edges
    # Q3's group consumes V_S→I, which lives in the Sales group
    assert (sales_group, name_of["Q3"]) in edges
    # and the Transactions group consumes StoRes and Oil
    t_group = name_of[v[("Transactions", "Sales")]]
    assert (name_of[v[("StoRes", "Transactions")]], t_group) in edges
    assert (name_of[v[("Oil", "Transactions")]], t_group) in edges


def test_q3_and_v_i_s_are_separated_at_items(compiled):
    """Q3 (consumes V_S→I) and V_I→S (feeds it transitively) must not share
    a group — the acyclicity constraint that yields groups 5 and 7."""
    groups = compiled.group_plan.groups
    for group in groups:
        names = set(group.artifact_names)
        if "Q3" in names:
            assert not any("Items_Sales" in n for n in names)
