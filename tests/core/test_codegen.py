"""Code generation: determinism, options, carried blocks, guards."""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Query, QueryBatch

from tests.helpers import assert_results_equal, oracle


def _compile(db, batch, **config):
    engine = LMFAO(db, EngineConfig(join_tree_edges=FAVORITA_TREE, **config))
    return engine, engine.compile(batch)


def test_codegen_is_deterministic(favorita_db):
    _, first = _compile(favorita_db, example_queries())
    _, second = _compile(favorita_db, example_queries())
    for a, b in zip(first.code, second.code):
        assert a.source == b.source


def test_share_terms_off_still_correct(favorita_db, favorita_join):
    engine, compiled = _compile(
        favorita_db, example_queries(), share_scan_terms=False
    )
    run = engine.execute(compiled)
    for query in example_queries():
        assert_results_equal(run.results[query.name], oracle(favorita_join, query))
    # without sharing, no hoisted term variables are emitted
    sales_source = next(
        c.source for c in compiled.code if "G" in c.plan.group_name and c.plan.node == "Sales"
    )
    assert "t0 =" not in sales_source


def test_carried_block_codegen(favorita_db, favorita_join):
    """Two-categorical query spanning relations exercises carried blocks."""
    query = Query(
        "cc", group_by=("class", "city"), aggregates=(Aggregate.count(),)
    )
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    run = engine.run(QueryBatch([query]))
    assert_results_equal(run.results["cc"], oracle(favorita_join, query))
    plans = run.compiled.plans
    assert any(plan.carried_blocks for plan in plans)


def test_support_guard_emitted_when_chain_descends(favorita_db):
    """V_S→I emits below its chain's anchor, so it must carry a support
    guard (otherwise empty-join keys would appear with value 0)."""
    _, compiled = _compile(favorita_db, example_queries())
    sales_plan = next(p for p in compiled.plans if p.node == "Sales" and p.bindings)
    view_emission = next(e for e in sales_plan.emissions if e.kind == "view")
    assert view_emission.slots[0].support is not None
    index = compiled.plans.index(sales_plan)
    assert "> 0:" in compiled.generated_source(index)


def test_generated_function_has_no_free_variables(favorita_db):
    """The generated source compiles in an empty namespace and only needs
    the env argument."""
    _, compiled = _compile(favorita_db, example_queries())
    for code in compiled.code:
        namespace = {}
        exec(compile(code.source, "<test>", "exec"), namespace)
        assert callable(namespace["_run_group"])


def test_row_products_and_level_functions_recorded(favorita_db):
    batch = QueryBatch(
        [Query("q", aggregates=(Aggregate.sum("units"),))]
    )
    _, compiled = _compile(favorita_db, batch)
    plan = next(p for p in compiled.plans if p.node == "Sales")
    assert (("units", "id"),) in plan.row_products
