"""Engine behaviours: caching, parallelism, config knobs, results."""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch

from tests.helpers import assert_results_equal, oracle


def test_run_results_match_oracle(favorita_db, favorita_engine, favorita_join):
    run = favorita_engine.run(example_queries())
    for query in example_queries():
        assert_results_equal(run.results[query.name], oracle(favorita_join, query))


def test_trie_cache_reused_across_runs(favorita_engine):
    favorita_engine.run(example_queries())
    cached = len(favorita_engine._trie_cache)
    favorita_engine.run(example_queries())
    assert len(favorita_engine._trie_cache) == cached


def test_compile_once_execute_many(favorita_db, favorita_engine):
    compiled = favorita_engine.compile(example_queries())
    first = favorita_engine.execute(compiled)
    second = favorita_engine.execute(compiled)
    for name in first.results:
        assert first.results[name].groups == second.results[name].groups


def test_parallel_workers_agree_with_sequential(favorita_db):
    batch = example_queries()
    sequential = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ).run(batch)
    parallel = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, workers=4)
    ).run(batch)
    for name in sequential.results:
        assert sequential.results[name].groups == parallel.results[name].groups


def test_single_root_ablation_matches(favorita_db, favorita_join):
    batch = example_queries()
    run = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="Sales"),
    ).run(batch)
    for query in batch:
        assert_results_equal(run.results[query.name], oracle(favorita_join, query))
    assert set(run.compiled.roots.values()) == {"Sales"}


def test_single_root_auto_picks_largest(favorita_db):
    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="auto")
    )
    compiled = engine.compile(example_queries())
    assert set(compiled.roots.values()) == {"Sales"}


def test_single_root_unknown_raises(favorita_db):
    from repro.util.errors import PlanError

    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="Nope")
    )
    with pytest.raises(PlanError):
        engine.compile(example_queries())


def test_timings_and_group_times_populated(favorita_engine):
    run = favorita_engine.run(example_queries())
    assert set(run.timings) >= {"compile", "execute", "collect"}
    assert run.total_time > 0
    assert len(run.group_times) == run.compiled.num_groups


def test_generated_source_accessible(favorita_engine):
    compiled = favorita_engine.compile(example_queries())
    for i in range(compiled.num_groups):
        source = compiled.generated_source(i)
        assert source.startswith("# generated multi-output plan")
        assert "def _run_group" in source


def test_pushed_predicates_filter_relations(favorita_db, favorita_join):
    shared = Predicate("promo", Op.EQ, 1.0)
    batch = QueryBatch(
        [
            Query("a", aggregates=(Aggregate.sum("units"),), where=(shared,)),
            Query(
                "b",
                group_by=("store",),
                aggregates=(Aggregate.count(),),
                where=(shared,),
            ),
        ]
    )
    run = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, push_shared_predicates=True),
    ).run(batch)
    assert run.compiled.shared_predicates == (shared,)
    # compare against indicator-mode run: scalar totals must agree
    indicator_run = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ).run(batch)
    assert run.results["a"].scalar() == pytest.approx(
        indicator_run.results["a"].scalar()
    )


def test_empty_batch_query_on_empty_relation():
    """A database whose fact table is empty yields empty grouped results."""
    import numpy as np

    from repro.data import Attribute, Database, Relation, RelationSchema

    C = Attribute.categorical
    r1 = Relation(RelationSchema("A", (C("k"), C("v"))), {"k": [], "v": []})
    r2 = Relation(RelationSchema("B", (C("k"), C("w"))), {"k": [1], "w": [2]})
    db = Database([r1, r2])
    run = LMFAO(db).run(
        QueryBatch([Query("q", group_by=("w",), aggregates=(Aggregate.count(),))])
    )
    assert run.results["q"].groups == {}


def test_scalar_query_on_empty_join_returns_zero():
    from repro.data import Attribute, Database, Relation, RelationSchema

    C = Attribute.categorical
    r1 = Relation(RelationSchema("A", (C("k"),)), {"k": []})
    r2 = Relation(RelationSchema("B", (C("k"),)), {"k": [1]})
    db = Database([r1, r2])
    run = LMFAO(db).run(QueryBatch([Query("q", aggregates=(Aggregate.count(),))]))
    assert run.results["q"].scalar() == 0.0
