"""Engine behaviours: caching, parallelism, config knobs, results."""

import pytest

from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch

from tests.helpers import assert_results_equal, oracle


def test_run_results_match_oracle(favorita_db, favorita_engine, favorita_join):
    run = favorita_engine.run(example_queries())
    for query in example_queries():
        assert_results_equal(run.results[query.name], oracle(favorita_join, query))


def test_trie_cache_reused_across_runs(favorita_engine):
    favorita_engine.run(example_queries())
    cached = len(favorita_engine._trie_cache)
    favorita_engine.run(example_queries())
    assert len(favorita_engine._trie_cache) == cached


def test_compile_once_execute_many(favorita_db, favorita_engine):
    compiled = favorita_engine.compile(example_queries())
    first = favorita_engine.execute(compiled)
    second = favorita_engine.execute(compiled)
    for name in first.results:
        assert first.results[name].groups == second.results[name].groups


def test_parallel_workers_agree_with_sequential(favorita_db):
    batch = example_queries()
    sequential = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ).run(batch)
    parallel = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, workers=4)
    ).run(batch)
    for name in sequential.results:
        assert sequential.results[name].groups == parallel.results[name].groups


def test_partitioned_execution_agrees_with_sequential(favorita_db):
    """Domain parallelism: partitioned runs match the unpartitioned run."""
    batch = example_queries()
    base = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, workers=1, partitions=1),
    ).run(batch)
    for workers in (1, 4):
        for partitions in (2, 5):
            run = LMFAO(
                favorita_db,
                EngineConfig(
                    join_tree_edges=FAVORITA_TREE,
                    workers=workers,
                    partitions=partitions,
                    parallel_threshold=0,
                ),
            ).run(batch)
            for name in base.results:
                assert_results_equal(run.results[name], base.results[name])


def test_partitioned_execution_is_deterministic(favorita_db):
    """Partials merge in partition order: results do not depend on workers."""
    batch = example_queries()
    runs = [
        LMFAO(
            favorita_db,
            EngineConfig(
                join_tree_edges=FAVORITA_TREE,
                workers=workers,
                partitions=3,
                parallel_threshold=0,
            ),
        ).run(batch)
        for workers in (1, 2, 4)
    ]
    for name in runs[0].results:
        for other in runs[1:]:
            assert runs[0].results[name].groups == other.results[name].groups


def test_below_threshold_runs_unpartitioned(favorita_db):
    """Small tries skip fan-out; a huge threshold must equal partitions=1."""
    batch = example_queries()
    base = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, workers=1, partitions=1),
    ).run(batch)
    run = LMFAO(
        favorita_db,
        EngineConfig(
            join_tree_edges=FAVORITA_TREE,
            workers=1,
            partitions=8,
            parallel_threshold=10**9,
        ),
    ).run(batch)
    for name in base.results:
        assert run.results[name].groups == base.results[name].groups


def test_failing_group_propagates_from_parallel_scheduler(favorita_db, monkeypatch):
    """A group exception must surface promptly, not deadlock the wait loop."""
    import repro.core.engine as engine_module

    def boom(*args, **kwargs):
        raise RuntimeError("injected group failure")

    monkeypatch.setattr(engine_module, "execute_plan", boom)
    monkeypatch.setattr(engine_module, "execute_plan_partitioned", boom)
    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, workers=4)
    )
    with pytest.raises(RuntimeError, match="injected group failure"):
        engine.run(example_queries())


def test_failing_prepare_propagates_from_parallel_scheduler(favorita_db, monkeypatch):
    """Failures in the trie/partitioning stage propagate too."""
    def boom(*args, **kwargs):
        raise ValueError("injected prepare failure")

    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, workers=2)
    )
    monkeypatch.setattr(engine, "_trie", boom)
    with pytest.raises(ValueError, match="injected prepare failure"):
        engine.run(example_queries())


@pytest.mark.parametrize(
    "field, value, fragment",
    [
        ("workers", 0, "EngineConfig.workers must be an integer >= 1"),
        ("workers", -3, "EngineConfig.workers must be an integer >= 1"),
        ("partitions", 0, "EngineConfig.partitions must be an integer >= 1"),
        ("partitions", -1, "EngineConfig.partitions must be an integer >= 1"),
        (
            "parallel_threshold",
            -5,
            "EngineConfig.parallel_threshold must be an integer >= 0",
        ),
        ("backend", "rust", "EngineConfig.backend must be one of"),
        ("backend", None, "EngineConfig.backend must be one of"),
    ],
)
def test_execution_config_validation(favorita_db, field, value, fragment):
    """Every validation error names the offending config key and value."""
    from repro.util.errors import PlanError

    with pytest.raises(PlanError, match=fragment) as exc:
        LMFAO(favorita_db, EngineConfig(**{field: value}))
    assert repr(value) in str(exc.value)


def test_single_root_ablation_matches(favorita_db, favorita_join):
    batch = example_queries()
    run = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="Sales"),
    ).run(batch)
    for query in batch:
        assert_results_equal(run.results[query.name], oracle(favorita_join, query))
    assert set(run.compiled.roots.values()) == {"Sales"}


def test_single_root_auto_picks_largest(favorita_db):
    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="auto")
    )
    compiled = engine.compile(example_queries())
    assert set(compiled.roots.values()) == {"Sales"}


def test_single_root_unknown_raises(favorita_db):
    from repro.util.errors import PlanError

    engine = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="Nope")
    )
    with pytest.raises(PlanError, match=r"EngineConfig\.single_root 'Nope'"):
        engine.compile(example_queries())


def test_timings_and_group_times_populated(favorita_engine):
    run = favorita_engine.run(example_queries())
    assert set(run.timings) >= {"compile", "execute", "collect"}
    assert run.total_time > 0
    assert len(run.group_times) == run.compiled.num_groups


def test_generated_source_accessible(favorita_engine):
    compiled = favorita_engine.compile(example_queries())
    for i in range(compiled.num_groups):
        source = compiled.generated_source(i)
        assert source.startswith("# generated multi-output plan")
        assert "def _run_group" in source


def test_pushed_predicates_filter_relations(favorita_db, favorita_join):
    shared = Predicate("promo", Op.EQ, 1.0)
    batch = QueryBatch(
        [
            Query("a", aggregates=(Aggregate.sum("units"),), where=(shared,)),
            Query(
                "b",
                group_by=("store",),
                aggregates=(Aggregate.count(),),
                where=(shared,),
            ),
        ]
    )
    run = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, push_shared_predicates=True),
    ).run(batch)
    assert run.compiled.shared_predicates == (shared,)
    # compare against indicator-mode run: scalar totals must agree
    indicator_run = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ).run(batch)
    assert run.results["a"].scalar() == pytest.approx(
        indicator_run.results["a"].scalar()
    )


def test_empty_batch_query_on_empty_relation():
    """A database whose fact table is empty yields empty grouped results."""
    import numpy as np

    from repro.data import Attribute, Database, Relation, RelationSchema

    C = Attribute.categorical
    r1 = Relation(RelationSchema("A", (C("k"), C("v"))), {"k": [], "v": []})
    r2 = Relation(RelationSchema("B", (C("k"), C("w"))), {"k": [1], "w": [2]})
    db = Database([r1, r2])
    run = LMFAO(db).run(
        QueryBatch([Query("q", group_by=("w",), aggregates=(Aggregate.count(),))])
    )
    assert run.results["q"].groups == {}


def test_scalar_query_on_empty_join_returns_zero():
    from repro.data import Attribute, Database, Relation, RelationSchema

    C = Attribute.categorical
    r1 = Relation(RelationSchema("A", (C("k"),)), {"k": []})
    r2 = Relation(RelationSchema("B", (C("k"),)), {"k": [1]})
    db = Database([r1, r2])
    run = LMFAO(db).run(QueryBatch([Query("q", aggregates=(Aggregate.count(),))]))
    assert run.results["q"].scalar() == 0.0
