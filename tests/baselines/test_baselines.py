"""Baselines agree with the engine (and define the oracle semantics)."""

import pytest

from repro.baselines import MaterializedPipeline, SqlEngineBaseline
from repro.core import EngineConfig, LMFAO
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch

from tests.helpers import assert_results_equal, drop_zero_groups


def test_sql_engine_matches_materialized(favorita_db):
    batch = example_queries()
    sql = SqlEngineBaseline(favorita_db).run(batch)
    mat = MaterializedPipeline(favorita_db).run(batch)
    for name in sql:
        assert_results_equal(sql[name], mat[name])


def test_baselines_match_engine(favorita_db):
    batch = example_queries()
    engine_run = LMFAO(
        favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE)
    ).run(batch)
    sql = SqlEngineBaseline(favorita_db).run(batch)
    for name in sql:
        assert_results_equal(engine_run.results[name], sql[name])


def test_where_modes_differ_only_in_zero_groups(favorita_db):
    query = Query(
        "q",
        group_by=("store",),
        aggregates=(Aggregate.count(),),
        where=(Predicate("promo", Op.EQ, 1.0),),
    )
    indicator = MaterializedPipeline(favorita_db, where_mode="indicator").run_query(query)
    filtered = MaterializedPipeline(favorita_db, where_mode="filter").run_query(query)
    assert_results_equal(drop_zero_groups(indicator), filtered)


def test_materialized_join_cached(favorita_db):
    pipeline = MaterializedPipeline(favorita_db)
    first = pipeline.join
    second = pipeline.join
    assert first is second
    assert pipeline.materialize_seconds >= 0.0


def test_design_matrix_shape(favorita_db):
    pipeline = MaterializedPipeline(favorita_db)
    matrix = pipeline.design_matrix(("units", "txns"))
    assert matrix.shape == (pipeline.join.num_rows, 2)


def test_sql_engine_projection_keeps_join_attrs(favorita_db):
    """Projection pushdown must not change join multiplicities."""
    baseline = SqlEngineBaseline(favorita_db)
    q_count = Query("n", aggregates=(Aggregate.count(),))
    expected = favorita_db.materialize_join().num_rows
    assert baseline.run_query(q_count).scalar() == expected


def test_filter_mode_scalar_empty():
    import numpy as np

    from repro.data import Attribute, Database, Relation, RelationSchema

    C = Attribute.categorical
    rel = Relation(RelationSchema("A", (C("k"),)), {"k": [1, 2]})
    db = Database([rel])
    query = Query(
        "q", aggregates=(Aggregate.count(),), where=(Predicate("k", Op.GT, 5),)
    )
    result = SqlEngineBaseline(db, where_mode="filter").run_query(query)
    assert result.groups[()] == (0.0,)
