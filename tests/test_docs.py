"""Project documentation: content coverage, live docstring examples, and
link integrity (the CI docs leg runs exactly this module)."""

import doctest
import re
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]

def _doc_files():
    return [_ROOT / "README.md", *sorted((_ROOT / "docs").glob("*.md"))]


def test_readme_is_substantial():
    readme = _ROOT / "README.md"
    assert readme.is_file()
    text = readme.read_text()
    assert len(text) >= 2000
    for required in ("Quickstart", "incremental", "backend", "pytest"):
        assert required.lower() in text.lower(), required


def test_architecture_doc_maps_paper_and_delta_flow():
    doc = _ROOT / "docs" / "architecture.md"
    assert doc.is_file()
    text = doc.read_text()
    for required in (
        "viewgen",
        "Figure 2",
        "Figure 3",
        "incremental",
        "delta",
        "cutoff",
    ):
        assert required.lower() in text.lower(), required


def test_readme_mentions_every_example():
    text = (_ROOT / "README.md").read_text() + (
        _ROOT / "docs" / "architecture.md"
    ).read_text()
    assert "incremental_updates.py" in text
    assert "quickstart.py" in text


def test_ci_workflow_runs_tier1():
    workflow = _ROOT / ".github" / "workflows" / "ci.yml"
    assert workflow.is_file()
    text = workflow.read_text()
    assert "python -m pytest -x -q" in text
    assert "README.md" in text


def test_docs_cover_parallel_execution():
    arch = (_ROOT / "docs" / "architecture.md").read_text()
    for required in (
        "Parallel execution",
        "task",
        "domain",
        "partitions",
        "merge",
        "bit-exact",
    ):
        assert required.lower() in arch.lower(), required
    readme = (_ROOT / "README.md").read_text()
    for required in ("workers", "partitions", "parallel_threshold"):
        assert required in readme, required


def test_ci_has_parallel_leg_and_bench_artifact():
    text = (_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "LMFAO_TEST_WORKERS" in text
    assert "LMFAO_TEST_PARTITIONS" in text
    assert "bench_parallel.py" in text
    assert "BENCH_parallel.json" in text


# ------------------------------------------------------------- serving docs
def test_serving_doc_specifies_the_three_contracts():
    doc = _ROOT / "docs" / "serving.md"
    assert doc.is_file()
    text = doc.read_text()
    for required in (
        "Plan-cache keying rules",
        "placeholder",
        "Snapshot lifecycle",
        "install",
        "Concurrency contract",
        "coalesc",          # coalesce/coalescing
        "Worked example",
        "snapshot_version",
        "bit-exact",
    ):
        assert required.lower() in text.lower(), required


def test_serving_doc_is_linked_from_readme_and_architecture():
    assert "docs/serving.md" in (_ROOT / "README.md").read_text()
    assert "serving.md" in (_ROOT / "docs" / "architecture.md").read_text()


def test_architecture_has_the_five_layer_stack():
    text = (_ROOT / "docs" / "architecture.md").read_text()
    for required in (
        "VIEW GENERATION",
        "GROUPS & ORDERS",
        "DECOMPOSITION",
        "CODE GENERATION",
        "SERVING",
        "INCREMENTAL MAINTENANCE",
        "numpy",
        "plan cache",
        "snapshot",
    ):
        assert required.lower() in text.lower(), required


def test_readme_mentions_serving_example():
    assert "serving_concurrent.py" in (_ROOT / "README.md").read_text()


def test_ci_has_docs_leg_and_serving_bench():
    text = (_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "tests/test_docs.py" in text
    assert "bench_serving.py" in text
    assert "BENCH_serving.json" in text


# ------------------------------------------------- docstring examples (live)
def test_docstring_examples_execute():
    """The Examples sections of the audited core/serve docstrings run.

    ``EngineConfig`` (validation rules) and ``AggregateServer`` (cache
    hits, async submission) carry doctests; executing them here keeps
    the documented behaviour honest — a drifting error message or stats
    counter fails the docs leg, not a user.
    """
    import repro.core.engine
    import repro.serve.server

    for module in (repro.core.engine, repro.serve.server):
        result = doctest.testmod(
            module, optionflags=doctest.ELLIPSIS, verbose=False
        )
        assert result.attempted > 0, f"{module.__name__}: no doctests found"
        assert result.failed == 0, (
            f"{module.__name__}: {result.failed} doctest(s) failed"
        )


# ------------------------------------------------------------ link integrity
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_PATH = re.compile(r"`([A-Za-z0-9_][A-Za-z0-9_./-]*\.(?:py|md|yml|json))`")


def _anchor_slugs(text: str) -> set:
    """GitHub-style anchor slugs of every heading in a markdown file."""
    slugs = set()
    for heading in re.findall(r"^#+\s+(.*)$", text, re.MULTILINE):
        slug = re.sub(r"[`*_~]", "", heading.strip().lower())
        slug = re.sub(r"[^\w\- ]", "", slug)
        slugs.add(slug.replace(" ", "-"))
    return slugs


def test_no_dangling_markdown_links_or_anchors():
    """Every relative markdown link resolves to a real file, and every
    ``#anchor`` into a markdown file matches one of its headings."""
    for doc in _doc_files():
        text = doc.read_text()
        for target in _MD_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                if target.startswith("#"):
                    assert target[1:] in _anchor_slugs(text), (
                        f"{doc.name}: dangling anchor {target}"
                    )
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve()
            assert resolved.exists(), f"{doc.name}: dangling link {target}"
            if anchor and resolved.suffix == ".md":
                assert anchor in _anchor_slugs(resolved.read_text()), (
                    f"{doc.name}: dangling anchor {target}"
                )


def test_no_dangling_file_references():
    """Backticked file paths in the docs point at files that exist (in the
    repo root, under src/, under src/repro/, or next to the doc) — stale
    references to renamed modules fail here. Bare filenames without a
    directory (e.g. `engine.py` inside a module-map table row) are
    contextual and skipped."""
    roots = [_ROOT, _ROOT / "src", _ROOT / "src" / "repro"]
    for doc in _doc_files():
        for ref in _CODE_PATH.findall(doc.read_text()):
            if "/" not in ref:
                continue
            candidates = [root / ref for root in [*roots, doc.parent]]
            assert any(c.exists() for c in candidates), (
                f"{doc.name}: reference to missing file `{ref}`"
            )
