"""Project documentation exists and is non-trivial (mirrors the CI check)."""

from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]


def test_readme_is_substantial():
    readme = _ROOT / "README.md"
    assert readme.is_file()
    text = readme.read_text()
    assert len(text) >= 2000
    for required in ("Quickstart", "incremental", "backend", "pytest"):
        assert required.lower() in text.lower(), required


def test_architecture_doc_maps_paper_and_delta_flow():
    doc = _ROOT / "docs" / "architecture.md"
    assert doc.is_file()
    text = doc.read_text()
    for required in (
        "viewgen",
        "Figure 2",
        "Figure 3",
        "incremental",
        "delta",
        "cutoff",
    ):
        assert required.lower() in text.lower(), required


def test_readme_mentions_every_example():
    text = (_ROOT / "README.md").read_text() + (
        _ROOT / "docs" / "architecture.md"
    ).read_text()
    assert "incremental_updates.py" in text
    assert "quickstart.py" in text


def test_ci_workflow_runs_tier1():
    workflow = _ROOT / ".github" / "workflows" / "ci.yml"
    assert workflow.is_file()
    text = workflow.read_text()
    assert "python -m pytest -x -q" in text
    assert "README.md" in text


def test_docs_cover_parallel_execution():
    arch = (_ROOT / "docs" / "architecture.md").read_text()
    for required in (
        "Parallel execution",
        "task",
        "domain",
        "partitions",
        "merge",
        "bit-exact",
    ):
        assert required.lower() in arch.lower(), required
    readme = (_ROOT / "README.md").read_text()
    for required in ("workers", "partitions", "parallel_threshold"):
        assert required in readme, required


def test_ci_has_parallel_leg_and_bench_artifact():
    text = (_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "LMFAO_TEST_WORKERS" in text
    assert "LMFAO_TEST_PARTITIONS" in text
    assert "bench_parallel.py" in text
    assert "BENCH_parallel.json" in text
