"""Every example script runs end to end at tiny scale."""

import runpy
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", (0.04,)),
        ("linear_regression_retailer.py", (0.05,)),
        ("decision_tree_favorita.py", (0.05,)),
        ("rkmeans_clustering.py", (0.05, 3)),
        ("demo_walkthrough.py", (0.04,)),
        ("aggregate_cube.py", (0.04,)),
        ("incremental_updates.py", (0.05,)),
        ("serving_concurrent.py", (0.04, 4, 2)),
        ("leaderboard.py", (0.05,)),
    ],
)
def test_example_runs(script, args, capsys):
    module = runpy.run_path(str(_EXAMPLES / script))
    module["main"](*args)
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
