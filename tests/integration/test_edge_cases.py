"""Degenerate inputs and failure injection."""

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import Attribute, Database, Relation, RelationSchema
from repro.query import Aggregate, Op, Predicate, Query, QueryBatch
from repro.util.errors import PlanError, QueryError

C = Attribute.categorical
F = Attribute.continuous


def _single_relation_db():
    rel = Relation(
        RelationSchema("R", (C("a"), C("b"), F("x"))),
        {"a": [1, 1, 2, 2], "b": [1, 2, 1, 2], "x": [1.0, 2.0, 3.0, 4.0]},
    )
    return Database([rel])


def test_single_relation_database():
    """No join tree edges, no views — pure multi-output over one relation."""
    db = _single_relation_db()
    run = LMFAO(db).run(
        QueryBatch(
            [
                Query("total", aggregates=(Aggregate.sum("x"),)),
                Query("by_a", group_by=("a",), aggregates=(Aggregate.count(),)),
                Query("by_ab", group_by=("a", "b"), aggregates=(Aggregate.sum("x"),)),
            ]
        )
    )
    assert run.compiled.num_views == 0
    assert run.results["total"].scalar() == 10.0
    assert run.results["by_a"].groups == {(1,): (2.0,), (2,): (2.0,)}
    assert run.results["by_ab"].groups[(2, 2)] == (4.0,)


def test_where_eliminates_everything():
    db = _single_relation_db()
    run = LMFAO(db).run(
        QueryBatch(
            [
                Query(
                    "none",
                    group_by=("a",),
                    aggregates=(Aggregate.sum("x"),),
                    where=(Predicate("x", Op.GT, 100.0),),
                )
            ]
        )
    )
    # indicator semantics: groups survive with zeroed sums
    assert all(v == (0.0,) for v in run.results["none"].groups.values())


def test_group_by_whole_key_one_row_per_group():
    db = _single_relation_db()
    run = LMFAO(db).run(
        QueryBatch(
            [Query("q", group_by=("a", "b"), aggregates=(Aggregate.count(),))]
        )
    )
    assert all(v == (1.0,) for v in run.results["q"].groups.values())
    assert len(run.results["q"].groups) == 4


def test_duplicate_heavy_data():
    """All rows identical: one run per level, counts carry multiplicity."""
    rel = Relation(
        RelationSchema("R", (C("a"), F("x"))),
        {"a": np.ones(50, dtype=np.int64), "x": np.full(50, 2.0)},
    )
    db = Database([rel])
    run = LMFAO(db).run(
        QueryBatch([Query("q", group_by=("a",), aggregates=(Aggregate.sum("x"),))])
    )
    assert run.results["q"].groups == {(1,): (100.0,)}


def test_unknown_backend_is_rejected(favorita_db):
    from repro.paper import example_queries

    # rejected up front, at engine construction …
    with pytest.raises(PlanError):
        LMFAO(favorita_db, EngineConfig(backend="rust"))
    # … and again at compile time if the config was swapped afterwards
    engine = LMFAO(favorita_db, EngineConfig())
    engine.config = EngineConfig(backend="rust")
    with pytest.raises(PlanError):
        engine.compile(example_queries())


def test_missing_view_data_raises(favorita_db, favorita_engine):
    """Executing a group without its inputs is an internal error, loudly."""
    from repro.core.runtime import GroupEnvironment
    from repro.data import TrieIndex
    from repro.paper import example_queries

    compiled = favorita_engine.compile(example_queries())
    plan = next(p for p in compiled.plans if p.bindings)
    trie = TrieIndex(favorita_db.relation(plan.node), plan.order)
    with pytest.raises(PlanError):
        GroupEnvironment(
            plan=plan,
            trie=trie,
            view_data={},
            view_group_by={},
            functions=compiled.functions,
        )


def test_batch_with_hundreds_of_scalar_aggregates():
    """Wide merged views: hundreds of aggregates through one group."""
    db = _single_relation_db()
    from repro.query.aggregates import Factor

    queries = [
        Query(
            f"q{i}",
            aggregates=(Aggregate.sum("x").with_factor(Factor("a")),),
            where=(Predicate("x", Op.LE, float(i)),),
        )
        for i in range(150)
    ]
    run = LMFAO(db).run(QueryBatch(queries))
    # q4 and beyond see all rows: sum(a*x) = 1+2+6+8 = 17
    assert run.results["q149"].scalar() == 17.0
    assert run.results["q0"].scalar() == 0.0
