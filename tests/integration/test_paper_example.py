"""End-to-end Section 2 example: results, sharing, and inspection output."""

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.inspect import (
    describe_compiled_batch,
    render_dependency_dot,
    render_group_graph,
    render_join_tree,
    render_view_list,
)
from repro.paper import EXAMPLE_ROOTS, FAVORITA_TREE, example_queries, g, h

from tests.helpers import assert_results_equal, oracle


@pytest.fixture()
def run(favorita_db):
    engine = LMFAO(
        favorita_db,
        EngineConfig(join_tree_edges=FAVORITA_TREE, root_override=EXAMPLE_ROOTS),
    )
    return engine.run(example_queries())


def test_q1_totals(favorita_db, favorita_join, run):
    assert run.results["Q1"].scalar() == pytest.approx(
        float(favorita_join.column("units").sum())
    )


def test_q2_grouped_udf_sums(favorita_join, run):
    expected = {}
    values = g(favorita_join.column("item")) * h(favorita_join.column("date"))
    for store, value in zip(favorita_join.column("store").tolist(), values):
        expected[store] = expected.get(store, 0.0) + value
    actual = {key[0]: vals[0] for key, vals in run.results["Q2"].groups.items()}
    assert set(actual) == set(expected)
    for store in expected:
        assert actual[store] == pytest.approx(expected[store])


def test_q3_class_sums(favorita_db, favorita_join, run):
    for query in example_queries():
        if query.name == "Q3":
            assert_results_equal(run.results["Q3"], oracle(favorita_join, query))


def test_all_ablations_agree_on_example(favorita_db, favorita_join):
    batch = example_queries()
    reference = None
    configs = [
        EngineConfig(join_tree_edges=FAVORITA_TREE),
        EngineConfig(join_tree_edges=FAVORITA_TREE, merge_views=False),
        EngineConfig(join_tree_edges=FAVORITA_TREE, multi_output=False),
        EngineConfig(join_tree_edges=FAVORITA_TREE, factorize=False),
        EngineConfig(join_tree_edges=FAVORITA_TREE, single_root="auto"),
        EngineConfig(),  # heuristic join tree instead of the paper's
    ]
    for config in configs:
        run = LMFAO(favorita_db, config).run(batch)
        if reference is None:
            reference = run
            for query in batch:
                assert_results_equal(
                    run.results[query.name], oracle(favorita_join, query)
                )
        else:
            for name in reference.results:
                assert_results_equal(run.results[name], reference.results[name])


def test_inspection_renders(favorita_db, run):
    compiled = run.compiled
    tree_text = render_join_tree(compiled.tree, compiled.view_plan)
    assert "Sales" in tree_text and "Transactions" in tree_text
    views_text = render_view_list(compiled.view_plan)
    assert "group by" in views_text
    sales_only = render_view_list(compiled.view_plan, node="Sales")
    assert "Q1" in sales_only
    groups_text = render_group_graph(compiled.group_plan)
    assert "depends on" in groups_text
    dot = render_dependency_dot(compiled.group_plan)
    assert dot.startswith("digraph") and "->" in dot
    report = describe_compiled_batch(compiled)
    assert "Join tree" in report and "generated lines" in report
