"""The correctness anchor: LMFAO == brute force on random instances.

Hypothesis generates tree-shaped databases and sum-product batches; the
engine (in several configurations, including every ablation) must agree
exactly with evaluation over the materialised join.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import EngineConfig, LMFAO
from repro.util.errors import CyclicSchemaError

from tests.helpers import assert_results_equal, oracle
from tests.strategies import instances

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _check(instance, config: EngineConfig) -> None:
    try:
        engine = LMFAO(instance.db, config)
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    run = engine.run(instance.batch)
    join = instance.db.materialize_join()
    for query in instance.batch:
        assert_results_equal(run.results[query.name], oracle(join, query))


@given(instance=instances())
@settings(**_SETTINGS)
def test_engine_matches_oracle(instance):
    _check(instance, EngineConfig())


@given(instance=instances())
@settings(**_SETTINGS)
def test_engine_without_view_merging(instance):
    _check(instance, EngineConfig(merge_views=False))


@given(instance=instances())
@settings(**_SETTINGS)
def test_engine_without_multi_output(instance):
    _check(instance, EngineConfig(multi_output=False))


@given(instance=instances())
@settings(**_SETTINGS)
def test_engine_without_factorization(instance):
    _check(instance, EngineConfig(factorize=False))


@given(instance=instances())
@settings(**_SETTINGS)
def test_engine_single_root(instance):
    _check(instance, EngineConfig(single_root="auto"))


@given(instance=instances())
@settings(**_SETTINGS)
def test_engine_with_pushed_shared_predicates(instance):
    """Pushed shared predicates use SQL filter semantics: groups with no
    qualifying join rows disappear instead of appearing zeroed. The oracle
    therefore filters the join by the shared predicates first and folds
    only the per-query remainder as indicators."""
    import dataclasses

    import numpy as np

    try:
        engine = LMFAO(instance.db, EngineConfig(push_shared_predicates=True))
    except CyclicSchemaError:
        pytest.skip("generated schema had a disconnected join graph")
    run = engine.run(instance.batch)
    join = instance.db.materialize_join()
    shared = instance.batch.shared_predicates()
    shared_sigs = {p.signature for p in shared}
    if shared:
        mask = np.ones(join.num_rows, dtype=bool)
        for predicate in shared:
            mask &= predicate.evaluate(join.column(predicate.attribute))
        join = join.filter(mask)
    for query in instance.batch:
        remainder = tuple(
            p for p in query.where if p.signature not in shared_sigs
        )
        reduced = dataclasses.replace(query, where=remainder)
        expected = oracle(join, reduced)
        assert_results_equal(run.results[query.name], expected)


@given(instance=instances())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_engine_all_optimisations_off(instance):
    _check(
        instance,
        EngineConfig(
            merge_views=False,
            multi_output=False,
            factorize=False,
            share_scan_terms=False,
            single_root="auto",
        ),
    )
