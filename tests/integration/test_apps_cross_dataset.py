"""All three applications run on both datasets (smoke + invariants)."""

import numpy as np
import pytest

from repro.core import EngineConfig, LMFAO
from repro.ml import (
    CartConfig,
    RegressionTree,
    rk_means,
    train_linear_regression,
)
from repro.ml.features import favorita_features, retailer_features
from repro.paper import FAVORITA_TREE


@pytest.mark.parametrize("dataset", ["favorita", "retailer"])
def test_linear_regression_both_datasets(dataset, favorita_db, retailer_db):
    db = favorita_db if dataset == "favorita" else retailer_db
    spec = favorita_features(db) if dataset == "favorita" else retailer_features(db)
    config = (
        EngineConfig(join_tree_edges=FAVORITA_TREE)
        if dataset == "favorita"
        else EngineConfig()
    )
    model = train_linear_regression(LMFAO(db, config), spec, ridge=1e-2)
    assert np.isfinite(model.theta).all()
    assert model.objective >= 0
    # prediction beats predicting zero on training data (there is signal)
    join = db.materialize_join()
    rows = {a: join.column(a) for a in spec.all_attributes}
    y = join.column(spec.label).astype(float)
    rmse = np.sqrt(np.mean((model.predict_rows(rows) - y) ** 2))
    assert rmse < np.sqrt(np.mean(y**2))


@pytest.mark.parametrize("dataset", ["favorita", "retailer"])
def test_decision_tree_both_datasets(dataset, favorita_db, retailer_db):
    db = favorita_db if dataset == "favorita" else retailer_db
    spec = favorita_features(db) if dataset == "favorita" else retailer_features(db)
    config = (
        EngineConfig(join_tree_edges=FAVORITA_TREE)
        if dataset == "favorita"
        else EngineConfig()
    )
    tree = RegressionTree(spec, CartConfig(max_depth=2, min_samples=10)).fit(
        LMFAO(db, config)
    )
    join = db.materialize_join()
    rows = {a: join.column(a) for a in spec.all_attributes}
    y = join.column(spec.label).astype(float)
    predictions = tree.predict_rows(rows)
    # tree SSE never exceeds the root's (splits only help on training data)
    assert ((y - predictions) ** 2).sum() <= ((y - y.mean()) ** 2).sum() + 1e-6


@pytest.mark.parametrize(
    "dataset,dims",
    [
        ("favorita", ("units", "txns")),
        ("retailer", ("inventoryunits", "maxtemp", "prize")),
    ],
)
def test_rkmeans_both_datasets(dataset, dims, favorita_db, retailer_db):
    db = favorita_db if dataset == "favorita" else retailer_db
    result = rk_means(db, dimensions=dims, k=3, seed=1)
    assert result.centroids.shape == (3, len(dims))
    assert result.grid_weights.sum() == pytest.approx(db.materialize_join().num_rows)


def test_cart_engine_trie_cache_shared_across_nodes(favorita_db):
    """The whole tree reuses tries: cache growth stops after the root batch."""
    engine = LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))
    spec = favorita_features(favorita_db)
    RegressionTree(spec, CartConfig(max_depth=1, min_samples=10)).fit(engine)
    after_root = len(engine._trie_cache)
    RegressionTree(spec, CartConfig(max_depth=3, min_samples=10)).fit(engine)
    assert len(engine._trie_cache) == after_root
