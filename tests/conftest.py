"""Shared fixtures: small deterministic databases and engines."""

from __future__ import annotations

import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import favorita, retailer
from repro.paper import FAVORITA_TREE


@pytest.fixture(scope="session")
def favorita_db():
    """A small Favorita instance (deterministic)."""
    return favorita(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def retailer_db():
    """A small Retailer instance (deterministic)."""
    return retailer(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def favorita_join(favorita_db):
    """The materialised join of the small Favorita instance."""
    return favorita_db.materialize_join()


@pytest.fixture()
def favorita_engine(favorita_db):
    """An engine over Favorita pinned to the paper's join tree."""
    return LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))


@pytest.fixture()
def retailer_engine(retailer_db):
    return LMFAO(retailer_db)
