"""Shared fixtures: small deterministic databases and engines.

The CI parallel leg re-runs the whole suite with task + domain parallelism
as the *default* engine configuration by exporting::

    LMFAO_TEST_WORKERS=4 LMFAO_TEST_PARTITIONS=4 LMFAO_TEST_PARALLEL_THRESHOLD=0

and the NumPy-backend leg makes the vectorized backend the default with::

    LMFAO_TEST_BACKEND=numpy

Those variables rewrite the corresponding :class:`EngineConfig` defaults
below, so every test that does not pin its own execution knobs exercises
the parallel scheduler, the partition merge path and/or the chosen
backend. Tests that construct explicit configs (including the
differential grids, which pin ``backend="python"`` baselines) are
unaffected.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core import EngineConfig, LMFAO
from repro.data import favorita, retailer
from repro.paper import FAVORITA_TREE


def _override_engine_defaults() -> None:
    int_overrides = {
        "workers": os.environ.get("LMFAO_TEST_WORKERS"),
        "partitions": os.environ.get("LMFAO_TEST_PARTITIONS"),
        "parallel_threshold": os.environ.get("LMFAO_TEST_PARALLEL_THRESHOLD"),
    }
    overrides: dict[str, object] = {
        name: int(v) for name, v in int_overrides.items() if v is not None
    }
    backend = os.environ.get("LMFAO_TEST_BACKEND")
    if backend:
        overrides["backend"] = backend
    if not overrides:
        return
    names = [f.name for f in dataclasses.fields(EngineConfig)]
    defaults = list(EngineConfig.__init__.__defaults__)
    for name, value in overrides.items():
        defaults[names.index(name)] = value
    EngineConfig.__init__.__defaults__ = tuple(defaults)


_override_engine_defaults()


@pytest.fixture(scope="session")
def favorita_db():
    """A small Favorita instance (deterministic)."""
    return favorita(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def retailer_db():
    """A small Retailer instance (deterministic)."""
    return retailer(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def favorita_join(favorita_db):
    """The materialised join of the small Favorita instance."""
    return favorita_db.materialize_join()


@pytest.fixture()
def favorita_engine(favorita_db):
    """An engine over Favorita pinned to the paper's join tree."""
    return LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))


@pytest.fixture()
def retailer_engine(retailer_db):
    return LMFAO(retailer_db)
