"""Shared fixtures: small deterministic databases and engines.

The CI parallel leg re-runs the whole suite with task + domain parallelism
as the *default* engine configuration by exporting::

    LMFAO_TEST_WORKERS=4 LMFAO_TEST_PARTITIONS=4 LMFAO_TEST_PARALLEL_THRESHOLD=0

the NumPy-backend leg makes the vectorized backend the default with::

    LMFAO_TEST_BACKEND=numpy

and the multiprocess leg routes domain parallelism to worker processes
with::

    LMFAO_TEST_EXECUTOR=process

Those variables rewrite the corresponding :class:`EngineConfig` defaults
below, so every test that does not pin its own execution knobs exercises
the parallel scheduler, the partition merge path and/or the chosen
backend. Tests that construct explicit configs (including the
differential grids, which pin ``backend="python"`` baselines) are
unaffected.

The view-cache leg re-runs the serving + incremental suites with the
materialized-view cache forced on or off::

    LMFAO_TEST_VIEWCACHE=1   # force on at the default 32 MiB budget
    LMFAO_TEST_VIEWCACHE=0   # force off (every server runs cache-less)
    LMFAO_TEST_VIEWCACHE=65536  # force on with a 64 KiB byte budget

which rewrites the ``view_cache_bytes`` keyword-only default of
:class:`AggregateServer`; servers constructed with an explicit
``view_cache_bytes`` are unaffected. Unset leaves the shipped default
(cache on).

Two more knobs thread the cost-based adaptive layer through the suite:
``LMFAO_TEST_ADAPTIVE=0`` rewrites the ``adaptive`` default (the static
ablation baseline), and ``LMFAO_FORCE_STRATEGY=hash|sort|heap|auto`` —
read directly by :mod:`repro.core.costmodel` at execution time, not a
default rewrite — pins the grouping strategy of every hash emission for
the whole run (the ``tests-costmodel`` CI leg runs the suite once per
forced strategy); ``heap``/``sort`` also pin the ordered top-k finishing
kernel, and ``LMFAO_FORCE_TOPK=heap|sort|auto`` pins it alone (the
``tests-ordered`` leg forces both kernels). An invalid value fails the
session at collection rather than surfacing as per-test noise.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core import EngineConfig, LMFAO, costmodel
from repro.data import favorita, retailer
from repro.paper import FAVORITA_TREE

# fail fast on a typo'd LMFAO_FORCE_STRATEGY / LMFAO_FORCE_TOPK before
# any test runs (the latter pins the ordered-emission finishing kernel;
# the tests-ordered CI leg sets both)
costmodel.forced_strategy()
costmodel.forced_topk()


def _override_engine_defaults() -> None:
    int_overrides = {
        "workers": os.environ.get("LMFAO_TEST_WORKERS"),
        "partitions": os.environ.get("LMFAO_TEST_PARTITIONS"),
        "parallel_threshold": os.environ.get("LMFAO_TEST_PARALLEL_THRESHOLD"),
    }
    overrides: dict[str, object] = {
        name: int(v) for name, v in int_overrides.items() if v is not None
    }
    backend = os.environ.get("LMFAO_TEST_BACKEND")
    if backend:
        overrides["backend"] = backend
    executor = os.environ.get("LMFAO_TEST_EXECUTOR")
    if executor:
        overrides["executor"] = executor
    adaptive = os.environ.get("LMFAO_TEST_ADAPTIVE")
    if adaptive is not None:
        overrides["adaptive"] = adaptive not in {"0", "false", ""}
    if not overrides:
        return
    names = [f.name for f in dataclasses.fields(EngineConfig)]
    defaults = list(EngineConfig.__init__.__defaults__)
    for name, value in overrides.items():
        defaults[names.index(name)] = value
    EngineConfig.__init__.__defaults__ = tuple(defaults)


_override_engine_defaults()


def _override_view_cache_default() -> None:
    raw = os.environ.get("LMFAO_TEST_VIEWCACHE")
    if raw is None:
        return
    from repro.serve.server import AggregateServer

    if raw in {"0", "off", "false", ""}:
        value = 0
    elif raw in {"1", "on", "true"}:
        value = AggregateServer.__init__.__kwdefaults__["view_cache_bytes"]
    else:
        value = int(raw)
    # view_cache_bytes is keyword-only, so its default lives in
    # __kwdefaults__, not __defaults__.
    AggregateServer.__init__.__kwdefaults__["view_cache_bytes"] = value


_override_view_cache_default()


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_leaks():
    """Fail the session if any shared-memory segment outlives its engine.

    The multiprocess executor (:mod:`repro.core.mpexec`) names every
    segment it creates with the ``lmfao_`` prefix and tracks them in a
    process-wide registry until unlinked. After the whole suite has run
    (and engines have been closed or garbage-collected), both the
    registry and the kernel's shm namespace must be free of this
    process's segments — a stray entry is a lifecycle bug, not noise.
    """
    import glob

    shm_dir = "/dev/shm"
    baseline = (
        set(glob.glob(os.path.join(shm_dir, "lmfao_*")))
        if os.path.isdir(shm_dir)
        else set()
    )
    yield
    import gc

    from repro.core import mpexec

    gc.collect()
    leaked = mpexec.active_segment_names()
    assert leaked == [], f"leaked shared-memory segments: {leaked}"
    from repro.serve.viewcache import live_caches

    for cache in live_caches():
        cache.check_no_orphans()
    if os.path.isdir(shm_dir):
        stray = set(glob.glob(os.path.join(shm_dir, "lmfao_*"))) - baseline
        assert not stray, f"stray /dev/shm segments after the suite: {stray}"


@pytest.fixture(scope="session")
def favorita_db():
    """A small Favorita instance (deterministic)."""
    return favorita(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def retailer_db():
    """A small Retailer instance (deterministic)."""
    return retailer(scale=0.05, seed=7)


@pytest.fixture(scope="session")
def favorita_join(favorita_db):
    """The materialised join of the small Favorita instance."""
    return favorita_db.materialize_join()


@pytest.fixture()
def favorita_engine(favorita_db):
    """An engine over Favorita pinned to the paper's join tree."""
    return LMFAO(favorita_db, EngineConfig(join_tree_edges=FAVORITA_TREE))


@pytest.fixture()
def retailer_engine(retailer_db):
    return LMFAO(retailer_db)
