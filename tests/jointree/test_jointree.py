"""Join tree structure, RIP validation, and construction."""

import pytest

from repro.data import Attribute, DatabaseSchema, RelationSchema
from repro.jointree import JoinTree, build_join_tree
from repro.util.errors import CyclicSchemaError, PlanError

C = Attribute.categorical


def schema_of(*rels):
    return DatabaseSchema(
        [RelationSchema(name, tuple(C(a) for a in attrs)) for name, attrs in rels]
    )


def test_build_simple_chain():
    schema = schema_of(("A", ["x"]), ("B", ["x", "y"]), ("C", ["y"]))
    tree = build_join_tree(schema)
    assert set(tree.edges) == {("A", "B"), ("B", "C")}
    assert tree.separator("A", "B") == ("x",)


def test_build_prefers_heavier_edges():
    schema = schema_of(("A", ["x", "y"]), ("B", ["x", "y", "z"]), ("C", ["z"]))
    tree = build_join_tree(schema)
    assert ("A", "B") in tree.edges  # weight 2 beats weight < 2 alternatives


def test_single_relation():
    schema = schema_of(("A", ["x"]))
    tree = build_join_tree(schema)
    assert tree.edges == ()
    assert tree.nodes == ("A",)


def test_disconnected_schema_raises():
    schema = schema_of(("A", ["x"]), ("B", ["y"]))
    with pytest.raises(CyclicSchemaError):
        build_join_tree(schema)


def test_cyclic_schema_raises():
    # triangle: no spanning tree satisfies RIP
    schema = schema_of(("A", ["x", "y"]), ("B", ["y", "z"]), ("C", ["z", "x"]))
    with pytest.raises(CyclicSchemaError):
        build_join_tree(schema)


def test_explicit_tree_validated():
    schema = schema_of(("A", ["x"]), ("B", ["x", "y"]), ("C", ["y"]))
    with pytest.raises(CyclicSchemaError):
        # A-C edge breaks RIP for y... actually for x: A-C share nothing
        JoinTree(schema, [("A", "C"), ("C", "B")])
    with pytest.raises(PlanError):
        JoinTree(schema, [("A", "B")])  # too few edges
    with pytest.raises(PlanError):
        JoinTree(schema, [("A", "B"), ("B", "Z")])  # unknown node


def test_rooted_traversals():
    schema = schema_of(("A", ["x"]), ("B", ["x", "y"]), ("C", ["y"]))
    tree = build_join_tree(schema)
    parents = tree.rooted_parents("A")
    assert parents == {"A": None, "B": "A", "C": "B"}
    order = tree.topological_from_leaves("A")
    assert order.index("C") < order.index("B") < order.index("A")
    with pytest.raises(PlanError):
        tree.rooted_parents("Z")


def test_subtree_attributes():
    schema = schema_of(("A", ["x"]), ("B", ["x", "y"]), ("C", ["y", "w"]))
    tree = build_join_tree(schema)
    assert tree.subtree_attributes("B", "A") == {"x", "y", "w"}
    assert tree.subtree_attributes("C", "B") == {"y", "w"}
    assert tree.subtree_attributes("A", None) == {"x", "y", "w"}


def test_separator_requires_adjacency():
    schema = schema_of(("A", ["x"]), ("B", ["x", "y"]), ("C", ["y"]))
    tree = build_join_tree(schema)
    with pytest.raises(PlanError):
        tree.separator("A", "C")


def test_directed_edges_both_ways():
    schema = schema_of(("A", ["x"]), ("B", ["x"]))
    tree = build_join_tree(schema)
    assert set(tree.directed_edges) == {("A", "B"), ("B", "A")}
