"""Root assignment heuristic: the paper's choices and edge cases."""

import pytest

from repro.jointree import JoinTree, assign_roots
from repro.jointree.roots import assign_root
from repro.paper import FAVORITA_TREE, example_queries
from repro.query import Aggregate, Query, QueryBatch


def test_paper_root_assignment(favorita_db):
    """Q1, Q2 -> Sales; Q3 -> Items, exactly as chosen in the paper."""
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    roots = assign_roots(favorita_db, tree, example_queries())
    assert roots == {"Q1": "Sales", "Q2": "Sales", "Q3": "Items"}


def test_scalar_queries_go_to_largest_relation(favorita_db):
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    query = Query("scalar", aggregates=(Aggregate.count(),))
    assert assign_root(favorita_db, tree, query) == "Sales"


def test_local_group_by_wins(favorita_db):
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    query = Query("by_class", group_by=("class",))
    assert assign_root(favorita_db, tree, query) == "Items"
    query = Query("by_price", group_by=("price",))
    assert assign_root(favorita_db, tree, query) == "Oil"


def test_override_pins_roots(favorita_db):
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    batch = QueryBatch([Query("q", group_by=("class",))])
    roots = assign_roots(favorita_db, tree, batch, override={"q": "Oil"})
    assert roots == {"q": "Oil"}
    with pytest.raises(KeyError):
        assign_roots(favorita_db, tree, batch, override={"q": "Nope"})


def test_group_by_spanning_relations_prefers_bigger_domain(favorita_db):
    tree = JoinTree(favorita_db.schema, list(FAVORITA_TREE))
    # item's domain is the largest; a query grouped by item and city should
    # root where the heavier group-by attribute is local
    query = Query("q", group_by=("item", "city"))
    root = assign_root(favorita_db, tree, query)
    assert "item" in tree.attributes(root)
