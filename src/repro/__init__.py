"""LMFAO — an engine for batches of group-by aggregates.

Reproduction of: M. Schleich and D. Olteanu, "LMFAO: An Engine for Batches
of Group-By Aggregates", PVLDB 13(12), 2020 (demonstration of the layered
aggregate engine introduced at SIGMOD 2019).

Quick start::

    from repro import LMFAO, favorita, parse_query, QueryBatch

    db = favorita(scale=0.1)
    engine = LMFAO(db)
    batch = QueryBatch([
        parse_query("SELECT SUM(units) FROM D", "Q1"),
        parse_query("SELECT store, SUM(units) FROM D GROUP BY store", "Q2"),
    ])
    result = engine.run(batch)
    print(result["Q1"].scalar())

See ``examples/`` for the three demonstrated applications: ridge linear
regression, CART regression trees, and Rk-means clustering.
"""

from repro.baselines import MaterializedPipeline, SqlEngineBaseline
from repro.core import CompiledBatch, EngineConfig, LMFAO, RunResult, Snapshot
from repro.incremental import ApplyResult, MaintainedBatch, RelationDelta
from repro.serve import AggregateServer, PlanCache, ServerStats
from repro.util.errors import WriteOverloadError
from repro.data import (
    Attribute,
    AttributeKind,
    Database,
    DatabaseSchema,
    Relation,
    RelationSchema,
    TrieIndex,
    favorita,
    retailer,
)
from repro.jointree import JoinTree, assign_roots, build_join_tree
from repro.ml import (
    CartConfig,
    FeatureSpec,
    IncrementalLinearRegression,
    RegressionTree,
    favorita_features,
    retailer_features,
    rk_means,
    train_linear_regression,
    weighted_kmeans,
)
from repro.query import (
    Aggregate,
    Factor,
    Function,
    FunctionRegistry,
    Op,
    Predicate,
    Query,
    QueryBatch,
    parse_query,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "AggregateServer",
    "ApplyResult",
    "Attribute",
    "AttributeKind",
    "CartConfig",
    "CompiledBatch",
    "Database",
    "DatabaseSchema",
    "EngineConfig",
    "Factor",
    "FeatureSpec",
    "Function",
    "FunctionRegistry",
    "IncrementalLinearRegression",
    "JoinTree",
    "LMFAO",
    "MaintainedBatch",
    "MaterializedPipeline",
    "Op",
    "PlanCache",
    "Predicate",
    "Query",
    "QueryBatch",
    "RegressionTree",
    "Relation",
    "RelationDelta",
    "RelationSchema",
    "RunResult",
    "ServerStats",
    "Snapshot",
    "SqlEngineBaseline",
    "TrieIndex",
    "WriteOverloadError",
    "assign_roots",
    "build_join_tree",
    "favorita",
    "favorita_features",
    "parse_query",
    "retailer",
    "retailer_features",
    "rk_means",
    "train_linear_regression",
    "weighted_kmeans",
]
