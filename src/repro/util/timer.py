"""Small timing helpers used by the engine and the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context manager measuring wall-clock time of a block.

    Usage::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class Stopwatch:
    """Accumulates named wall-clock laps.

    The engine uses one stopwatch per run to report per-phase timings
    (view generation, grouping, code generation, execution), mirroring the
    timings surfaced by the LMFAO demonstration UI.
    """

    def __init__(self) -> None:
        self._laps: dict[str, float] = {}

    def lap(self, name: str) -> "_Lap":
        """Return a context manager that adds its duration under ``name``."""
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated time for ``name``."""
        self._laps[name] = self._laps.get(name, 0.0) + seconds

    @property
    def laps(self) -> dict[str, float]:
        """A copy of the accumulated lap times, keyed by lap name."""
        return dict(self._laps)

    def total(self) -> float:
        """Sum of all laps."""
        return sum(self._laps.values())

    def report(self) -> str:
        """Human-readable multi-line report, longest lap first."""
        if not self._laps:
            return "(no laps recorded)"
        width = max(len(name) for name in self._laps)
        lines = [
            f"{name:<{width}}  {secs * 1e3:10.2f} ms"
            for name, secs in sorted(self._laps.items(), key=lambda kv: -kv[1])
        ]
        lines.append(f"{'total':<{width}}  {self.total() * 1e3:10.2f} ms")
        return "\n".join(lines)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
