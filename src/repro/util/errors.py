"""Exception hierarchy for the LMFAO reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. The subclasses mirror the processing stages: schema
validation, query validation, join-tree construction, and plan compilation.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """Raised when a relation or database schema is inconsistent.

    Examples: duplicate attribute names inside a relation, an attribute that
    has different types in two relations, or a column whose length does not
    match the relation cardinality.
    """


class QueryError(ReproError):
    """Raised when a query references unknown attributes or is malformed."""


class CyclicSchemaError(ReproError):
    """Raised when the database schema does not admit a join tree.

    LMFAO targets acyclic join queries; a schema whose join hypergraph is
    cyclic has no join tree satisfying the running-intersection property.
    """


class PlanError(ReproError):
    """Raised when view generation or plan compilation hits an invalid state.

    A ``PlanError`` escaping the engine signals a bug in the optimiser, not a
    user mistake, except when noted otherwise on the raising function.
    """


class ParseError(QueryError):
    """Raised by the SQL-ish parser on invalid query text."""


class WriteOverloadError(ReproError):
    """Raised when a bounded write queue rejects a delta under backpressure.

    Only the ``policy="reject"`` backpressure mode of the serving layer's
    write queue raises this (``policy="block"`` waits and
    ``policy="coalesce"`` merges instead); the write was **not** enqueued
    and no state changed — the caller may retry, shed load, or block on
    :meth:`repro.serve.AggregateServer.flush` before retrying.
    """
