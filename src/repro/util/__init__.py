"""Shared utilities: errors, timers, deterministic ordering helpers."""

from repro.util.errors import (
    CyclicSchemaError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.util.ordered import OrderedSet, stable_unique
from repro.util.timer import Stopwatch, Timer

__all__ = [
    "CyclicSchemaError",
    "OrderedSet",
    "PlanError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "Stopwatch",
    "Timer",
    "stable_unique",
]
