"""Deterministic ordered collections.

The optimiser must be deterministic: view names, group numbering and
attribute orders all depend on iteration order. ``OrderedSet`` provides set
semantics with insertion order, built on the insertion-ordered ``dict``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


def stable_unique(items: Iterable[T]) -> list[T]:
    """Return the unique items of ``items`` preserving first-seen order."""
    return list(dict.fromkeys(items))


class OrderedSet:
    """A set that iterates in insertion order.

    Supports the small subset of the ``set`` API the optimiser needs:
    membership, union/intersection/difference (all order-preserving on the
    left operand), ``add`` and equality (order-insensitive, like ``set``).
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._items: dict[Hashable, None] = dict.fromkeys(items)

    def add(self, item: Hashable) -> None:
        self._items[item] = None

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self._items[item] = None

    def discard(self, item: Hashable) -> None:
        self._items.pop(item, None)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - OrderedSet is not hashable
        raise TypeError("OrderedSet is unhashable; convert to frozenset first")

    def __or__(self, other: Iterable[Hashable]) -> "OrderedSet":
        result = OrderedSet(self._items)
        result.update(other)
        return result

    def __and__(self, other: Iterable[Hashable]) -> "OrderedSet":
        keep = set(other)
        return OrderedSet(item for item in self._items if item in keep)

    def __sub__(self, other: Iterable[Hashable]) -> "OrderedSet":
        drop = set(other)
        return OrderedSet(item for item in self._items if item not in drop)

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"
