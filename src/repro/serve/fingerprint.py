"""Structural batch fingerprints and per-request constant rebinding.

LMFAO's premise is that one optimisation pass amortises over a batch; the
serving layer pushes that one step further and amortises the pass over
**many requests**. The unit of reuse is the *structure* of a batch — what
the three compile layers actually consume — with ``WHERE``-predicate
constants abstracted out, because the canonical serving workload
(decision-tree node batches, dashboard filters) re-issues the same shapes
with different thresholds.

Two functions define the whole contract:

* :func:`batch_fingerprint` — a hashable key over everything compilation
  depends on: per-query shapes (name, group-by, aggregate signatures),
  predicate structure with constants replaced by *placeholders* assigned
  in first-occurrence order of distinct ``(op, value)`` pairs, the join
  tree's edges, and the full :class:`~repro.core.engine.EngineConfig`.
  Two batches get the same fingerprint iff the compiled artefacts of one
  execute the other correctly after constant rebinding.
* :func:`bind_batch` — given a cache hit, aligns the request's constants
  with the cached compilation and returns the
  :class:`~repro.core.engine.PlanBinding` the engine executes with.

**Why placeholders are assigned per distinct (op, value) pair.** Predicate
folding deduplicates indicator functions by ``(op, value)``: ``x <= 5``
and ``y <= 5`` share one function, ``x <= 5`` and ``x <= 9`` do not. The
placeholder scheme mirrors exactly that: equal constants collapse to one
placeholder, distinct constants get distinct placeholders. A request
whose constants *collide differently* from the cached batch (``5, 9`` vs
``7, 7``) therefore fingerprints differently — a cache miss, never a
wrong rebinding — and within a fingerprint match the placeholder → slot
mapping is a bijection.

**What the fingerprint deliberately includes as literal structure:**
query names (emission artifacts are keyed by them), aggregate factor
function *names* (the registry contract makes names unique per
behaviour — including hand-built indicator factors, which therefore do
*not* participate in constant abstraction; only ``Query.where`` does),
and group-by order. **What it omits:** the database contents. Cost-based
planning choices (roots, attribute orders) were made against the
statistics at first compile; reusing them on drifted data is always
*correct* — any root/order computes the same aggregates — just possibly
no longer the cost-optimal plan. See ``docs/serving.md`` §Keying rules.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.engine import CompiledBatch, EngineConfig, PlanBinding
from repro.jointree.jointree import JoinTree
from repro.query.batch import QueryBatch
from repro.query.functions import Function
from repro.query.predicates import Predicate
from repro.util.errors import PlanError

#: one abstracted predicate constant: the ``(op, value)`` pair behind a
#: placeholder, in placeholder-id (= first-occurrence) order.
Constant = tuple[str, float]


@dataclass(frozen=True)
class BatchFingerprint:
    """Hashable structural identity of ``(batch shape, join tree, config)``.

    Equal fingerprints ⇒ the cached :class:`CompiledBatch` of one batch
    executes the other exactly, after :func:`bind_batch` re-binds the
    constants. Value semantics: use freely as a dict key.
    """

    key: tuple

    def __repr__(self) -> str:  # the raw key is long and unenlightening
        return f"BatchFingerprint(0x{hash(self.key) & 0xFFFFFFFF:08x})"


def _config_key(config: EngineConfig) -> tuple:
    """The config as a hashable tuple (dict fields canonicalised)."""
    items = []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        items.append((f.name, value))
    return tuple(items)


def batch_fingerprint(
    batch: QueryBatch, tree: JoinTree, config: EngineConfig
) -> tuple[BatchFingerprint, tuple[Constant, ...]]:
    """The structural fingerprint of a batch plus its abstracted constants.

    Returns ``(fingerprint, constants)``: ``constants`` lists the actual
    ``(op, value)`` pair behind each placeholder in placeholder order —
    the request's *identity beyond structure*, used by the server to
    coalesce identical in-flight requests (same fingerprint **and** same
    constants **and** same snapshot version).
    """
    placeholders: dict[Constant, int] = {}
    constants: list[Constant] = []

    def placeholder(op: str, value: float) -> int:
        pair = (op, value)
        pid = placeholders.get(pair)
        if pid is None:
            pid = placeholders[pair] = len(placeholders)
            constants.append(pair)
        return pid

    shape = tuple(
        (
            query.name,
            tuple(query.group_by),
            tuple(agg.signature for agg in query.aggregates),
            tuple(
                (p.attribute, p.op.value, placeholder(p.op.value, float(p.value)))
                for p in query.where
            ),
            # ordering is literal structure, never abstracted: top-k
            # truncation changes which groups a result even contains, so
            # an ordered batch can never ride an unordered compilation
            # (or one with a different spec or k).
            query.order_by.signature if query.order_by is not None else None,
            query.limit,
        )
        for query in batch
    )
    key = (shape, tree.edges, _config_key(config))
    return BatchFingerprint(key=key), tuple(constants)


def bind_batch(compiled: CompiledBatch, batch: QueryBatch) -> PlanBinding:
    """Bind a request's constants onto a structurally identical compilation.

    Precondition (the caller's cache guarantees it): ``batch`` and
    ``compiled.batch`` have equal :func:`batch_fingerprint`\\ s. The two
    batches are walked in lockstep — query by query, predicate by
    predicate — producing:

    * the **function rebinding**: for every folded (non-shared) predicate,
      the cached indicator's slot name maps to the request predicate's
      indicator function (identity when the constants happen to be equal);
    * the request's **shared predicates**, positionally mirroring
      ``compiled.shared_predicates`` so pushed-down physical filters use
      the request's constants (the trie cache keys on their true values).

    The walk is validated as it goes; a shape mismatch — which a correct
    fingerprint makes impossible — raises
    :class:`~repro.util.errors.PlanError` rather than mis-binding.
    """
    cached_queries = list(compiled.batch)
    request_queries = list(batch)
    if len(cached_queries) != len(request_queries):
        raise PlanError(
            "bind_batch: request batch shape diverged from the cached "
            "compilation (query count); fingerprints should have differed"
        )

    shared_sigs = {p.signature for p in compiled.shared_predicates}
    mapping: dict[str, Function] = {}
    for cached_q, request_q in zip(cached_queries, request_queries):
        if (
            cached_q.name != request_q.name
            or cached_q.group_by != request_q.group_by
            or len(cached_q.where) != len(request_q.where)
            or cached_q.order_by != request_q.order_by
            or cached_q.limit != request_q.limit
        ):
            raise PlanError(
                f"bind_batch: query {request_q.name!r} diverged structurally "
                f"from the cached compilation; fingerprints should have differed"
            )
        for cached_p, request_p in zip(cached_q.where, request_q.where):
            if cached_p.attribute != request_p.attribute or (
                cached_p.op is not request_p.op
            ):
                raise PlanError(
                    f"bind_batch: predicate shape diverged in query "
                    f"{request_q.name!r}; fingerprints should have differed"
                )
            if cached_p.signature in shared_sigs:
                continue  # pushed to a physical filter, not folded
            slot = cached_p.as_indicator().name
            bound = mapping.setdefault(slot, request_p.as_indicator())
            if bound.name != request_p.as_indicator().name:
                raise PlanError(
                    f"bind_batch: placeholder collision on slot {slot!r}; "
                    f"fingerprints should have differed"
                )

    # Shared predicates mirror QueryBatch.shared_predicates: the pushed
    # list is query 0's WHERE filtered to the batch-wide common signatures,
    # so pair query 0's predicates positionally.
    shared: list[Predicate] = []
    if compiled.shared_predicates:
        for cached_p, request_p in zip(
            cached_queries[0].where, request_queries[0].where
        ):
            if cached_p.signature in shared_sigs:
                shared.append(request_p)
        if len(shared) != len(compiled.shared_predicates):
            raise PlanError(
                "bind_batch: shared-predicate set diverged from the cached "
                "compilation; fingerprints should have differed"
            )

    functions = dict(compiled.functions)
    for slot, bound in mapping.items():
        if slot in functions:
            functions[slot] = bound
    return PlanBinding(
        batch=batch, functions=functions, shared_predicates=tuple(shared)
    )


# ------------------------------------------------------------------ view keys


@dataclass(frozen=True)
class ViewIdentity:
    """Version-independent identity of one materialized view's *contents*.

    Wraps everything a view's ``ViewData`` depends on besides the
    database version: the canonical subtree structure
    (:class:`~repro.core.views.ViewSignature`), the concrete functions
    bound to its placeholder slots (request constants, via
    :class:`~repro.core.engine.PlanBinding` on cache hits), the pushed
    shared predicates that filter any relation of its subtree, and the
    *execution profile* — attribute orders, partition safety and
    native/C availability of the producing groups over the subtree.

    The profile is in the key for bit-exactness, not correctness of the
    aggregates: group composition is batch-dependent, so a structurally
    identical view may run under a different attribute order or backend
    lowering in another batch, associating float additions differently.
    Equal identity ⇒ byte-identical recomputation. Cost-model
    *decisions* (``RunResult.decisions``) and the ``adaptive`` /
    ``workers`` / ``partitions`` knobs stay out: within one server the
    config is fixed and decisions are deterministic functions of the
    snapshot's trie statistics, which the snapshot version already pins.
    """

    key: tuple

    def __repr__(self) -> str:  # the raw key is long and unenlightening
        return f"ViewIdentity(0x{hash(self.key) & 0xFFFFFFFF:08x})"


@dataclass(frozen=True)
class ViewKey:
    """Cache key of one materialized view: ``(identity, snapshot_version)``.

    The version pins the data the view was computed over; the identity
    pins everything else. Cross-request sharing happens when different
    batch fingerprints yield equal identities at the same version.
    """

    identity: ViewIdentity
    version: int


def view_identities(
    compiled: CompiledBatch, binding: PlanBinding | None = None
) -> dict[str, ViewIdentity]:
    """Per-view cache identities for one request against a compilation.

    Derives, for every view of ``compiled.view_plan``, the
    :class:`ViewIdentity` of the ``ViewData`` this request's execution
    would materialize for it — the canonical signature with this
    request's constants bound in (``binding`` when the request rides a
    plan-cache hit, the compiled batch's own functions otherwise). Pair
    with the snapshot version via :class:`ViewKey` to address the
    :class:`~repro.serve.viewcache.ViewCache`.
    """
    signatures = compiled.view_plan.view_signatures()
    functions = binding.functions if binding is not None else compiled.functions
    shared = (
        binding.shared_predicates
        if binding is not None
        else compiled.shared_predicates
    )
    tree = compiled.tree

    producer: dict[str, int] = {}
    for index, plan in enumerate(compiled.plans):
        for name in plan.produced_views:
            producer[name] = index

    profiles: dict[str, tuple] = {}

    def profile(name: str) -> tuple:
        cached = profiles.get(name)
        if cached is not None:
            return cached
        index = producer[name]
        plan = compiled.plans[index]
        own = (
            plan.order,
            plan.partition_safe,
            compiled.native_groups[index] is None
            if compiled.native_groups
            else True,
            compiled.c_groups[index] is None if compiled.c_groups else True,
        )
        children = tuple(
            profile(child)
            for child in compiled.view_plan.views[name].referenced_views
        )
        profiles[name] = result = (own, children)
        return result

    identities: dict[str, ViewIdentity] = {}
    for name, signature in signatures.items():
        constants = tuple(
            functions[slot].name if slot in functions else slot
            for slot in signature.slots
        )
        subtree_attrs = frozenset(
            attr for node in signature.subtree for attr in tree.attributes(node)
        )
        applicable_shared = tuple(
            sorted(p.signature for p in shared if p.attribute in subtree_attrs)
        )
        identities[name] = ViewIdentity(
            key=(signature.structure, constants, applicable_shared, profile(name))
        )
    return identities
