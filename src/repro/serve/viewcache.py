"""The cross-request materialized-view cache (above the plan cache).

The plan cache reuses *compiled code* across requests; this layer reuses
*computed views*. One entry per :class:`~repro.serve.fingerprint.ViewKey`
— ``(view identity, snapshot version)`` — holding the materialized
``ViewData``/``ArrayViewData`` a past execution produced for that exact
identity over that exact database version. Different batch fingerprints
frequently share identical view subtrees (LMFAO's intra-batch view
sharing, lifted across requests), so a request that misses the plan
cache entirely can still skip most of its scan work.

Lifecycle contract (see ``docs/serving.md`` §View cache):

* **byte bound** — entries are weighted by
  :func:`~repro.core.runtime.estimate_view_bytes` in a shared
  :class:`~repro.serve.lru.LRUCache`; the weight bound holds after every
  insert.
* **version death** — the cache registers
  :meth:`drop_version` as a snapshot-store reclaim hook: when a
  superseded version loses its last pin, every entry at that version
  dies with it, unless the group-commit path carried it forward to the
  successor first. :meth:`check_no_orphans` (run by the test suite's
  leak fixture over :func:`live_caches`) asserts the invariant: no
  cached view outlives its snapshot version.
* **read-only data** — cached view contents are shared by reference
  with any number of concurrent executions; every consumer path in the
  engine and the maintainer builds fresh containers instead of writing
  through them (copy-on-write merges), which is what makes the sharing
  safe.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.query.functions import Function
from repro.query.predicates import Predicate
from repro.serve.fingerprint import ViewIdentity, ViewKey
from repro.serve.lru import CacheStats, LRUCache

#: every live ViewCache, so session-wide invariants (the no-orphans leak
#: check) can be asserted without plumbing cache handles around.
_LIVE_CACHES: "weakref.WeakSet[ViewCache]" = weakref.WeakSet()


def live_caches() -> list["ViewCache"]:
    """All currently live view caches (weakly tracked, GC'd ones gone)."""
    return list(_LIVE_CACHES)


@dataclass(frozen=True)
class ViewUpdater:
    """Everything needed to refresh one cached view through a delta.

    Captured at publish time from the producing execution: the compiled
    batch and group index whose code recomputes the view, the *bound*
    functions and shared predicates of the request that materialized it
    (rebinding means these may differ from ``compiled.functions``), and
    the identities of the views the group consumes — the refresh is only
    exact if those exact child contents are still cached at the old
    version (see ``AggregateServer._refresh_view_cache``).
    """

    compiled: object
    #: the view's name and producing group index *in its compilation*.
    view_name: str
    group_index: int
    functions: Mapping[str, Function]
    shared: tuple[Predicate, ...]
    #: every view the producing group's plan binds, with identities —
    #: all must still be cached at the pre-commit version for the
    #: refresh to run (names are compilation-local, identities are not).
    consumed: tuple[tuple[str, ViewIdentity], ...]


@dataclass(frozen=True)
class CachedView:
    """One materialized view held by the cache (data treated read-only)."""

    data: Mapping
    nbytes: int
    #: the view's home relation — the node whose trie its group scans.
    node: str
    #: all join-tree relations feeding the view (delta routing intersects
    #: this with the changed-relation set).
    subtree: frozenset[str]
    identity: ViewIdentity
    updater: ViewUpdater | None = None


class ViewCache:
    """Byte-bounded LRU of materialized views keyed by :class:`ViewKey`.

    Thread-safe (delegates to :class:`~repro.serve.lru.LRUCache`); the
    group-commit refresh additionally serialises through the server's
    commit mutex, so carry-forward/invalidate decisions are made against
    a stable version frontier.
    """

    def __init__(self, max_bytes: int) -> None:
        self._lru = LRUCache(max_weight=int(max_bytes))
        self._store_ref: Callable[[], object] | None = None
        _LIVE_CACHES.add(self)

    @property
    def max_bytes(self) -> int:
        return self._lru.max_weight

    def bind_store(self, store) -> None:
        """Weakly associate the snapshot store whose versions key entries.

        Enables :meth:`check_no_orphans`; the reference is weak so a
        cache outliving its server never keeps the store alive.
        """
        self._store_ref = weakref.ref(store)

    def get(self, key: ViewKey) -> CachedView | None:
        """The cached view, refreshed to most-recently-used; None on miss."""
        return self._lru.get(key)

    def peek(self, key: ViewKey) -> CachedView | None:
        """Lookup without touching recency or the hit/miss counters."""
        return self._lru.peek(key)

    def put(self, key: ViewKey, entry: CachedView) -> None:
        """Insert one materialized view; may evict cold entries (byte bound)."""
        self._lru.put(key, entry, weight=entry.nbytes)

    def invalidate(self, keys: Iterable[ViewKey]) -> None:
        """Drop exactly the given keys (dirty views under a delta)."""
        for key in keys:
            self._lru.remove(key)

    def drop_version(self, version: int) -> int:
        """Drop every entry at ``version``; the snapshot-GC reclaim hook."""
        return self._lru.remove_where(lambda key: key.version == version)

    def entries_at(self, version: int) -> list[tuple[ViewKey, CachedView]]:
        """Point-in-time ``(key, entry)`` list at one version (LRU-cold first)."""
        return [
            (key, entry)
            for key, entry in self._lru.items()
            if key.version == version
        ]

    def versions(self) -> set[int]:
        """The snapshot versions with at least one live entry."""
        return {key.version for key in self._lru.keys()}

    def __len__(self) -> int:
        return len(self._lru)

    def stats(self) -> CacheStats:
        """A consistent point-in-time snapshot of the counters."""
        return self._lru.stats()

    def check_no_orphans(self) -> None:
        """Assert no entry outlives its snapshot version (GC invariant).

        Called by the test suite's resource-leak fixture for every live
        cache: every cached version must still be retained by the bound
        snapshot store (current or pinned). A no-op until
        :meth:`bind_store`, or after the store itself was collected.
        """
        store = self._store_ref() if self._store_ref is not None else None
        if store is None:
            return
        retained = set(store.retained_versions())
        orphans = self.versions() - retained
        assert not orphans, (
            f"view cache holds entries for reclaimed snapshot versions "
            f"{sorted(orphans)} (retained: {sorted(retained)})"
        )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ViewCache(entries={s.entries}, bytes={s.weight}/{s.max_weight}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )
