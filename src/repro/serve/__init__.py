"""The compile-once serving layer: plan cache, snapshots, async front.

The fifth layer of the stack (viewgen → groups → plans → backends →
**serving**): :class:`AggregateServer` amortises one optimisation pass
over many requests via a structural plan cache with per-request constant
rebinding, serves queries and maintenance concurrently through immutable
versioned snapshots, and exposes an async ``submit`` front that coalesces
identical in-flight requests. See ``docs/serving.md``.
"""

from repro.core.snapshot import Snapshot, SnapshotStore
from repro.serve.fingerprint import BatchFingerprint, batch_fingerprint, bind_batch
from repro.serve.plancache import CacheStats, PlanCache
from repro.serve.server import AggregateServer, ServerStats

__all__ = [
    "AggregateServer",
    "BatchFingerprint",
    "CacheStats",
    "PlanCache",
    "ServerStats",
    "Snapshot",
    "SnapshotStore",
    "batch_fingerprint",
    "bind_batch",
]
