"""The compile-once serving layer: plan cache, snapshots, async front.

The fifth layer of the stack (viewgen → groups → plans → backends →
**serving**): :class:`AggregateServer` amortises one optimisation pass
over many requests via a structural plan cache with per-request constant
rebinding, serves queries concurrently through immutable versioned
snapshots (reader-pinned and garbage-collected), group-commits writes
through a bounded write-ahead delta queue
(:class:`~repro.serve.writequeue.WriteQueue`), and exposes an async
``submit`` front that coalesces identical in-flight requests. See
``docs/serving.md``.
"""

from repro.core.snapshot import Snapshot, SnapshotStore
from repro.serve.fingerprint import (
    BatchFingerprint,
    ViewIdentity,
    ViewKey,
    batch_fingerprint,
    bind_batch,
    view_identities,
)
from repro.serve.lru import LRUCache
from repro.serve.plancache import CacheStats, PlanCache
from repro.serve.server import AggregateServer, ServerStats
from repro.serve.viewcache import CachedView, ViewCache, ViewUpdater, live_caches
from repro.serve.writequeue import WriteQueue, WriteStats, WriteTicket
from repro.util.errors import WriteOverloadError

__all__ = [
    "AggregateServer",
    "BatchFingerprint",
    "CacheStats",
    "CachedView",
    "LRUCache",
    "PlanCache",
    "ServerStats",
    "Snapshot",
    "SnapshotStore",
    "ViewCache",
    "ViewIdentity",
    "ViewKey",
    "ViewUpdater",
    "WriteOverloadError",
    "WriteQueue",
    "WriteStats",
    "WriteTicket",
    "batch_fingerprint",
    "bind_batch",
    "live_caches",
    "view_identities",
]
