"""The compile-once serving layer: plan cache, snapshots, async front.

The fifth layer of the stack (viewgen → groups → plans → backends →
**serving**): :class:`AggregateServer` amortises one optimisation pass
over many requests via a structural plan cache with per-request constant
rebinding, serves queries concurrently through immutable versioned
snapshots (reader-pinned and garbage-collected), group-commits writes
through a bounded write-ahead delta queue
(:class:`~repro.serve.writequeue.WriteQueue`), and exposes an async
``submit`` front that coalesces identical in-flight requests. See
``docs/serving.md``.
"""

from repro.core.snapshot import Snapshot, SnapshotStore
from repro.serve.fingerprint import BatchFingerprint, batch_fingerprint, bind_batch
from repro.serve.plancache import CacheStats, PlanCache
from repro.serve.server import AggregateServer, ServerStats
from repro.serve.writequeue import WriteQueue, WriteStats, WriteTicket
from repro.util.errors import WriteOverloadError

__all__ = [
    "AggregateServer",
    "BatchFingerprint",
    "CacheStats",
    "PlanCache",
    "ServerStats",
    "Snapshot",
    "SnapshotStore",
    "WriteOverloadError",
    "WriteQueue",
    "WriteStats",
    "WriteTicket",
    "batch_fingerprint",
    "bind_batch",
]
