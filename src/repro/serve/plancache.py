"""The structural plan cache: LRU over batch fingerprints.

One entry per :class:`~repro.serve.fingerprint.BatchFingerprint`, holding
the :class:`~repro.core.engine.CompiledBatch` of the first request that
compiled that structure. Compiled batches are pure structure (no data
dependence), so an entry stays valid across snapshot versions forever —
eviction exists only to bound memory, not for correctness. Thread-safe;
all operations are O(1) under one lock (an ``OrderedDict`` in LRU
discipline: hits refresh recency, inserts evict from the cold end).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.engine import CompiledBatch
from repro.serve.fingerprint import BatchFingerprint
from repro.util.errors import PlanError


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`PlanCache` at a point in time.

    ``hits`` / ``misses`` count :meth:`PlanCache.get` outcomes,
    ``evictions`` counts entries dropped from the cold end on insert;
    ``entries`` / ``capacity`` describe current occupancy.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU mapping ``BatchFingerprint → CompiledBatch`` with hit/miss stats."""

    def __init__(self, capacity: int = 32) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise PlanError(
                f"PlanCache capacity must be an integer >= 1, got {capacity!r}"
            )
        self._capacity = capacity
        self._entries: "OrderedDict[BatchFingerprint, CompiledBatch]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: BatchFingerprint) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def get(self, fingerprint: BatchFingerprint) -> CompiledBatch | None:
        """The cached compilation, refreshed to most-recently-used; None on miss."""
        with self._lock:
            compiled = self._entries.get(fingerprint)
            if compiled is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return compiled

    def put(self, fingerprint: BatchFingerprint, compiled: CompiledBatch) -> None:
        """Insert (or refresh) an entry, evicting from the cold end if full.

        Two racing compilations of the same fingerprint may both ``put``;
        the last write wins and both compiled objects remain individually
        valid (entries are immutable structure, holders keep references).
        """
        with self._lock:
            self._entries[fingerprint] = compiled
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent point-in-time snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self._capacity,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"PlanCache(entries={s.entries}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )
