"""The structural plan cache: LRU over batch fingerprints.

One entry per :class:`~repro.serve.fingerprint.BatchFingerprint`, holding
the :class:`~repro.core.engine.CompiledBatch` of the first request that
compiled that structure. Compiled batches are pure structure (no data
dependence), so an entry stays valid across snapshot versions forever —
eviction exists only to bound memory, not for correctness. Thread-safe;
all operations are O(1) under one lock, delegated to the shared
:class:`~repro.serve.lru.LRUCache` (an ``OrderedDict`` in LRU discipline:
hits refresh recency, inserts evict from the cold end).
"""

from __future__ import annotations

from repro.core.engine import CompiledBatch
from repro.serve.fingerprint import BatchFingerprint
from repro.serve.lru import CacheStats, LRUCache
from repro.util.errors import PlanError

__all__ = ["CacheStats", "PlanCache"]


class PlanCache:
    """LRU mapping ``BatchFingerprint → CompiledBatch`` with hit/miss stats."""

    def __init__(self, capacity: int = 32) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise PlanError(
                f"PlanCache capacity must be an integer >= 1, got {capacity!r}"
            )
        self._cache = LRUCache(capacity=capacity)

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, fingerprint: BatchFingerprint) -> bool:
        return fingerprint in self._cache

    def get(self, fingerprint: BatchFingerprint) -> CompiledBatch | None:
        """The cached compilation, refreshed to most-recently-used; None on miss."""
        return self._cache.get(fingerprint)

    def put(self, fingerprint: BatchFingerprint, compiled: CompiledBatch) -> None:
        """Insert (or refresh) an entry, evicting from the cold end if full.

        Two racing compilations of the same fingerprint may both ``put``;
        the last write wins and both compiled objects remain individually
        valid (entries are immutable structure, holders keep references).
        """
        self._cache.put(fingerprint, compiled)

    def clear(self) -> None:
        """Drop every entry (stats counters are kept)."""
        self._cache.clear()

    def stats(self) -> CacheStats:
        """A consistent point-in-time snapshot of the counters."""
        return self._cache.stats()

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"PlanCache(entries={s.entries}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )
