"""The group-committed write path: a bounded delta queue + one committer.

Production write rates break the serving layer's original
one-copy-on-write-snapshot-per-``apply`` discipline twice over: every
small delta pays a full successor-snapshot build, and two concurrent
writers race :meth:`~repro.core.snapshot.SnapshotStore.install` (the
loser dies with a version-conflict ``PlanError``). This module replaces
the race with a **write-ahead delta queue**:

* :meth:`WriteQueue.submit` enqueues a normalised per-relation delta map
  (:class:`~repro.incremental.delta.RelationDelta`) and returns a
  :class:`WriteTicket` immediately — writers never touch the snapshot
  store themselves, so any number of threads may write concurrently;
* a single **committer thread** drains the queue and *group-commits*:
  consecutive queued deltas are composed into one delta map
  (:func:`~repro.incremental.delta.coalesce_deltas` — insert/delete
  cancellation, ``delete_mask`` entries act as group boundaries) and
  applied as **one** snapshot transition. Many small insert-only writes
  thus cost one successor build and one O(|Δ|) maintenance round over
  their union — the accumulate-then-commit shape of the ROADMAP's
  write-path item;
* the queue is **bounded** (``capacity`` pending delta groups) with a
  configurable backpressure ``policy``: ``"block"`` makes ``submit``
  wait for room, ``"reject"`` raises a typed
  :class:`~repro.util.errors.WriteOverloadError` without enqueueing, and
  ``"coalesce"`` merges the incoming delta into the newest queued entry
  in place (blocking only when the pair is unmergeable);
* **durability hooks**: ``ticket.result()`` blocks until that write's
  group commit is installed (or re-raises its failure), and
  :meth:`WriteQueue.flush` blocks until everything enqueued before the
  call has committed or failed;
* **crash containment**: an exception while building one group's
  successor (a delete of an absent tuple, a maintenance bug) fails only
  that group's tickets — with the original exception — re-queues
  nothing, and leaves the snapshot store on the last good version; the
  committer keeps serving later writes.

The queue is policy-free about *what* a commit does: the owner passes a
``commit(deltas) -> (version, results_by_handle)`` callback
(:meth:`repro.serve.AggregateServer._commit_group` routes it through
``stage_deltas``-equivalent staging, ``Snapshot.with_relations`` and the
incremental maintenance rules). See ``docs/serving.md`` for the full
contract.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.incremental.delta import RelationDelta, coalesce_deltas
from repro.util.errors import PlanError, WriteOverloadError

#: valid backpressure policies for a full queue.
POLICIES = ("block", "reject", "coalesce")


@dataclass(frozen=True)
class WriteStats:
    """Point-in-time write-path counters (one coherent reading).

    ``enqueued`` — writes accepted by :meth:`WriteQueue.submit`;
    ``committed_writes`` / ``committed_groups`` — writes durably
    installed, and the number of snapshot transitions that covered them
    (``committed_writes / committed_groups`` is the group-commit
    amortisation factor);
    ``coalesced_writes`` — writes merged into an already-queued entry by
    the ``"coalesce"`` backpressure policy;
    ``failed_writes`` — writes whose group commit raised (their tickets
    carry the exception) plus writes discarded by an aborting close;
    ``rejected_writes`` — writes refused by the ``"reject"`` policy;
    ``queued`` — delta groups currently waiting (≤ capacity);
    ``largest_group`` — most writes ever committed in one transition;
    ``last_committed_version`` — the newest installed version (−1 before
    the first commit).
    """

    enqueued: int = 0
    committed_writes: int = 0
    committed_groups: int = 0
    coalesced_writes: int = 0
    failed_writes: int = 0
    rejected_writes: int = 0
    queued: int = 0
    largest_group: int = 0
    last_committed_version: int = -1


class WriteTicket:
    """One write's durability handle (a thin future).

    ``result()`` blocks until the write's group commit installs and
    returns the committed snapshot version — or, for a maintained-handle
    write, that handle's :class:`~repro.incremental.maintain.ApplyResult`
    for the round. A failed group re-raises the committer's original
    exception here.
    """

    __slots__ = ("_handle", "_future")

    def __init__(self, handle: object | None = None) -> None:
        self._handle = handle
        self._future: Future = Future()
        self._future.set_running_or_notify_cancel()  # tickets never cancel

    def done(self) -> bool:
        """Whether the write has committed or failed."""
        return self._future.done()

    def result(self, timeout: float | None = None):
        """Block until committed; the version (or per-handle ApplyResult)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The commit failure, or None (blocks like :meth:`result`)."""
        return self._future.exception(timeout)

    def _resolve(self, version: int, by_handle: Mapping) -> None:
        if self._handle is not None and self._handle in by_handle:
            self._future.set_result(by_handle[self._handle])
        else:
            self._future.set_result(version)

    def _fail(self, exc: BaseException) -> None:
        self._future.set_exception(exc)

    def __repr__(self) -> str:
        state = "done" if self._future.done() else "pending"
        return f"WriteTicket({state})"


class _Entry:
    """One queue slot: a delta map plus every ticket riding on it."""

    __slots__ = ("deltas", "tickets")

    def __init__(self, deltas: dict[str, RelationDelta], tickets: list) -> None:
        self.deltas = deltas
        self.tickets = tickets


class WriteQueue:
    """Bounded delta queue + single committer thread (see module docstring).

    Parameters
    ----------
    commit:
        ``commit(deltas) -> (version, results_by_handle)`` — installs one
        composed delta map as a single snapshot transition. Called only
        from the committer thread, never under the queue lock; exceptions
        fail exactly that group's tickets.
    capacity:
        Maximum pending delta groups before backpressure engages (≥ 1).
    policy:
        ``"block"`` | ``"reject"`` | ``"coalesce"`` — see module docstring.
    """

    def __init__(
        self,
        commit: Callable,
        *,
        capacity: int = 256,
        policy: str = "block",
        thread_name: str = "lmfao-commit",
    ) -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise PlanError(
                f"WriteQueue capacity must be an integer >= 1, got {capacity!r}"
            )
        if policy not in POLICIES:
            raise PlanError(
                f"WriteQueue policy must be one of "
                f"{', '.join(repr(p) for p in POLICIES)}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._commit = commit
        self._thread_name = thread_name
        self._entries: deque[_Entry] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._work = threading.Condition(self._lock)
        self._progress = threading.Condition(self._lock)
        self._thread: threading.Thread | None = None
        self._accepting = True
        self._closed = False
        self._aborted = False
        self._enqueued = 0
        self._completed = 0  # commit attempts finished, success or failure
        self._committed_writes = 0
        self._committed_groups = 0
        self._coalesced_writes = 0
        self._failed_writes = 0
        self._rejected_writes = 0
        self._largest_group = 0
        self._last_committed_version = -1

    # ------------------------------------------------------------------ submit
    def submit(
        self, deltas: dict[str, RelationDelta], handle: object | None = None
    ) -> WriteTicket:
        """Enqueue one normalised delta map; returns its durability ticket.

        Applies the backpressure policy when the queue is full. Raises
        :class:`~repro.util.errors.PlanError` once the queue is closed —
        including for writers that were *blocking* for queue space when
        the close began (they are woken and refused rather than left
        hanging).
        """
        ticket = WriteTicket(handle)
        with self._lock:
            if not self._accepting:
                raise PlanError("write queue is closed")
            while len(self._entries) >= self.capacity:
                if self.policy == "reject":
                    self._rejected_writes += 1
                    raise WriteOverloadError(
                        f"write queue is full ({self.capacity} pending delta "
                        f"groups) and policy='reject'; retry after flush(), "
                        f"or use policy='block'/'coalesce'"
                    )
                if self.policy == "coalesce" and self._entries:
                    tail = self._entries[-1]
                    merged = coalesce_deltas(tail.deltas, deltas)
                    if merged is not None:
                        tail.deltas = merged
                        tail.tickets.append(ticket)
                        self._enqueued += 1
                        self._coalesced_writes += 1
                        return ticket
                    # unmergeable (delete_mask boundary): fall back to block
                self._not_full.wait()
                if not self._accepting:
                    raise PlanError(
                        "write queue closed while this write waited for "
                        "queue space; the delta was not enqueued"
                    )
            self._entries.append(_Entry(dict(deltas), [ticket]))
            self._enqueued += 1
            self._ensure_committer_locked()
            self._work.notify()
        return ticket

    def _ensure_committer_locked(self) -> None:
        # started lazily on the first real write: empty applies never wake
        # (or even create) the committer.
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=self._thread_name, daemon=True
            )
            self._thread.start()

    # --------------------------------------------------------------- committer
    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._entries and not self._closed:
                    self._work.wait()
                if not self._entries:
                    return  # closed and fully drained
                deltas, tickets = self._next_group_locked()
                self._not_full.notify_all()
            try:
                version, by_handle = self._commit(deltas)
            except BaseException as exc:  # noqa: BLE001 — contained per group
                # fail exactly this group's waiters with the original
                # exception; the store was left on the last good version
                # by the commit callback's staging discipline, and the
                # next group starts from a clean queue.
                with self._lock:
                    self._failed_writes += len(tickets)
                    self._completed += len(tickets)
                    self._progress.notify_all()
                for ticket in tickets:
                    ticket._fail(exc)
                continue
            with self._lock:
                self._committed_writes += len(tickets)
                self._committed_groups += 1
                self._largest_group = max(self._largest_group, len(tickets))
                self._completed += len(tickets)
                self._last_committed_version = version
                self._progress.notify_all()
            for ticket in tickets:
                ticket._resolve(version, by_handle)

    def _next_group_locked(self) -> tuple[dict[str, RelationDelta], list]:
        """Pop the longest composable prefix of the queue as one group."""
        entry = self._entries.popleft()
        deltas = entry.deltas
        tickets = list(entry.tickets)
        while self._entries:
            merged = coalesce_deltas(deltas, self._entries[0].deltas)
            if merged is None:
                break  # delete_mask boundary: next entry starts a new group
            deltas = merged
            tickets.extend(self._entries.popleft().tickets)
        return deltas, tickets

    # ----------------------------------------------------------------- waiting
    def flush(self, timeout: float | None = None) -> None:
        """Block until every write enqueued before this call has finished.

        "Finished" means committed *or* failed — a failed write's error
        lives on its ticket; flush itself only orders. Raises
        :class:`~repro.util.errors.PlanError` if the queue is closed
        with ``flush=False`` while waiting (pending deltas were
        discarded, so the durability point will never be reached), and
        :class:`TimeoutError` on timeout.
        """
        with self._lock:
            target = self._enqueued
            while self._completed < target:
                if self._aborted:
                    raise PlanError(
                        "write queue was closed without flushing; pending "
                        "deltas were discarded and this flush target will "
                        "never commit"
                    )
                if not self._progress.wait(timeout):
                    raise TimeoutError(
                        f"flush timed out after {timeout}s with "
                        f"{target - self._completed} write(s) pending"
                    )

    # ----------------------------------------------------------------- closing
    def close(self, flush: bool = True) -> None:
        """Stop accepting writes and shut the committer down (idempotent).

        ``flush=True`` (default) drains: every already-queued delta still
        group-commits before the committer exits, so close is a
        durability point. ``flush=False`` aborts: queued deltas are
        discarded, their tickets fail with a
        :class:`~repro.util.errors.PlanError`, and any concurrent
        :meth:`flush` waiter is released with the same clear error
        instead of hanging. Blocked ``submit`` callers are woken and
        refused either way. The group being committed right now (if any)
        always completes.
        """
        discarded: list[_Entry] = []
        with self._lock:
            thread = self._thread
            if not self._closed:
                self._accepting = False
                self._closed = True
                if not flush:
                    self._aborted = True
                    discarded = list(self._entries)
                    self._entries.clear()
                    self._failed_writes += sum(
                        len(e.tickets) for e in discarded
                    )
                self._work.notify_all()
                self._not_full.notify_all()
                self._progress.notify_all()
        for entry in discarded:
            for ticket in entry.tickets:
                ticket._fail(
                    PlanError(
                        "write queue closed before this delta committed "
                        "(close(flush=False) discards queued writes)"
                    )
                )
        if thread is not None and thread is not threading.current_thread():
            thread.join()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------- stats
    def stats(self) -> WriteStats:
        """One coherent reading of every counter (single lock acquisition)."""
        with self._lock:
            return WriteStats(
                enqueued=self._enqueued,
                committed_writes=self._committed_writes,
                committed_groups=self._committed_groups,
                coalesced_writes=self._coalesced_writes,
                failed_writes=self._failed_writes,
                rejected_writes=self._rejected_writes,
                queued=len(self._entries),
                largest_group=self._largest_group,
                last_committed_version=self._last_committed_version,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"WriteQueue(policy={self.policy!r}, queued={s.queued}/"
            f"{self.capacity}, committed={s.committed_writes} writes in "
            f"{s.committed_groups} groups)"
        )
