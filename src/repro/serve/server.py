"""The compile-once serving front: plan cache + snapshots + queued writes.

:class:`AggregateServer` wraps one :class:`~repro.core.engine.LMFAO`
engine for serving heavy concurrent traffic:

* **structural plan cache** — every request is fingerprinted
  (:func:`~repro.serve.fingerprint.batch_fingerprint`); structurally
  identical batches reuse one :class:`~repro.core.engine.CompiledBatch`
  with predicate constants re-bound at execution
  (:func:`~repro.serve.fingerprint.bind_batch`), LRU-bounded with hit/miss
  stats (:class:`~repro.serve.plancache.PlanCache`);
* **materialized-view cache** — above the plan cache, computed views are
  published to a byte-bounded cross-request cache keyed by
  ``(canonical view identity, snapshot version)``
  (:mod:`repro.serve.viewcache`); later requests — same *or different*
  batch fingerprints — seed execution from hits, skipping the seeded
  subtrees' scans entirely, and group commits carry clean entries across
  versions, refresh insert-only-dirty ones via the O(|Δ|) numeric rules
  and invalidate exactly the rest;
* **snapshot-isolated reads** — :meth:`run` / :meth:`submit` pin the
  engine's current :class:`~repro.core.snapshot.Snapshot` at entry and
  release it on completion; the pin refcount both isolates the read from
  concurrent commits and keeps the version (and its shared-memory trie
  segments under ``executor="process"``) alive for snapshot GC;
* **group-committed writes** — :meth:`apply` and maintained-handle writes
  enqueue normalised deltas on a bounded write-ahead queue
  (:class:`~repro.serve.writequeue.WriteQueue`); a single committer
  thread composes consecutive deltas (insert/delete cancellation) and
  installs them as **one** snapshot transition, refreshing every
  registered :meth:`maintain` handle against the same successor. Any
  number of writer threads may apply concurrently — writers serialise
  through the queue instead of dying on version conflicts — with
  configurable backpressure and ``flush()``/``sync=True`` durability;
* **async submission** — :meth:`submit` returns a
  :class:`concurrent.futures.Future` over a shared worker pool, and
  identical in-flight requests (same fingerprint, same constants, same
  snapshot version) **coalesce** onto one future: a thundering herd of
  the same dashboard query costs one execution.

Examples
--------
Structurally identical batches compile once; changed constants re-bind::

    >>> from repro.data import favorita
    >>> from repro.query import QueryBatch, parse_query
    >>> server = AggregateServer(favorita(scale=0.02, seed=7))
    >>> cold = server.run(QueryBatch(
    ...     [parse_query("SELECT SUM(units) FROM D WHERE units <= 3", "Q")]))
    >>> warm = server.run(QueryBatch(
    ...     [parse_query("SELECT SUM(units) FROM D WHERE units <= 7", "Q")]))
    >>> stats = server.stats()
    >>> (stats.plan_cache.misses, stats.plan_cache.hits)
    (1, 1)
    >>> "compile" in cold.timings, "compile" in warm.timings
    (True, False)

Writes go through the group-commit queue; ``sync=True`` (the default)
blocks until the write's snapshot transition is installed, and empty
deltas short-circuit without ever waking the committer::

    >>> sales = server.engine.db.relation("Sales")
    >>> server.apply(inserts={"Sales": [sales.row(0)]})
    1
    >>> server.apply()  # nothing staged: version unchanged
    1
    >>> server.stats().writes.committed_groups
    1

Async submission — futures over a shared pool, snapshot pinned at
submission time (identical in-flight requests additionally coalesce
onto one future; see :meth:`AggregateServer.submit`)::

    >>> batch = QueryBatch([parse_query("SELECT SUM(units) FROM D", "S")])
    >>> futures = [server.submit(batch) for _ in range(4)]
    >>> len({f.result()["S"].scalar() for f in futures})
    1
    >>> server.close()
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.engine import (
    CompiledBatch,
    EngineConfig,
    LMFAO,
    PlanBinding,
    RunResult,
    ViewSeeds,
)
from repro.core.runtime import estimate_view_bytes, partition_tries
from repro.core.runtime import apply_predicates, local_predicates
from repro.core.snapshot import Snapshot
from repro.data.catalog import Database
from repro.data.trie import TrieIndex
from repro.incremental.delta import (
    RelationDelta,
    delta_footprint,
    normalize_deltas,
)
from repro.incremental.maintain import (
    ApplyResult,
    MaintainedBatch,
    check_numeric_deletes,
)
from repro.query.batch import QueryBatch
from repro.serve.fingerprint import (
    BatchFingerprint,
    Constant,
    ViewKey,
    batch_fingerprint,
    bind_batch,
    view_identities,
)
from repro.serve.plancache import CacheStats, PlanCache
from repro.serve.viewcache import CachedView, ViewCache, ViewUpdater
from repro.serve.writequeue import WriteQueue, WriteStats, WriteTicket
from repro.util.errors import PlanError


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time serving counters (one coherent reading).

    ``plan_cache`` — the structural cache's hit/miss/eviction counters;
    ``submitted`` — futures actually launched by :meth:`AggregateServer.submit`;
    ``coalesced`` — submissions absorbed by an identical in-flight future;
    ``inflight`` — submissions currently executing or queued;
    ``snapshot_version`` — the engine's current data version;
    ``writes`` — the write queue's counters
    (:class:`~repro.serve.writequeue.WriteStats`), read under the commit
    lock together with ``snapshot_version`` so the pair can never tear
    against a concurrent group commit;
    ``live_snapshots`` — versions the snapshot store still retains
    (current + pinned predecessors); bounded under sustained writes by
    snapshot GC;
    ``view_cache`` — the materialized-view cache's counters (hits,
    misses, evictions, live entries, bytes via ``weight``/``max_weight``),
    read inside the same commit-lock block as the version and write
    counters; None when the cache is disabled (``view_cache_bytes=0``).
    """

    plan_cache: CacheStats
    submitted: int = 0
    coalesced: int = 0
    inflight: int = 0
    snapshot_version: int = 0
    writes: WriteStats | None = None
    live_snapshots: int = 1
    view_cache: CacheStats | None = None


class AggregateServer:
    """One process serving aggregate batches and updates concurrently.

    Construct once per database; call from any number of threads —
    including any number of *writer* threads: writes serialise through
    the server's group-commit queue rather than conflicting. The full
    concurrency contract (what a ``run`` observes while writes are in
    flight, group composition, backpressure, flush semantics and the
    snapshot-GC lifecycle) is documented in ``docs/serving.md``.

    Parameters
    ----------
    db:
        The database to serve (becomes snapshot version 0).
    config:
        Engine configuration; enters every plan fingerprint.
    plan_cache_capacity:
        LRU bound on distinct batch structures kept compiled (default 32).
    request_workers:
        Threads executing :meth:`submit` futures (default 4). :meth:`run`
        executes on the caller's thread and does not use the pool.
    write_capacity:
        Bound on pending delta groups in the write queue (default 256).
    write_policy:
        Backpressure when the queue is full: ``"block"`` (default) makes
        ``apply`` wait for room, ``"reject"`` raises
        :class:`~repro.util.errors.WriteOverloadError`, ``"coalesce"``
        merges the incoming delta into the newest queued entry.
    view_cache_bytes:
        Byte bound of the cross-request materialized-view cache (default
        32 MiB; 0 disables it). Executions seed from cached views of the
        same identity and snapshot version — a request whose view subtree
        was computed by *any* earlier request skips that subtree's scans
        — and publish what they computed; group commits carry clean
        entries across versions, refresh insert-only-dirty ones via the
        O(|Δ|) numeric rules and invalidate the rest
        (``docs/serving.md`` §View cache).
    """

    def __init__(
        self,
        db: Database,
        config: EngineConfig | None = None,
        *,
        plan_cache_capacity: int = 32,
        request_workers: int = 4,
        write_capacity: int = 256,
        write_policy: str = "block",
        view_cache_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        if not isinstance(request_workers, int) or request_workers < 1:
            raise PlanError(
                f"AggregateServer request_workers must be an integer >= 1, "
                f"got {request_workers!r}"
            )
        if not isinstance(view_cache_bytes, int) or view_cache_bytes < 0:
            raise PlanError(
                f"AggregateServer view_cache_bytes must be an integer >= 0 "
                f"(0 disables the view cache), got {view_cache_bytes!r}"
            )
        self.engine = LMFAO(db, config)
        self.plan_cache = PlanCache(plan_cache_capacity)
        self.view_cache: ViewCache | None = None
        self._view_reclaim_hook = None
        if view_cache_bytes:
            self.view_cache = ViewCache(view_cache_bytes)
            self.view_cache.bind_store(self.engine._snapshots)
            # cached views die with their snapshot version unless a group
            # commit carried them forward first (docs/serving.md §View cache)
            self._view_reclaim_hook = self.view_cache.drop_version
            self.engine._snapshots.add_reclaim_hook(self._view_reclaim_hook)
        self._pool = ThreadPoolExecutor(
            max_workers=request_workers, thread_name_prefix="lmfao-serve"
        )
        self._inflight: dict[tuple, Future] = {}
        self._lock = threading.Lock()
        # held by every group commit, by maintain-handle registration and
        # by stats() — the one mutual exclusion between "a snapshot
        # transition is being installed" and "a coherent reading is taken".
        self._commit_mutex = threading.Lock()
        self._handles: "weakref.WeakSet[MaintainedBatch]" = weakref.WeakSet()
        self._writes = WriteQueue(
            self._commit_group, capacity=write_capacity, policy=write_policy
        )
        self._submitted = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------ queries
    def run(self, batch: QueryBatch) -> RunResult:
        """Execute a batch synchronously against the current snapshot.

        Pins the snapshot at entry (released on completion — the GC
        refcount that keeps the version and its shm segments alive for
        the whole read), then resolves the plan: a structural cache hit
        skips compilation entirely (``"compile"`` is absent from the
        result's timings) and re-binds the request's constants; a miss
        compiles and populates the cache. Safe from any thread.
        """
        snapshot = self.engine.pin_snapshot()
        try:
            fingerprint, _ = batch_fingerprint(
                batch, self.engine.tree, self.engine.config
            )
            return self._execute_pinned(batch, fingerprint, snapshot)
        finally:
            self.engine.release_snapshot(snapshot.version)

    def submit(self, batch: QueryBatch) -> "Future[RunResult]":
        """Execute a batch asynchronously; returns an awaitable future.

        The snapshot is pinned at *submission* time — the future's result
        reflects the data version current when ``submit`` was called,
        regardless of writes committed while it waited in the queue (the
        pin is released when the future completes, never mid-queue, so
        snapshot GC cannot reclaim the version under it). Identical
        in-flight requests — same structure, same constants, same
        snapshot version — coalesce onto one future (the request is
        executed once; every submitter gets the same ``RunResult``).
        """
        snapshot = self.engine.pin_snapshot()
        transferred = False
        try:
            fingerprint, constants = batch_fingerprint(
                batch, self.engine.tree, self.engine.config
            )
            key = (fingerprint, constants, snapshot.version)
            with self._lock:
                # checked under the lock: a close() racing this submit
                # either ran before (we raise) or runs after
                # (shutdown(wait=True) drains the future we just scheduled)
                if self._closed:
                    raise PlanError("AggregateServer is closed")
                future = self._inflight.get(key)
                if future is not None:
                    self._coalesced += 1
                    return future  # the launched submission holds its own pin
                future = self._pool.submit(
                    self._execute_pinned, batch, fingerprint, snapshot
                )
                self._submitted += 1
                self._inflight[key] = future
            transferred = True
        finally:
            if not transferred:
                self.engine.release_snapshot(snapshot.version)
        # registered OUTSIDE the lock: a future that completed already runs
        # its callback synchronously here, and the callback takes the lock
        future.add_done_callback(
            lambda _f, _k=key, _v=snapshot.version: self._submission_done(_k, _v)
        )
        return future

    def _submission_done(self, key: tuple, version: int) -> None:
        with self._lock:
            self._inflight.pop(key, None)
        self.engine.release_snapshot(version)

    def _execute_pinned(
        self, batch: QueryBatch, fingerprint: BatchFingerprint, snapshot
    ) -> RunResult:
        """Resolve the plan (cache or compile) and execute on ``snapshot``."""
        compiled = self.plan_cache.get(fingerprint)
        if compiled is None:
            # Two racing first requests may both compile; both results are
            # correct and the cache keeps the last one (see PlanCache.put).
            from repro.util.timer import Stopwatch

            watch = Stopwatch()
            with watch.lap("compile"):
                compiled = self.engine.compile(batch, snapshot=snapshot)
            self.plan_cache.put(fingerprint, compiled)
            return self.engine.execute(
                compiled,
                watch=watch,
                snapshot=snapshot,
                view_seeds=self._view_seeds(compiled, None, snapshot),
            )
        binding = bind_batch(compiled, batch)
        return self.engine.execute(
            compiled,
            snapshot=snapshot,
            binding=binding,
            view_seeds=self._view_seeds(compiled, binding, snapshot),
        )

    def _view_seeds(
        self,
        compiled: CompiledBatch,
        binding: PlanBinding | None,
        snapshot: Snapshot,
    ) -> ViewSeeds | None:
        """Seed one execution from the view cache; wire its publish sink.

        Looks every view of the compilation up by ``(identity, version)``
        — hits become engine seeds (their producing subtrees are skipped,
        see :meth:`LMFAO._skippable_groups`) — and returns a publish
        callback that installs each view the run actually computes,
        together with the :class:`~repro.serve.viewcache.ViewUpdater`
        the group-commit refresh needs. The callback fires while the
        run still holds its snapshot pin, so the version cannot be
        reclaimed mid-publish; a publish against a version superseded
        meanwhile is still keyed correctly and dies with the version's
        reclaim once the pin drops.
        """
        cache = self.view_cache
        if cache is None:
            return None
        identities = view_identities(compiled, binding)
        signatures = compiled.view_plan.view_signatures()
        version = snapshot.version
        seeds: dict[str, dict] = {}
        for name, identity in identities.items():
            entry = cache.get(ViewKey(identity, version))
            if entry is not None:
                seeds[name] = entry.data
        if binding is not None:
            functions = binding.functions
            shared = binding.shared_predicates
        else:
            functions = compiled.functions
            shared = compiled.shared_predicates
        producer = {
            name: index
            for index, plan in enumerate(compiled.plans)
            for name in plan.produced_views
        }

        def publish(name: str, data: dict) -> None:
            index = producer[name]
            updater = ViewUpdater(
                compiled=compiled,
                view_name=name,
                group_index=index,
                functions=functions,
                shared=shared,
                consumed=tuple(
                    (consumed, identities[consumed])
                    for consumed in compiled.plans[index].consumed_views
                ),
            )
            cache.put(
                ViewKey(identities[name], version),
                CachedView(
                    data=data,
                    nbytes=estimate_view_bytes(data),
                    node=compiled.view_plan.views[name].source,
                    subtree=signatures[name].subtree,
                    identity=identities[name],
                    updater=updater,
                ),
            )

        return ViewSeeds(seeds=seeds, publish=publish)

    # ------------------------------------------------------------------ updates
    def apply(
        self,
        inserts=None,
        deletes=None,
        *,
        sync: bool = True,
        timeout: float | None = None,
    ):
        """Apply base-relation updates through the group-commit queue.

        Normalises the deltas immediately (schema errors raise here, on
        the caller's thread), then enqueues them. With ``sync=True`` (the
        default) blocks until the covering group commit is installed and
        returns the new snapshot version — sequential synchronous applies
        therefore get one version each, while concurrent or asynchronous
        writers may share a version. With ``sync=False`` returns the
        :class:`~repro.serve.writequeue.WriteTicket` immediately; its
        ``result()`` is the committed version (commit failures surface
        there, or on :meth:`flush` ordering).

        Empty deltas short-circuit before touching the queue: no lock,
        no enqueue, no committer wake-up — the current version (or an
        already-resolved ticket) comes straight back. Backpressure
        follows the server's ``write_policy``; plan-cache entries stay
        valid across commits (they are pure structure).
        """
        deltas = self._stage_writes(inserts, deletes)
        if not deltas:
            version = self.engine.snapshot().version
            if sync:
                return version
            ticket = WriteTicket()
            ticket._resolve(version, {})
            return ticket
        ticket = self._writes.submit(deltas)
        if not sync:
            return ticket
        return ticket.result(timeout)

    def flush(self, timeout: float | None = None) -> int:
        """Block until every write enqueued before this call has finished.

        The server's durability point: after ``flush()`` returns, every
        prior ``apply(sync=False)`` ticket is resolved (committed, or
        failed with its error on the ticket). Returns the current
        snapshot version. Raises :class:`~repro.util.errors.PlanError`
        if the server is closed while discarding queued writes, and
        :class:`TimeoutError` on timeout.
        """
        self._writes.flush(timeout)
        return self.engine.snapshot().version

    def _stage_writes(
        self, inserts, deletes
    ) -> dict[str, RelationDelta]:
        """Normalise apply() arguments; enforce pre-enqueue contracts."""
        deltas = normalize_deltas(self.engine.snapshot().db, inserts, deletes)
        if deltas and self._handles:
            # fail fast on the caller's thread, exactly like a direct
            # handle apply would, instead of poisoning a whole group
            check_numeric_deletes(self.engine.config.incremental_mode, deltas)
        return deltas

    def _route_handle_apply(
        self, handle: MaintainedBatch, inserts, deletes
    ) -> ApplyResult:
        """A bound maintained handle's apply: enqueue, block for the result."""
        deltas = normalize_deltas(handle.db, inserts, deletes)
        check_numeric_deletes(self.engine.config.incremental_mode, deltas)
        if not deltas:
            return handle._empty_apply_result()
        return self._writes.submit(deltas, handle=handle).result()

    def _commit_group(self, deltas: dict[str, RelationDelta]):
        """Install one composed delta map as a single snapshot transition.

        Runs only on the committer thread. Stages every relation first
        (a failing delta raises *before* anything is touched), advances
        every registered maintained handle off to the side against the
        same successor, installs the snapshot, then flips the handles —
        so a failure at any point leaves the store on the last good
        version and every handle coherent, and the exception fails only
        this group's tickets (the queue's crash containment).
        """
        with self._commit_mutex:
            snapshot = self.engine.snapshot()
            if not deltas:
                return snapshot.version, {}
            staged = {
                name: delta.apply_to(snapshot.db.relation(name))
                for name, delta in deltas.items()
            }
            successor = snapshot.with_relations(staged)
            refreshed = self._refresh_view_cache(snapshot, deltas)
            advanced = [
                (handle, *handle._advance_state(deltas, successor))
                for handle in list(self._handles)
            ]
            self.engine._snapshots.install(successor)
            by_handle = {}
            for handle, new_state, result in advanced:
                handle._commit_state(new_state)
                by_handle[handle] = result
            if self.view_cache is not None:
                # published only now, after the install: the successor is a
                # retained version, so the no-orphans invariant never has a
                # window where cached keys point at an uninstalled version.
                for entry in refreshed:
                    self.view_cache.put(
                        ViewKey(entry.identity, successor.version), entry
                    )
                for handle, result in by_handle.items():
                    self._republish_handle_views(
                        handle, result, successor.version
                    )
            return successor.version, by_handle

    def _refresh_view_cache(
        self, snapshot: Snapshot, deltas: dict[str, RelationDelta]
    ) -> list[CachedView]:
        """Route one commit's deltas through the view cache (pre-install).

        For every entry at the pre-commit version, against the delta
        footprint (:func:`~repro.incremental.delta.delta_footprint`):

        * subtree untouched → **carry forward**: the same entry (same
          data object) is republished at the successor version;
        * dirty at exactly its own node, insert-only, updater intact and
          the engine not pinned to ``incremental_mode="rescan"`` →
          **numeric in-place refresh**: the producing group re-runs over
          a trie of just the inserted tuples and merges O(|Δ|)-style
          (:meth:`~repro.incremental.maintain.MaintainedBatch._merge_delta_outputs`);
        * anything else → **invalidate**: the key simply never exists at
          the successor (the old entry stays valid for readers still
          pinned to the old version and dies with it).

        Returns the entries to publish at the successor version after
        install. Runs under the commit mutex on the committer thread.
        """
        cache = self.view_cache
        if cache is None:
            return []
        footprint = delta_footprint(deltas)
        changed = set(footprint)
        rescan_only = self.engine.config.incremental_mode == "rescan"
        refreshed: list[CachedView] = []
        for _key, entry in cache.entries_at(snapshot.version):
            dirty = entry.subtree & changed
            if not dirty:
                refreshed.append(entry)
                continue
            if (
                dirty == {entry.node}
                and footprint[entry.node]
                and entry.updater is not None
                and not rescan_only
            ):
                fresh = self._numeric_refresh(
                    entry, deltas[entry.node], snapshot.version
                )
                if fresh is not None:
                    refreshed.append(fresh)
        return refreshed

    def _numeric_refresh(
        self, entry: CachedView, delta: RelationDelta, version: int
    ) -> CachedView | None:
        """One cached view updated in place by an insert-only delta.

        The exact numeric rule of the incremental maintainer, driven from
        the cache: re-run the producing group's compiled code over a trie
        of just the (shared-predicate-filtered) inserted tuples, binding
        the *cached* child views at the pre-commit version, and merge the
        emitted deltas copy-on-write into the cached data. Returns None —
        falling back to plain invalidation — when a consumed view was
        evicted meanwhile or the refresh fails for any reason; a cache
        refresh must never fail the commit.
        """
        updater = entry.updater
        compiled = updater.compiled
        consumed_data: dict[str, dict] = {}
        for name, identity in updater.consumed:
            centry = self.view_cache.peek(ViewKey(identity, version))
            if centry is None:
                return None
            consumed_data[name] = centry.data
        plan = compiled.plans[updater.group_index]
        try:
            inserts = delta.inserts
            relation = apply_predicates(
                inserts,
                local_predicates(inserts.attribute_names, updater.shared),
            )
            trie = TrieIndex(relation, plan.order)
            tries = partition_tries(
                plan,
                trie,
                self.engine.config.partitions,
                self.engine.config.parallel_threshold,
                self.engine._partition_concurrency(),
            )
            outputs = self.engine._execute_group_partitioned(
                compiled,
                updater.group_index,
                tries,
                consumed_data,
                {
                    name: view.group_by
                    for name, view in compiled.view_plan.views.items()
                },
                updater.functions,
                snapshot=None,
                shared=updater.shared,
            )
            merged, _changed = MaintainedBatch._merge_delta_outputs(
                entry.data, outputs[updater.view_name]
            )
        except Exception:
            return None
        return CachedView(
            data=merged,
            nbytes=estimate_view_bytes(merged),
            node=entry.node,
            subtree=entry.subtree,
            identity=entry.identity,
            updater=updater,
        )

    def _republish_handle_views(
        self, handle: MaintainedBatch, result: ApplyResult, version: int
    ) -> None:
        """Publish a maintained handle's just-refreshed views at ``version``.

        The maintainer already computed exact successor contents for
        every view the commit touched (``result.refreshed_views``);
        publishing them keeps hot views warm for plain :meth:`run`
        requests sharing the structure, instead of cold-starting every
        reader after a write. Handle view stores are copy-on-write, so
        sharing the data by reference is safe.
        """
        cache = self.view_cache
        if cache is None or not result.refreshed_views:
            return
        compiled = handle.compiled
        identities = view_identities(compiled)
        signatures = compiled.view_plan.view_signatures()
        producer = {
            name: index
            for index, plan in enumerate(compiled.plans)
            for name in plan.produced_views
        }
        store = handle.view_store()
        for name in result.refreshed_views:
            data = store.get(name)
            if data is None or name not in producer:
                continue
            index = producer[name]
            updater = ViewUpdater(
                compiled=compiled,
                view_name=name,
                group_index=index,
                functions=compiled.functions,
                shared=compiled.shared_predicates,
                consumed=tuple(
                    (consumed, identities[consumed])
                    for consumed in compiled.plans[index].consumed_views
                ),
            )
            cache.put(
                ViewKey(identities[name], version),
                CachedView(
                    data=data,
                    nbytes=estimate_view_bytes(data),
                    node=compiled.view_plan.views[name].source,
                    subtree=signatures[name].subtree,
                    identity=identities[name],
                    updater=updater,
                ),
            )

    def maintain(self, batch: QueryBatch) -> MaintainedBatch:
        """Compile a batch once and keep its results incrementally maintained.

        The handle is *bound to this server*: its ``apply(inserts=...,
        deletes=...)`` routes through the group-commit queue (blocking
        for the covering commit's :class:`ApplyResult`), and **every**
        server write — :meth:`apply` or any other handle — refreshes its
        materialised results as part of the commit, so the handle always
        serves the server's current version. Any number of handles may
        coexist with any number of writers; the one-lineage restriction
        applies only to handles built directly on an engine.
        """
        with self._commit_mutex:
            if self._closed:
                raise PlanError("AggregateServer is closed")
            handle = self.engine.maintain(batch)
            handle._bind_router(self)
            self._handles.add(handle)
        return handle

    # ------------------------------------------------------------------- admin
    @property
    def version(self) -> int:
        """The current snapshot version served to new requests."""
        return self.engine.snapshot().version

    def stats(self) -> ServerStats:
        """Point-in-time serving counters (see :class:`ServerStats`).

        The snapshot version, write counters and live-snapshot count are
        read together under the commit lock — one coherent reading that
        cannot tear against a concurrent group commit.
        """
        with self._lock:
            inflight = len(self._inflight)
            submitted = self._submitted
            coalesced = self._coalesced
        with self._commit_mutex:
            snapshot_version = self.engine.snapshot().version
            writes = self._writes.stats()
            live_snapshots = len(self.engine._snapshots.retained_versions())
            view_cache = (
                self.view_cache.stats() if self.view_cache is not None else None
            )
        return ServerStats(
            plan_cache=self.plan_cache.stats(),
            submitted=submitted,
            coalesced=coalesced,
            inflight=inflight,
            snapshot_version=snapshot_version,
            writes=writes,
            live_snapshots=live_snapshots,
            view_cache=view_cache,
        )

    def close(self) -> None:
        """Shut the server down; idempotent and safe against concurrent writers.

        Documented choice: close **flushes** — every delta already queued
        when the close begins still group-commits (close is a durability
        point), then the committer exits; writers that race the close are
        refused with a clear ``PlanError`` (including writers that were
        *blocking* for queue space — they are woken, not left hanging),
        and so are new submissions. A second (or concurrent) ``close()``
        is a no-op. Finally drains the request pool and releases the
        engine's owned OS resources (the ``executor="process"`` worker
        pool and its shared-memory segments, when configured).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._writes.close(flush=True)
        self._pool.shutdown(wait=True)
        if self._view_reclaim_hook is not None:
            self.engine._snapshots.remove_reclaim_hook(self._view_reclaim_hook)
            self._view_reclaim_hook = None
        self.engine.close()

    def __enter__(self) -> "AggregateServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        s = self.stats()  # one coherent reading (see stats())
        writes = s.writes or WriteStats()
        if s.view_cache is None:
            views = "off"
        else:
            v = s.view_cache
            views = (
                f"{v.entries}e/{v.weight}B "
                f"h{v.hits}/m{v.misses}/e{v.evictions}"
            )
        return (
            f"AggregateServer(version={s.snapshot_version}, "
            f"plans={s.plan_cache.entries}/{s.plan_cache.capacity}, "
            f"hit_rate={s.plan_cache.hit_rate:.2f}, inflight={s.inflight}, "
            f"writes={writes.committed_writes}/{writes.committed_groups}g, "
            f"views={views}, live_snapshots={s.live_snapshots})"
        )
