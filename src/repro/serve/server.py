"""The compile-once serving front: plan cache + snapshots + async submission.

:class:`AggregateServer` wraps one :class:`~repro.core.engine.LMFAO`
engine for serving heavy concurrent traffic:

* **structural plan cache** — every request is fingerprinted
  (:func:`~repro.serve.fingerprint.batch_fingerprint`); structurally
  identical batches reuse one :class:`~repro.core.engine.CompiledBatch`
  with predicate constants re-bound at execution
  (:func:`~repro.serve.fingerprint.bind_batch`), LRU-bounded with hit/miss
  stats (:class:`~repro.serve.plancache.PlanCache`);
* **snapshot-isolated run/maintain** — reads pin the engine's current
  :class:`~repro.core.snapshot.Snapshot` and never block behind writers;
  :meth:`apply` (base-relation updates) and
  :meth:`maintain` handles (incrementally maintained results) install
  successor versions atomically;
* **async submission** — :meth:`submit` returns a
  :class:`concurrent.futures.Future` over a shared worker pool, and
  identical in-flight requests (same fingerprint, same constants, same
  snapshot version) **coalesce** onto one future: a thundering herd of
  the same dashboard query costs one execution.

Examples
--------
Structurally identical batches compile once; changed constants re-bind::

    >>> from repro.data import favorita
    >>> from repro.query import QueryBatch, parse_query
    >>> server = AggregateServer(favorita(scale=0.02, seed=7))
    >>> cold = server.run(QueryBatch(
    ...     [parse_query("SELECT SUM(units) FROM D WHERE units <= 3", "Q")]))
    >>> warm = server.run(QueryBatch(
    ...     [parse_query("SELECT SUM(units) FROM D WHERE units <= 7", "Q")]))
    >>> stats = server.stats()
    >>> (stats.plan_cache.misses, stats.plan_cache.hits)
    (1, 1)
    >>> "compile" in cold.timings, "compile" in warm.timings
    (True, False)

Async submission — futures over a shared pool, snapshot pinned at
submission time (identical in-flight requests additionally coalesce
onto one future; see :meth:`AggregateServer.submit`)::

    >>> batch = QueryBatch([parse_query("SELECT SUM(units) FROM D", "S")])
    >>> futures = [server.submit(batch) for _ in range(4)]
    >>> len({f.result()["S"].scalar() for f in futures})
    1
    >>> server.close()
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.engine import EngineConfig, LMFAO, RunResult
from repro.data.catalog import Database
from repro.incremental.delta import stage_deltas
from repro.incremental.maintain import MaintainedBatch
from repro.query.batch import QueryBatch
from repro.serve.fingerprint import (
    BatchFingerprint,
    Constant,
    batch_fingerprint,
    bind_batch,
)
from repro.serve.plancache import CacheStats, PlanCache
from repro.util.errors import PlanError


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time serving counters.

    ``plan_cache`` — the structural cache's hit/miss/eviction counters;
    ``submitted`` — futures actually launched by :meth:`AggregateServer.submit`;
    ``coalesced`` — submissions absorbed by an identical in-flight future;
    ``inflight`` — submissions currently executing or queued;
    ``snapshot_version`` — the engine's current data version.
    """

    plan_cache: CacheStats
    submitted: int = 0
    coalesced: int = 0
    inflight: int = 0
    snapshot_version: int = 0


class AggregateServer:
    """One process serving aggregate batches and updates concurrently.

    Construct once per database; call from any number of threads. The
    full concurrency contract (what a ``run`` observes while an ``apply``
    is in flight, and why there is exactly one maintenance lineage per
    server) is documented in ``docs/serving.md``.

    Parameters
    ----------
    db:
        The database to serve (becomes snapshot version 0).
    config:
        Engine configuration; enters every plan fingerprint.
    plan_cache_capacity:
        LRU bound on distinct batch structures kept compiled (default 32).
    request_workers:
        Threads executing :meth:`submit` futures (default 4). :meth:`run`
        executes on the caller's thread and does not use the pool.
    """

    def __init__(
        self,
        db: Database,
        config: EngineConfig | None = None,
        *,
        plan_cache_capacity: int = 32,
        request_workers: int = 4,
    ) -> None:
        if not isinstance(request_workers, int) or request_workers < 1:
            raise PlanError(
                f"AggregateServer request_workers must be an integer >= 1, "
                f"got {request_workers!r}"
            )
        self.engine = LMFAO(db, config)
        self.plan_cache = PlanCache(plan_cache_capacity)
        self._pool = ThreadPoolExecutor(
            max_workers=request_workers, thread_name_prefix="lmfao-serve"
        )
        self._inflight: dict[tuple, Future] = {}
        self._lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._submitted = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------ queries
    def run(self, batch: QueryBatch) -> RunResult:
        """Execute a batch synchronously against the current snapshot.

        Pins the snapshot first, then resolves the plan: a structural
        cache hit skips compilation entirely (``"compile"`` is absent
        from the result's timings) and re-binds the request's constants;
        a miss compiles and populates the cache. Safe from any thread.
        """
        snapshot = self.engine.snapshot()
        fingerprint, _ = batch_fingerprint(batch, self.engine.tree, self.engine.config)
        return self._execute_pinned(batch, fingerprint, snapshot)

    def submit(self, batch: QueryBatch) -> "Future[RunResult]":
        """Execute a batch asynchronously; returns an awaitable future.

        The snapshot is pinned at *submission* time — the future's result
        reflects the data version current when ``submit`` was called,
        regardless of maintenance applied while it waited in the queue.
        Identical in-flight requests — same structure, same constants,
        same snapshot version — coalesce onto one future (the request is
        executed once; every submitter gets the same ``RunResult``).
        """
        snapshot = self.engine.snapshot()
        fingerprint, constants = batch_fingerprint(
            batch, self.engine.tree, self.engine.config
        )
        key = (fingerprint, constants, snapshot.version)
        with self._lock:
            # checked under the lock: a close() racing this submit either
            # ran before (we raise) or runs after (shutdown(wait=True)
            # drains the future we just scheduled)
            if self._closed:
                raise PlanError("AggregateServer is closed")
            future = self._inflight.get(key)
            if future is not None:
                self._coalesced += 1
                return future
            future = self._pool.submit(
                self._execute_pinned, batch, fingerprint, snapshot
            )
            self._submitted += 1
            self._inflight[key] = future
        # registered OUTSIDE the lock: a future that completed already runs
        # its callback synchronously here, and _forget takes the same lock
        future.add_done_callback(lambda _f, _k=key: self._forget(_k))
        return future

    def _forget(self, key: tuple) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    def _execute_pinned(
        self, batch: QueryBatch, fingerprint: BatchFingerprint, snapshot
    ) -> RunResult:
        """Resolve the plan (cache or compile) and execute on ``snapshot``."""
        compiled = self.plan_cache.get(fingerprint)
        if compiled is None:
            # Two racing first requests may both compile; both results are
            # correct and the cache keeps the last one (see PlanCache.put).
            from repro.util.timer import Stopwatch

            watch = Stopwatch()
            with watch.lap("compile"):
                compiled = self.engine.compile(batch, snapshot=snapshot)
            self.plan_cache.put(fingerprint, compiled)
            return self.engine.execute(compiled, watch=watch, snapshot=snapshot)
        binding = bind_batch(compiled, batch)
        return self.engine.execute(compiled, snapshot=snapshot, binding=binding)

    # ------------------------------------------------------------------ updates
    def apply(self, inserts=None, deletes=None) -> int:
        """Apply base-relation updates; returns the new snapshot version.

        Builds the successor snapshot off to the side (unchanged
        relations and tries shared structurally) and installs it
        atomically: queries pinned before the install keep their version,
        queries arriving after see the new one — never a half-applied
        delta. Plan-cache entries stay valid (they are pure structure).
        Empty deltas return the current version unchanged.

        Writers serialise on the server's write lock. Do not mix with a
        :meth:`maintain` handle's own ``apply`` — one maintenance lineage
        per engine (a conflicting writer raises
        :class:`~repro.util.errors.PlanError`, see
        :class:`~repro.core.snapshot.SnapshotStore`).
        """
        with self._write_lock:
            snapshot = self.engine.snapshot()
            _, staged = stage_deltas(snapshot.db, inserts, deletes)
            if not staged:
                return snapshot.version
            successor = snapshot.with_relations(staged)
            self.engine._snapshots.install(successor)
            return successor.version

    def maintain(self, batch: QueryBatch) -> MaintainedBatch:
        """Compile a batch once and keep its results incrementally maintained.

        The handle's ``apply(inserts=..., deletes=...)`` refreshes its
        materialised results at delta cost **and** installs the successor
        snapshot into this server, so subsequent :meth:`run` /
        :meth:`submit` calls see the updated data. Use *either* maintained
        handles *or* :meth:`apply` as the server's single writer lineage.
        """
        return self.engine.maintain(batch)

    # ------------------------------------------------------------------- admin
    @property
    def version(self) -> int:
        """The current snapshot version served to new requests."""
        return self.engine.snapshot().version

    def stats(self) -> ServerStats:
        """Point-in-time serving counters (see :class:`ServerStats`)."""
        with self._lock:
            inflight = len(self._inflight)
            submitted = self._submitted
            coalesced = self._coalesced
        return ServerStats(
            plan_cache=self.plan_cache.stats(),
            submitted=submitted,
            coalesced=coalesced,
            inflight=inflight,
            snapshot_version=self.engine.snapshot().version,
        )

    def close(self) -> None:
        """Drain the worker pool, reject further submissions, and release
        the engine's owned OS resources (the ``executor="process"`` worker
        pool and its shared-memory segments, when configured)."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)
        self.engine.close()

    def __enter__(self) -> "AggregateServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"AggregateServer(version={s.snapshot_version}, "
            f"plans={s.plan_cache.entries}/{s.plan_cache.capacity}, "
            f"hit_rate={s.plan_cache.hit_rate:.2f}, inflight={s.inflight})"
        )
