"""Generic thread-safe LRU machinery shared by the serving caches.

Both serving caches — the structural :class:`~repro.serve.plancache.PlanCache`
(entry-count bounded) and the materialized
:class:`~repro.serve.viewcache.ViewCache` (byte bounded) — are the same
data structure: an ``OrderedDict`` in LRU discipline under one lock, with
hit/miss/eviction counters. :class:`LRUCache` is that structure, bounded
by **entry count** (``capacity``), by **total weight** (``max_weight``,
with a caller-supplied weight per entry — bytes, for the view cache), or
both. Hits refresh recency; inserts evict from the cold end until both
bounds hold.

All operations are O(1) under the lock except the bulk removals
(:meth:`LRUCache.remove_where`), which are O(entries) and exist for
version-wide invalidation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.util.errors import PlanError


@dataclass(frozen=True)
class CacheStats:
    """Counters of one LRU cache at a point in time.

    ``hits`` / ``misses`` count ``get`` outcomes, ``evictions`` counts
    entries dropped from the cold end on insert (bound enforcement only —
    explicit removals and version invalidations are not evictions);
    ``entries`` / ``capacity`` describe entry-count occupancy and
    ``weight`` / ``max_weight`` weighted occupancy (bytes, for the view
    cache; both 0/None for purely count-bounded caches).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    capacity: int = 0
    weight: int = 0
    max_weight: int | None = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """Thread-safe LRU mapping with count and/or weight bounds.

    ``capacity`` bounds the number of entries (None = unbounded by
    count); ``max_weight`` bounds the sum of per-entry weights passed to
    :meth:`put` (None = unbounded by weight). At least one bound must be
    given. An entry heavier than ``max_weight`` on its own is admitted
    and immediately evicted — the bound always holds after ``put``.
    """

    def __init__(
        self, capacity: int | None = None, max_weight: int | None = None
    ) -> None:
        if capacity is None and max_weight is None:
            raise PlanError("LRUCache needs a capacity or a max_weight bound")
        if capacity is not None and (not isinstance(capacity, int) or capacity < 1):
            raise PlanError(
                f"LRUCache capacity must be an integer >= 1, got {capacity!r}"
            )
        if max_weight is not None and (
            not isinstance(max_weight, int) or max_weight < 0
        ):
            raise PlanError(
                f"LRUCache max_weight must be an integer >= 0, got {max_weight!r}"
            )
        self._capacity = capacity
        self._max_weight = max_weight
        self._entries: "OrderedDict[object, object]" = OrderedDict()
        self._weights: dict = {}
        self._weight = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def max_weight(self) -> int | None:
        return self._max_weight

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key):
        """The cached value, refreshed to most-recently-used; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key):
        """The cached value without touching recency or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key, value, weight: int = 0) -> None:
        """Insert (or refresh) an entry, evicting from the cold end if full.

        Racing puts of the same key are benign: the last write wins and
        both values remain individually valid (holders keep references).
        """
        with self._lock:
            self._weight -= self._weights.pop(key, 0)
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._weights[key] = weight
            self._weight += weight
            while self._entries and (
                (self._capacity is not None and len(self._entries) > self._capacity)
                or (self._max_weight is not None and self._weight > self._max_weight)
            ):
                cold, _ = self._entries.popitem(last=False)
                self._weight -= self._weights.pop(cold, 0)
                self._evictions += 1

    def remove(self, key) -> None:
        """Drop one entry if present (not counted as an eviction)."""
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self._weight -= self._weights.pop(key, 0)

    def remove_where(self, predicate: Callable[[object], bool]) -> int:
        """Drop every entry whose key matches; returns how many (O(entries)).

        Exists for exact invalidation — dirty view keys, dead snapshot
        versions — and therefore does not count toward ``evictions``.
        """
        with self._lock:
            dead = [key for key in self._entries if predicate(key)]
            for key in dead:
                del self._entries[key]
                self._weight -= self._weights.pop(key, 0)
            return len(dead)

    def keys(self) -> list:
        """A point-in-time list of keys, coldest first (no recency effect)."""
        with self._lock:
            return list(self._entries)

    def items(self) -> list:
        """A point-in-time list of ``(key, value)`` pairs, coldest first."""
        with self._lock:
            return list(self._entries.items())

    def clear(self) -> None:
        """Drop every entry (stats counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._weights.clear()
            self._weight = 0

    def stats(self) -> CacheStats:
        """A consistent point-in-time snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self._capacity or 0,
                weight=self._weight,
                max_weight=self._max_weight,
            )
