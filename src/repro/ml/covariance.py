"""The covariance aggregate batch: Σ = Σ_x x xᵀ as group-by queries.

Section 3 of the paper maps each entry of the non-centred covariance matrix
to one aggregate query over ``D``:

* both attributes continuous → ``SELECT SUM(Xj*Xk) FROM D``;
* one categorical → ``SELECT Xj, SUM(Xk) FROM D GROUP BY Xj``;
* both categorical → ``SELECT Xj, Xk, SUM(1) FROM D GROUP BY Xj, Xk``.

The intercept behaves as a continuous feature fixed to 1, so its pairings
degrade to ``SUM(Xk)``, ``SUM(1)`` and per-attribute histograms. For the
Retailer feature set this yields the order of magnitude the paper reports
(814 aggregates); the exact count for any spec is
``covariance_batch(spec).num_aggregates``.

:func:`assemble_sigma` turns the batch results into the dense one-hot
encoded matrix that batch gradient descent consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.features import FeatureSpec
from repro.query.aggregates import Aggregate, Factor
from repro.query.batch import QueryBatch
from repro.query.query import Query, QueryResult
from repro.util.errors import QueryError


def covariance_batch(spec: FeatureSpec) -> QueryBatch:
    """All Σ-entry queries for a feature spec (upper triangle, one per entry).

    Continuous features (label first, then ``spec.continuous``) are indexed
    ``c0, c1, ...``; categorical features ``t0, t1, ...``. Query names
    encode the entry: ``sigma_c{i}_c{j}``, ``sigma_t{i}_c{j}``,
    ``sigma_t{i}_t{j}``, plus ``sigma_1_1`` (count), ``sigma_1_c{j}``
    (sums) and ``sigma_1_t{j}`` (histograms) for the intercept row.
    """
    cont = (spec.label,) + spec.continuous
    cat = spec.categorical
    queries: list[Query] = []

    queries.append(Query("sigma_1_1", aggregates=(Aggregate.count(),)))
    for j, attr in enumerate(cont):
        queries.append(Query(f"sigma_1_c{j}", aggregates=(Aggregate.sum(attr),)))
    for j, attr in enumerate(cat):
        queries.append(
            Query(f"sigma_1_t{j}", group_by=(attr,), aggregates=(Aggregate.count(),))
        )

    for i, a in enumerate(cont):
        for j in range(i, len(cont)):
            b = cont[j]
            queries.append(
                Query(
                    f"sigma_c{i}_c{j}",
                    aggregates=(Aggregate.product((Factor(a), Factor(b))),),
                )
            )
    for i, t in enumerate(cat):
        for j, c in enumerate(cont):
            queries.append(
                Query(f"sigma_t{i}_c{j}", group_by=(t,), aggregates=(Aggregate.sum(c),))
            )
    for i, t in enumerate(cat):
        for j in range(i + 1, len(cat)):
            u = cat[j]
            queries.append(
                Query(
                    f"sigma_t{i}_t{j}",
                    group_by=(t, u),
                    aggregates=(Aggregate.count(),),
                )
            )
    return QueryBatch(queries)


@dataclass
class FeatureIndex:
    """Maps features (and categorical values) to Σ row/column indices.

    Layout: ``[intercept, label, continuous..., one-hot categories...]``.
    The label column is included because the paper folds the label into the
    feature vector with parameter −1.
    """

    spec: FeatureSpec
    #: categorical attribute -> sorted list of observed category values.
    categories: dict[str, list]
    offsets: dict[str, int]
    dimension: int

    @property
    def label_column(self) -> int:
        return 1

    def continuous_column(self, attr: str) -> int:
        if attr == self.spec.label:
            return self.label_column
        return 2 + self.spec.continuous.index(attr)

    def categorical_column(self, attr: str, value) -> int:
        return self.offsets[attr] + self.categories[attr].index(value)

    def column_names(self) -> list[str]:
        names = ["1", self.spec.label] + list(self.spec.continuous)
        for attr in self.spec.categorical:
            names.extend(f"{attr}={v}" for v in self.categories[attr])
        return names


def _build_index(spec: FeatureSpec, results: dict[str, QueryResult]) -> FeatureIndex:
    categories: dict[str, list] = {}
    for i, attr in enumerate(spec.categorical):
        hist = results[f"sigma_1_t{i}"]
        categories[attr] = sorted(key[0] for key in hist.groups)
    offsets: dict[str, int] = {}
    offset = 2 + len(spec.continuous)
    for attr in spec.categorical:
        offsets[attr] = offset
        offset += len(categories[attr])
    return FeatureIndex(
        spec=spec, categories=categories, offsets=offsets, dimension=offset
    )


def assemble_sigma(
    spec: FeatureSpec, results: dict[str, QueryResult]
) -> tuple[np.ndarray, FeatureIndex, float]:
    """Build (Σ, index, |D|) from the results of :func:`covariance_batch`."""
    index = _build_index(spec, results)
    dim = index.dimension
    sigma = np.zeros((dim, dim), dtype=np.float64)
    cont = (spec.label,) + spec.continuous
    count = results["sigma_1_1"].scalar()
    if count <= 0:
        raise QueryError("covariance batch saw an empty join")

    sigma[0, 0] = count
    for j, attr in enumerate(cont):
        value = results[f"sigma_1_c{j}"].scalar()
        col = index.continuous_column(attr)
        sigma[0, col] = sigma[col, 0] = value
    for j, attr in enumerate(spec.categorical):
        for key, values in results[f"sigma_1_t{j}"].groups.items():
            col = index.categorical_column(attr, key[0])
            sigma[0, col] = sigma[col, 0] = values[0]

    for i, a in enumerate(cont):
        for j in range(i, len(cont)):
            b = cont[j]
            value = results[f"sigma_c{i}_c{j}"].scalar()
            ca, cb = index.continuous_column(a), index.continuous_column(b)
            sigma[ca, cb] = sigma[cb, ca] = value
    for i, t in enumerate(spec.categorical):
        for j, c in enumerate(cont):
            col_c = index.continuous_column(c)
            for key, values in results[f"sigma_t{i}_c{j}"].groups.items():
                col_t = index.categorical_column(t, key[0])
                sigma[col_t, col_c] = sigma[col_c, col_t] = values[0]
    for i, t in enumerate(spec.categorical):
        # diagonal block of a one-hot attribute: counts on the diagonal
        for key, values in results[f"sigma_1_t{i}"].groups.items():
            col = index.categorical_column(t, key[0])
            sigma[col, col] = values[0]
        for j in range(i + 1, len(spec.categorical)):
            u = spec.categorical[j]
            for key, values in results[f"sigma_t{i}_t{j}"].groups.items():
                col_t = index.categorical_column(t, key[0])
                col_u = index.categorical_column(u, key[1])
                sigma[col_t, col_u] = sigma[col_u, col_t] = values[0]
    return sigma, index, count
