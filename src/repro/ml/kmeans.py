"""Weighted k-means (Lloyd's algorithm) — the clustering substrate.

Rk-means needs weighted k-means twice: per-dimension on the projection
histograms (step 2) and on the weighted grid coreset (step 4); the paper's
quality metric also needs conventional Lloyd's on the full data. One
seeded, weighted implementation with k-means++ initialisation covers all
three uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Centroids plus the weighted within-cluster sum of squares."""

    centroids: np.ndarray  # (k, dim)
    assignments: np.ndarray  # (n,) cluster index per input point
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return len(self.centroids)


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    # (n, k) matrix of squared euclidean distances
    diff = points[:, None, :] - centroids[None, :, :]
    return np.einsum("nkd,nkd->nk", diff, diff)


def _kmeans_pp_init(
    points: np.ndarray, weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = len(points)
    first = rng.choice(n, p=weights / weights.sum())
    centroids = [points[first]]
    closest = np.einsum("nd,nd->n", points - centroids[0], points - centroids[0])
    for _ in range(1, k):
        scores = closest * weights
        total = scores.sum()
        if total <= 0:
            idx = int(rng.integers(0, n))
        else:
            idx = int(rng.choice(n, p=scores / total))
        centroids.append(points[idx])
        dist = np.einsum("nd,nd->n", points - centroids[-1], points - centroids[-1])
        closest = np.minimum(closest, dist)
    return np.stack(centroids)


def weighted_kmeans(
    points: np.ndarray,
    weights: np.ndarray | None = None,
    k: int = 5,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm on weighted points.

    ``points`` is ``(n, dim)`` (1-D inputs may be passed as ``(n,)``);
    ``weights`` defaults to uniform. ``k`` is clamped to the number of
    distinct points. The weighted inertia decreases monotonically — a
    property the tests assert.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[:, None]
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    weights = (
        np.ones(n, dtype=np.float64)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if len(weights) != n or np.any(weights < 0):
        raise ValueError("weights must be non-negative, one per point")
    k = min(k, len(np.unique(points, axis=0)))
    rng = np.random.default_rng(seed)

    centroids = _kmeans_pp_init(points, weights, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    inertia = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dist = _squared_distances(points, centroids)
        assignments = dist.argmin(axis=1)
        new_inertia = float((dist[np.arange(n), assignments] * weights).sum())
        for c in range(k):
            mask = assignments == c
            total = weights[mask].sum()
            if total > 0:
                centroids[c] = (points[mask] * weights[mask, None]).sum(0) / total
        if inertia - new_inertia <= tolerance * max(1.0, abs(new_inertia)):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        iterations=iterations,
    )


def weighted_inertia(
    points: np.ndarray, weights: np.ndarray | None, centroids: np.ndarray
) -> float:
    """Weighted SSE of ``points`` against fixed ``centroids``.

    Used for the paper's Figure 4(d) metric: the intra-cluster distance of
    the Rk-means centroids evaluated on the *full* dataset.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[:, None]
    if weights is None:
        weights = np.ones(len(points))
    dist = _squared_distances(points, centroids)
    return float((dist.min(axis=1) * np.asarray(weights)).sum())
