"""Feature extraction specs: which join attributes feed the models.

The paper's dataset ``D`` is "defined by a feature extraction query with n
attributes over a multi-relational database" (Section 3). A
:class:`FeatureSpec` names the label, the continuous features and the
categorical (one-hot) features; the standard specs for the two benchmark
databases mirror the published experiments (label ``units`` for Favorita,
``inventoryunits`` for Retailer, all other non-key attributes as features).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.catalog import Database
from repro.data.schema import DatabaseSchema
from repro.data.types import AttributeKind
from repro.util.errors import QueryError


@dataclass(frozen=True)
class FeatureSpec:
    """Label + feature sets for the in-database ML applications.

    ``continuous`` features enter Σ through ``SUM(Xj*Xk)``; ``categorical``
    features are one-hot encoded, i.e. become group-by attributes. The
    label is always treated as a continuous feature (its parameter is
    fixed to −1, paper Section 3).
    """

    label: str
    continuous: tuple[str, ...]
    categorical: tuple[str, ...]

    def __post_init__(self) -> None:
        everything = (self.label,) + self.continuous + self.categorical
        if len(set(everything)) != len(everything):
            raise QueryError("label/continuous/categorical must be disjoint")

    @property
    def num_features(self) -> int:
        """n — the number of attributes in the feature vector (no label)."""
        return len(self.continuous) + len(self.categorical)

    @property
    def all_attributes(self) -> tuple[str, ...]:
        return (self.label,) + self.continuous + self.categorical

    def validate_against(self, schema: DatabaseSchema) -> None:
        for attr in self.all_attributes:
            schema.attribute_kind(attr)  # raises on unknown attributes


def infer_features(
    db: Database,
    label: str,
    exclude: tuple[str, ...] = (),
    max_categorical_domain: int = 2000,
) -> FeatureSpec:
    """Derive a spec from attribute kinds: continuous columns stay
    continuous; categorical columns with a bounded domain are one-hot
    features; join keys and anything in ``exclude`` are dropped."""
    exclude_set = set(exclude) | {label}
    continuous: list[str] = []
    categorical: list[str] = []
    for attr in db.schema.all_attributes:
        if attr in exclude_set:
            continue
        kind = db.schema.attribute_kind(attr)
        if kind is AttributeKind.CONTINUOUS:
            continuous.append(attr)
        elif db.domain_size(attr) <= max_categorical_domain:
            categorical.append(attr)
    return FeatureSpec(
        label=label, continuous=tuple(continuous), categorical=tuple(categorical)
    )


def favorita_features(db: Database) -> FeatureSpec:
    """The Favorita regression task: predict ``units``.

    Join keys (``date``, ``store``, ``item``) are used as categorical
    features, as in the published Favorita experiments.
    """
    return FeatureSpec(
        label="units",
        continuous=("txns", "price"),
        categorical=(
            "store",
            "item",
            "promo",
            "htype",
            "locale",
            "transferred",
            "city",
            "state",
            "stype",
            "cluster",
            "family",
            "class",
            "perishable",
        ),
    )


def retailer_features(db: Database) -> FeatureSpec:
    """The Retailer regression task: predict ``inventoryunits``.

    All 33 continuous measures plus the low-domain categorical attributes,
    mirroring the published Retailer feature set.
    """
    continuous = (
        # Location measures
        "tot_area_sq_ft",
        "sell_area_sq_ft",
        "avghhi",
        "supertargetdistance",
        "supertargetdrivetime",
        "targetdistance",
        "targetdrivetime",
        "walmartdistance",
        "walmartdrivetime",
        "walmartsupercenterdistance",
        "walmartsupercenterdrivetime",
        # Census measures
        "population",
        "white",
        "asian",
        "pacific",
        "blackafrican",
        "medianage",
        "occupiedhouseunits",
        "houseunits",
        "families",
        "households",
        "husbwife",
        "males",
        "females",
        "householdschildren",
        "hispanic",
        # Item / Weather measures
        "prize",
        "maxtemp",
        "mintemp",
        "meanwind",
    )
    categorical = (
        "rgn_cd",
        "clim_zn_nbr",
        "subcategory",
        "category",
        "categoryCluster",
        "rain",
        "snow",
        "thunder",
    )
    return FeatureSpec(
        label="inventoryunits", continuous=continuous, categorical=categorical
    )
