"""Rk-means: relational clustering via a weighted grid coreset (paper §3).

The four steps, with LMFAO computing steps 1 and 3:

1. per-dimension histograms — ``SELECT Xj, SUM(1) FROM D GROUP BY Xj``,
   one query per clustering dimension (one shared LMFAO batch);
2. weighted 1-D k-means on every projection (``repro.ml.kmeans``);
3. the **grid coreset**: the database is extended with one cluster
   assignment relation ``A_j(Xj, c_Xj)`` per dimension and the single query
   ``SELECT c_X1..c_Xn, SUM(1) FROM D ⋈ A_1 ⋈ ... GROUP BY c_X1..c_Xn``
   computes every grid point's weight — ``n+1`` LMFAO queries in total,
   exactly as the paper counts;
4. weighted k-means on the grid coreset gives the final centroids.

The quality metrics of the demo's Figure 4(d) — relative intra-cluster
distance versus conventional Lloyd's (averaged over ten runs) and the
relative coreset size — are computed by :func:`evaluate_against_lloyds`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import LMFAO
from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import AttributeKind
from repro.ml.kmeans import KMeansResult, weighted_inertia, weighted_kmeans
from repro.query.aggregates import Aggregate
from repro.query.batch import QueryBatch
from repro.query.query import Query
from repro.util.errors import QueryError


@dataclass
class RkMeansResult:
    """Centroids plus the bookkeeping the demo UI displays."""

    dimensions: tuple[str, ...]
    k: int
    centroids: np.ndarray  # (k, n_dims)
    grid_points: np.ndarray  # (m, n_dims)
    grid_weights: np.ndarray  # (m,)
    num_queries: int  # n + 1, as the paper counts
    #: wall time per step: aggregates1, kmeans_1d, grid_aggregate, kmeans_grid
    step_seconds: dict[str, float] = field(default_factory=dict)
    per_dimension_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def coreset_size(self) -> int:
        return len(self.grid_points)


def _assignment_relation(
    attr: str, kind: AttributeKind, values: np.ndarray, assignment: np.ndarray
) -> Relation:
    """The relation ``A_j(Xj, c_Xj)`` mapping values to cluster ids."""
    value_attr = Attribute(attr, kind)
    cluster_attr = Attribute.categorical(f"c_{attr}")
    schema = RelationSchema(f"A_{attr}", (value_attr, cluster_attr))
    return Relation(schema, {attr: values, f"c_{attr}": assignment})


def rk_means(
    db: Database,
    dimensions: tuple[str, ...],
    k: int,
    seed: int = 0,
    engine_factory=None,
) -> RkMeansResult:
    """Run the four Rk-means steps over ``db``.

    ``dimensions`` are the clustering attributes (projections of ``D``).
    ``engine_factory`` defaults to plain :class:`LMFAO` and exists so
    benchmarks can inject configured engines.
    """
    if not dimensions:
        raise QueryError("rk_means needs at least one dimension")
    make_engine = engine_factory or (lambda database: LMFAO(database))
    steps: dict[str, float] = {}
    per_dim: dict[str, float] = {}

    # ---- step 1: one shared batch of per-dimension histograms --------------
    start = time.perf_counter()
    engine = make_engine(db)
    histogram_batch = QueryBatch(
        [
            Query(f"proj_{attr}", group_by=(attr,), aggregates=(Aggregate.count(),))
            for attr in dimensions
        ]
    )
    run = engine.run(histogram_batch)
    steps["step1_histograms"] = time.perf_counter() - start

    # ---- step 2: weighted 1-D k-means per dimension -------------------------
    start = time.perf_counter()
    centroids_1d: dict[str, np.ndarray] = {}
    assignments: dict[str, Relation] = {}
    for attr in dimensions:
        t0 = time.perf_counter()
        groups = sorted(run.results[f"proj_{attr}"].groups.items())
        values = np.array([key[0] for key, _ in groups], dtype=np.float64)
        weights = np.array([stats[0] for _, stats in groups], dtype=np.float64)
        result = weighted_kmeans(values, weights, k=k, seed=seed)
        centroids_1d[attr] = result.centroids[:, 0]
        kind = db.schema.attribute_kind(attr)
        raw = np.array([key[0] for key, _ in groups])
        assignments[attr] = _assignment_relation(
            attr, kind, raw, result.assignments.astype(np.int64)
        )
        per_dim[attr] = time.perf_counter() - t0
    steps["step2_kmeans_1d"] = time.perf_counter() - start

    # ---- step 3: the grid coreset weights, one aggregate query --------------
    start = time.perf_counter()
    extended = Database(
        list(db.relations) + [assignments[attr] for attr in dimensions],
        name=f"{db.name}_rk",
    )
    grid_engine = make_engine(extended)
    cluster_attrs = tuple(f"c_{attr}" for attr in dimensions)
    grid_query = Query(
        "grid", group_by=cluster_attrs, aggregates=(Aggregate.count(),)
    )
    grid_run = grid_engine.run(QueryBatch([grid_query]))
    grid = grid_run.results["grid"].groups
    steps["step3_grid"] = time.perf_counter() - start

    grid_points = np.array(
        [
            [centroids_1d[attr][int(key[j])] for j, attr in enumerate(dimensions)]
            for key in grid
        ],
        dtype=np.float64,
    )
    grid_weights = np.array([stats[0] for stats in grid.values()], dtype=np.float64)

    # ---- step 4: weighted k-means on the coreset -----------------------------
    start = time.perf_counter()
    final = weighted_kmeans(grid_points, grid_weights, k=k, seed=seed)
    steps["step4_kmeans_grid"] = time.perf_counter() - start

    return RkMeansResult(
        dimensions=dimensions,
        k=k,
        centroids=final.centroids,
        grid_points=grid_points,
        grid_weights=grid_weights,
        num_queries=len(dimensions) + 1,
        step_seconds=steps,
        per_dimension_seconds=per_dim,
    )


@dataclass
class RkMeansEvaluation:
    """The Figure 4(d) quality numbers."""

    rk_inertia: float
    lloyd_inertia_mean: float
    lloyd_runs: int
    relative_approximation: float  # (rk − lloyd) / lloyd
    coreset_ratio: float  # |G| / |D|
    lloyd_seconds: float
    closest_centroid: KMeansResult | None = None


def evaluate_against_lloyds(
    db: Database,
    result: RkMeansResult,
    lloyd_runs: int = 10,
    seed: int = 0,
) -> RkMeansEvaluation:
    """Compare Rk-means to conventional Lloyd's on the full dataset.

    Materialises ``D`` (this is an offline quality evaluation, exactly as
    the demo precomputes ten Lloyd's runs), computes the intra-cluster
    distance of the Rk-means centroids on the full data, and the mean
    intra-cluster distance across ``lloyd_runs`` seeded Lloyd's runs.
    """
    join = db.materialize_join()
    points = np.stack(
        [join.column(attr).astype(np.float64) for attr in result.dimensions], axis=1
    )
    rk_inertia = weighted_inertia(points, None, result.centroids)
    start = time.perf_counter()
    inertias = [
        weighted_kmeans(points, None, k=result.k, seed=seed + run).inertia
        for run in range(lloyd_runs)
    ]
    lloyd_seconds = time.perf_counter() - start
    lloyd_mean = float(np.mean(inertias)) if inertias else float("nan")
    relative = (rk_inertia - lloyd_mean) / lloyd_mean if inertias else float("nan")
    return RkMeansEvaluation(
        rk_inertia=rk_inertia,
        lloyd_inertia_mean=lloyd_mean,
        lloyd_runs=lloyd_runs,
        relative_approximation=relative,
        coreset_ratio=result.coreset_size / max(1, join.num_rows),
        lloyd_seconds=lloyd_seconds,
    )


def closest_centroid(result: RkMeansResult, point: np.ndarray) -> int:
    """Index of the centroid nearest to ``point`` — the demo's probe box."""
    diffs = result.centroids - np.asarray(point, dtype=np.float64)[None, :]
    return int(np.einsum("kd,kd->k", diffs, diffs).argmin())
