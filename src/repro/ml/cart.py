"""CART regression trees over LMFAO aggregate batches (paper §3).

Each tree node needs, for every candidate split ``Xj op t``, the variance
triple ``SUM(1), SUM(Y), SUM(Y²)`` over the data satisfying the split and
the path conditions. Two batch formulations are provided:

* ``mode="groupby"`` (default) — one query per feature, grouped by the
  feature, with the path conditions as WHERE (folded by the engine into
  indicator factors). All thresholds of a feature come for free from a
  prefix scan over its sorted group-by result. This keeps one LMFAO pass
  per tree node and reuses every trie across the whole tree.
* ``mode="indicator"`` — one explicit threshold-indicator aggregate per
  candidate ``(feature, threshold, statistic)``, the formulation whose
  batch size the paper reports (thousands of aggregates per node). Same
  results, much larger (still shared) batch — useful for the batch-size
  experiments.

Splits: continuous features use ``Xj <= t`` / ``Xj > t``; categorical
features use one-vs-rest equality ``Xj = v`` / ``Xj ≠ v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import LMFAO
from repro.ml.features import FeatureSpec
from repro.query.aggregates import Aggregate, Factor
from repro.query.batch import QueryBatch
from repro.query.functions import indicator, square
from repro.query.predicates import Op, Predicate
from repro.query.query import Query, QueryResult


@dataclass(frozen=True)
class CartConfig:
    """Tree-growing knobs."""

    max_depth: int = 4
    min_samples: float = 20.0
    min_variance_gain: float = 1e-9
    mode: str = "groupby"  # or "indicator"
    num_thresholds: int = 16  # indicator mode: candidate thresholds/feature


@dataclass
class TreeNode:
    """One node of the regression tree."""

    prediction: float
    count: float
    variance: float
    depth: int
    feature: str | None = None
    threshold: float | None = None
    categorical: bool = False
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}predict {self.prediction:.4g} (n={self.count:g})"
        op = "==" if self.categorical else "<="
        lines = [f"{pad}{self.feature} {op} {self.threshold:g} (n={self.count:g})"]
        lines.append(self.left.describe(indent + 1))
        lines.append(self.right.describe(indent + 1))
        return "\n".join(lines)


def _variance(n: float, s: float, q: float) -> float:
    # the paper's VARIANCE: Σy² − (Σy)²/|T|
    if n <= 0:
        return 0.0
    return max(0.0, q - s * s / n)


def cart_node_batch(
    spec: FeatureSpec,
    path: tuple[Predicate, ...],
    mode: str = "groupby",
    thresholds: dict[str, list[float]] | None = None,
) -> QueryBatch:
    """The aggregate batch CART needs for one tree node.

    In groupby mode: one 3-aggregate query per feature plus the node
    totals. In indicator mode: the totals query plus, per continuous
    feature, ``3 × num_thresholds`` indicator aggregates (and group-by
    queries for categorical features).
    """
    label = spec.label
    triple = (
        Aggregate.count(),
        Aggregate.sum(label),
        Aggregate.sum(label, square),
    )
    queries: list[Query] = [
        Query("node_total", aggregates=triple, where=path)
    ]
    features = spec.continuous + spec.categorical
    if mode == "groupby":
        for feature in features:
            queries.append(
                Query(
                    f"node_{feature}", group_by=(feature,), aggregates=triple, where=path
                )
            )
    elif mode == "indicator":
        if thresholds is None:
            raise ValueError("indicator mode requires per-feature thresholds")
        for feature in spec.continuous:
            aggs: list[Aggregate] = []
            for t in thresholds[feature]:
                ind = Factor(feature, indicator("<=", float(t)))
                for base in triple:
                    aggs.append(base.with_factor(ind))
            if aggs:
                queries.append(
                    Query(f"node_{feature}", aggregates=tuple(aggs), where=path)
                )
        for feature in spec.categorical:
            queries.append(
                Query(
                    f"node_{feature}", group_by=(feature,), aggregates=triple, where=path
                )
            )
    else:
        raise ValueError(f"unknown CART mode {mode!r}")
    return QueryBatch(queries)


@dataclass
class _Split:
    feature: str
    threshold: float
    categorical: bool
    left: tuple[float, float, float]
    right: tuple[float, float, float]
    variance_after: float


def _best_split_groupby(
    spec: FeatureSpec,
    results: dict[str, QueryResult],
    total: tuple[float, float, float],
    min_samples: float,
) -> _Split | None:
    n_tot, s_tot, q_tot = total
    best: _Split | None = None

    def consider(feature: str, threshold: float, categorical: bool,
                 left: tuple[float, float, float]) -> None:
        nonlocal best
        right = (n_tot - left[0], s_tot - left[1], q_tot - left[2])
        if left[0] < min_samples or right[0] < min_samples:
            return
        after = _variance(*left) + _variance(*right)
        if best is None or after < best.variance_after:
            best = _Split(feature, threshold, categorical, left, right, after)

    for feature in spec.continuous:
        groups = results[f"node_{feature}"].groups
        items = sorted(groups.items())
        n = s = q = 0.0
        for (value, *_), stats in items[:-1]:  # last split is empty-right
            n += stats[0]
            s += stats[1]
            q += stats[2]
            consider(feature, float(value), False, (n, s, q))
    for feature in spec.categorical:
        for (value, *_), stats in sorted(results[f"node_{feature}"].groups.items()):
            consider(feature, float(value), True, (stats[0], stats[1], stats[2]))
    return best


def _best_split_indicator(
    spec: FeatureSpec,
    results: dict[str, QueryResult],
    total: tuple[float, float, float],
    thresholds: dict[str, list[float]],
    min_samples: float,
) -> _Split | None:
    n_tot, s_tot, q_tot = total
    best: _Split | None = None

    def consider(feature: str, threshold: float, categorical: bool,
                 left: tuple[float, float, float]) -> None:
        nonlocal best
        right = (n_tot - left[0], s_tot - left[1], q_tot - left[2])
        if left[0] < min_samples or right[0] < min_samples:
            return
        after = _variance(*left) + _variance(*right)
        if best is None or after < best.variance_after:
            best = _Split(feature, threshold, categorical, left, right, after)

    for feature in spec.continuous:
        values = results[f"node_{feature}"].groups.get((), None)
        if values is None:
            continue
        for i, t in enumerate(thresholds[feature]):
            left = (values[3 * i], values[3 * i + 1], values[3 * i + 2])
            consider(feature, float(t), False, left)
    for feature in spec.categorical:
        for (value, *_), stats in sorted(results[f"node_{feature}"].groups.items()):
            consider(feature, float(value), True, (stats[0], stats[1], stats[2]))
    return best


@dataclass
class RegressionTree:
    """A CART regression tree trained entirely from aggregate batches."""

    spec: FeatureSpec
    config: CartConfig
    root: TreeNode | None = None
    num_nodes: int = 0
    aggregates_per_node: int = 0
    total_aggregates: int = 0
    aggregate_seconds: float = 0.0
    _thresholds: dict[str, list[float]] = field(default_factory=dict)

    def fit(self, engine: LMFAO) -> "RegressionTree":
        """Grow the tree over the engine's database."""
        if self.config.mode == "indicator":
            self._thresholds = self._candidate_thresholds(engine)
        self.root = self._grow(engine, path=(), depth=0)
        return self

    def refresh(self, engine: LMFAO) -> "RegressionTree":
        """Re-grow the tree after the underlying data changed.

        Pass an engine over the updated database — typically
        ``LMFAO(handle.database, config)`` where ``handle`` is the
        :class:`~repro.incremental.MaintainedBatch` tracking the updates.
        Tree growth re-runs (splits are data-dependent, so the per-node
        batches cannot be maintained ahead of time), but the expensive
        preparation is reused: candidate thresholds in indicator mode are
        kept from the original fit, and the engine's trie caches make each
        node batch a warm re-execution. Counters restart so the refreshed
        tree reports its own statistics.
        """
        self.num_nodes = 0
        self.aggregates_per_node = 0
        self.total_aggregates = 0
        self.aggregate_seconds = 0.0
        if self.config.mode == "indicator" and not self._thresholds:
            self._thresholds = self._candidate_thresholds(engine)
        self.root = self._grow(engine, path=(), depth=0)
        return self

    # ------------------------------------------------------------------ growing
    def _candidate_thresholds(self, engine: LMFAO) -> dict[str, list[float]]:
        """Equi-depth thresholds per continuous feature (one histogram batch)."""
        queries = [
            Query(f"hist_{f}", group_by=(f,), aggregates=(Aggregate.count(),))
            for f in self.spec.continuous
        ]
        run = engine.run(QueryBatch(queries))
        thresholds: dict[str, list[float]] = {}
        for feature in self.spec.continuous:
            groups = sorted(run.results[f"hist_{feature}"].groups.items())
            values = np.array([k[0] for k, _ in groups], dtype=np.float64)
            counts = np.array([v[0] for _, v in groups])
            if len(values) <= self.config.num_thresholds:
                thresholds[feature] = [float(v) for v in values[:-1]]
                continue
            cumulative = np.cumsum(counts) / counts.sum()
            picks = np.searchsorted(
                cumulative, np.linspace(0, 1, self.config.num_thresholds + 2)[1:-1]
            )
            thresholds[feature] = sorted({float(values[i]) for i in picks})
        return thresholds

    def _grow(
        self, engine: LMFAO, path: tuple[Predicate, ...], depth: int
    ) -> TreeNode:
        batch = cart_node_batch(
            self.spec, path, mode=self.config.mode, thresholds=self._thresholds or None
        )
        run = engine.run(batch)
        self.aggregate_seconds += run.total_time
        self.total_aggregates += batch.num_aggregates
        if self.aggregates_per_node == 0:
            self.aggregates_per_node = batch.num_aggregates
        totals = run.results["node_total"].groups.get((), (0.0, 0.0, 0.0))
        n, s, q = totals[0], totals[1], totals[2]
        node = TreeNode(
            prediction=s / n if n > 0 else 0.0,
            count=n,
            variance=_variance(n, s, q),
            depth=depth,
        )
        self.num_nodes += 1
        if depth >= self.config.max_depth or n < 2 * self.config.min_samples:
            return node
        if self.config.mode == "groupby":
            split = _best_split_groupby(
                self.spec, run.results, (n, s, q), self.config.min_samples
            )
        else:
            split = _best_split_indicator(
                self.spec, run.results, (n, s, q), self._thresholds,
                self.config.min_samples,
            )
        if split is None or node.variance - split.variance_after <= (
            self.config.min_variance_gain * max(1.0, node.variance)
        ):
            return node
        node.feature = split.feature
        node.threshold = split.threshold
        node.categorical = split.categorical
        left_op, right_op = (Op.EQ, Op.NE) if split.categorical else (Op.LE, Op.GT)
        node.left = self._grow(
            engine, path + (Predicate(split.feature, left_op, split.threshold),), depth + 1
        )
        node.right = self._grow(
            engine, path + (Predicate(split.feature, right_op, split.threshold),), depth + 1
        )
        return node

    # --------------------------------------------------------------- prediction
    def predict_rows(self, rows: dict[str, np.ndarray]) -> np.ndarray:
        """Predict labels for raw attribute columns."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        n = len(next(iter(rows.values())))
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            node = self.root
            while not node.is_leaf:
                value = rows[node.feature][i]
                if node.categorical:
                    go_left = value == node.threshold
                else:
                    go_left = value <= node.threshold
                node = node.left if go_left else node.right
            out[i] = node.prediction
        return out

    def describe(self) -> str:
        """A printable rendering of the tree."""
        if self.root is None:
            return "(unfitted tree)"
        return self.root.describe()
