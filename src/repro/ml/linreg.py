"""Ridge linear regression by batch gradient descent over Σ (paper §3).

The data-intensive work is the covariance batch; once Σ is assembled, every
BGD iteration is a dense matrix-vector product — "the aggregates are
computed once and then reused for all BGD iterations".

Following the paper, the parameter vector runs over
``[intercept, label, features...]`` with the label's parameter fixed to
−1, so the residual ``⟨θ, x⟩`` *is* the prediction error and

    J(θ) = 1/(2|D|) θᵀ Σ θ + λ/2 ‖θ_free‖²,
    ∇J(θ) = 1/|D| (Σ θ) + λ θ_free.

Gradient descent uses backtracking line search (the strategy of the AC/DC
predecessor system). A closed-form solver over the same Σ provides the
validation target for the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import LMFAO
from repro.ml.covariance import FeatureIndex, assemble_sigma, covariance_batch
from repro.ml.features import FeatureSpec


@dataclass
class LinearRegressionModel:
    """A trained model: parameters over the one-hot feature layout."""

    spec: FeatureSpec
    index: FeatureIndex
    theta: np.ndarray
    iterations: int
    objective: float
    aggregate_seconds: float
    solve_seconds: float
    num_aggregates: int
    converged: bool
    objective_trace: list[float] = field(default_factory=list)

    def predict_rows(self, rows: dict[str, np.ndarray]) -> np.ndarray:
        """Predict labels for raw attribute columns (test-set evaluation)."""
        x = encode_rows(self.index, rows)
        theta = self.theta.copy()
        theta[self.index.label_column] = 0.0  # the label slot is not a feature
        return x @ theta


def encode_rows(index: FeatureIndex, rows: dict[str, np.ndarray]) -> np.ndarray:
    """One-hot encode raw columns into the Σ feature layout.

    The label column is left at zero; unseen category values map to no
    one-hot column (all zeros), the standard convention.
    """
    spec = index.spec
    num_rows = len(next(iter(rows.values())))
    x = np.zeros((num_rows, index.dimension), dtype=np.float64)
    x[:, 0] = 1.0
    for attr in spec.continuous:
        x[:, index.continuous_column(attr)] = rows[attr]
    for attr in spec.categorical:
        values = index.categories[attr]
        positions = {v: i for i, v in enumerate(values)}
        base = index.offsets[attr]
        for r, v in enumerate(rows[attr]):
            pos = positions.get(v)
            if pos is not None:
                x[r, base + pos] = 1.0
    return x


def sigma_from_engine(
    engine: LMFAO, spec: FeatureSpec
) -> tuple[np.ndarray, FeatureIndex, float, float, int]:
    """Run the covariance batch through the engine; returns Σ and stats."""
    batch = covariance_batch(spec)
    run = engine.run(batch)
    sigma, index, count = assemble_sigma(spec, run.results)
    return sigma, index, count, run.total_time, batch.num_aggregates


def fit_from_results(
    spec: FeatureSpec,
    results: dict,
    ridge: float = 1e-3,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
    aggregate_seconds: float = 0.0,
    num_aggregates: int = 0,
) -> LinearRegressionModel:
    """Fit the model from already-computed covariance batch results.

    The solve path shared by :func:`train_linear_regression` (one-shot) and
    :class:`IncrementalLinearRegression` (retraining from maintained Σ
    aggregates after each data change).
    """
    sigma, index, count = assemble_sigma(spec, results)
    theta, iterations, objective, trace, converged, solve_seconds = _bgd(
        sigma, index, count, ridge, max_iterations, tolerance
    )
    return LinearRegressionModel(
        spec=spec,
        index=index,
        theta=theta,
        iterations=iterations,
        objective=objective,
        aggregate_seconds=aggregate_seconds,
        solve_seconds=solve_seconds,
        num_aggregates=num_aggregates,
        converged=converged,
        objective_trace=trace,
    )


def train_linear_regression(
    engine: LMFAO,
    spec: FeatureSpec,
    ridge: float = 1e-3,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> LinearRegressionModel:
    """Train ridge linear regression with BGD over LMFAO aggregates."""
    batch = covariance_batch(spec)
    run = engine.run(batch)
    return fit_from_results(
        spec,
        run.results,
        ridge=ridge,
        max_iterations=max_iterations,
        tolerance=tolerance,
        aggregate_seconds=run.total_time,
        num_aggregates=batch.num_aggregates,
    )


class IncrementalLinearRegression:
    """Linear regression kept trained under base-data updates.

    Compiles the covariance batch once via :meth:`LMFAO.maintain`; each
    :meth:`apply` propagates the data change through the maintained view
    DAG (paying only for the affected path) and re-runs the cheap BGD solve
    over the refreshed Σ — "the aggregates are computed once and then
    reused" now extends across data versions, the streaming/online-ML
    scenario. New category values appearing in (or vanishing from) the
    maintained histograms resize the one-hot layout automatically on the
    next refresh.
    """

    def __init__(
        self,
        engine: LMFAO,
        spec: FeatureSpec,
        ridge: float = 1e-3,
        max_iterations: int = 2000,
        tolerance: float = 1e-9,
    ) -> None:
        self.spec = spec
        self.ridge = ridge
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        batch = covariance_batch(spec)
        self.num_aggregates = batch.num_aggregates
        self.handle = engine.maintain(batch)
        self.last_apply = None
        self.model = self.refresh()

    def apply(self, inserts=None, deletes=None) -> LinearRegressionModel:
        """Apply a data change and retrain from the maintained aggregates."""
        self.last_apply = self.handle.apply(inserts=inserts, deletes=deletes)
        return self.refresh()

    def refresh(self) -> LinearRegressionModel:
        """Re-solve from the current maintained Σ (no aggregate recomputation)."""
        outcome = self.last_apply
        self.model = fit_from_results(
            self.spec,
            self.handle.results,
            ridge=self.ridge,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            aggregate_seconds=outcome.seconds if outcome is not None else 0.0,
            num_aggregates=self.num_aggregates,
        )
        return self.model


def closed_form_theta(
    sigma: np.ndarray, index: FeatureIndex, count: float, ridge: float
) -> np.ndarray:
    """Solve the ridge normal equations over the same Σ (validation target)."""
    label = index.label_column
    free = [i for i in range(sigma.shape[0]) if i != label]
    # No penalty on the intercept — matching the BGD objective exactly.
    penalties = np.array([0.0 if i == 0 else ridge for i in free])
    a = sigma[np.ix_(free, free)] / count + np.diag(penalties)
    b = sigma[free, label] / count
    theta = np.zeros(sigma.shape[0])
    theta[free] = np.linalg.solve(a, b)
    theta[label] = -1.0
    return theta


def _objective(
    sigma: np.ndarray, theta: np.ndarray, count: float, ridge: float, label: int
) -> float:
    free = theta.copy()
    free[0] = 0.0  # no penalty on the intercept
    free[label] = 0.0
    return float(
        theta @ sigma @ theta / (2.0 * count) + 0.5 * ridge * free @ free
    )


def _bgd(
    sigma: np.ndarray,
    index: FeatureIndex,
    count: float,
    ridge: float,
    max_iterations: int,
    tolerance: float,
) -> tuple[np.ndarray, int, float, list[float], bool, float]:
    import time

    start = time.perf_counter()
    label = index.label_column
    dim = sigma.shape[0]
    theta = np.zeros(dim)
    theta[label] = -1.0

    # Jacobi preconditioner: one-hot columns and raw measures have wildly
    # different scales, so plain gradient descent crawls. Dividing the
    # gradient by diag(Σ)/|D| + λ keeps the direction a descent direction
    # (the preconditioner is positive) and restores fast convergence.
    precond = np.maximum(np.diag(sigma) / count + ridge, 1e-12)

    step = 1.0
    objective = _objective(sigma, theta, count, ridge, label)
    trace = [objective]
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = sigma @ theta / count
        penal = theta.copy()
        penal[0] = 0.0
        penal[label] = 0.0
        grad = grad + ridge * penal
        grad[label] = 0.0  # label parameter stays fixed at -1

        direction = grad / precond
        descent = float(grad @ direction)
        if descent <= tolerance:
            converged = True
            break
        # backtracking line search (Armijo)
        step = min(step * 2.0, 1e6)
        while True:
            candidate = theta - step * direction
            candidate[label] = -1.0
            value = _objective(sigma, candidate, count, ridge, label)
            if value <= objective - 0.5 * step * descent or step < 1e-16:
                break
            step *= 0.5
        if abs(objective - value) <= tolerance * max(1.0, abs(objective)):
            theta, objective = candidate, value
            trace.append(objective)
            converged = True
            break
        theta, objective = candidate, value
        trace.append(objective)
    return theta, iterations, objective, trace, converged, time.perf_counter() - start
