"""Ridge linear regression by batch gradient descent over Σ (paper §3).

The data-intensive work is the covariance batch; once Σ is assembled, every
BGD iteration is a dense matrix-vector product — "the aggregates are
computed once and then reused for all BGD iterations".

Following the paper, the parameter vector runs over
``[intercept, label, features...]`` with the label's parameter fixed to
−1, so the residual ``⟨θ, x⟩`` *is* the prediction error and

    J(θ) = 1/(2|D|) θᵀ Σ θ + λ/2 ‖θ_free‖²,
    ∇J(θ) = 1/|D| (Σ θ) + λ θ_free.

Gradient descent uses backtracking line search (the strategy of the AC/DC
predecessor system). A closed-form solver over the same Σ provides the
validation target for the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import LMFAO
from repro.ml.covariance import FeatureIndex, assemble_sigma, covariance_batch
from repro.ml.features import FeatureSpec


@dataclass
class LinearRegressionModel:
    """A trained model: parameters over the one-hot feature layout."""

    spec: FeatureSpec
    index: FeatureIndex
    theta: np.ndarray
    iterations: int
    objective: float
    aggregate_seconds: float
    solve_seconds: float
    num_aggregates: int
    converged: bool
    objective_trace: list[float] = field(default_factory=list)

    def predict_rows(self, rows: dict[str, np.ndarray]) -> np.ndarray:
        """Predict labels for raw attribute columns (test-set evaluation)."""
        x = encode_rows(self.index, rows)
        theta = self.theta.copy()
        theta[self.index.label_column] = 0.0  # the label slot is not a feature
        return x @ theta


def encode_rows(index: FeatureIndex, rows: dict[str, np.ndarray]) -> np.ndarray:
    """One-hot encode raw columns into the Σ feature layout.

    The label column is left at zero; unseen category values map to no
    one-hot column (all zeros), the standard convention.
    """
    spec = index.spec
    num_rows = len(next(iter(rows.values())))
    x = np.zeros((num_rows, index.dimension), dtype=np.float64)
    x[:, 0] = 1.0
    for attr in spec.continuous:
        x[:, index.continuous_column(attr)] = rows[attr]
    for attr in spec.categorical:
        values = index.categories[attr]
        positions = {v: i for i, v in enumerate(values)}
        base = index.offsets[attr]
        for r, v in enumerate(rows[attr]):
            pos = positions.get(v)
            if pos is not None:
                x[r, base + pos] = 1.0
    return x


def sigma_from_engine(
    engine: LMFAO, spec: FeatureSpec
) -> tuple[np.ndarray, FeatureIndex, float, float, int]:
    """Run the covariance batch through the engine; returns Σ and stats."""
    batch = covariance_batch(spec)
    run = engine.run(batch)
    sigma, index, count = assemble_sigma(spec, run.results)
    return sigma, index, count, run.total_time, batch.num_aggregates


def train_linear_regression(
    engine: LMFAO,
    spec: FeatureSpec,
    ridge: float = 1e-3,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> LinearRegressionModel:
    """Train ridge linear regression with BGD over LMFAO aggregates."""
    sigma, index, count, agg_seconds, num_aggs = sigma_from_engine(engine, spec)
    theta, iterations, objective, trace, converged, solve_seconds = _bgd(
        sigma, index, count, ridge, max_iterations, tolerance
    )
    return LinearRegressionModel(
        spec=spec,
        index=index,
        theta=theta,
        iterations=iterations,
        objective=objective,
        aggregate_seconds=agg_seconds,
        solve_seconds=solve_seconds,
        num_aggregates=num_aggs,
        converged=converged,
        objective_trace=trace,
    )


def closed_form_theta(
    sigma: np.ndarray, index: FeatureIndex, count: float, ridge: float
) -> np.ndarray:
    """Solve the ridge normal equations over the same Σ (validation target)."""
    label = index.label_column
    free = [i for i in range(sigma.shape[0]) if i != label]
    # No penalty on the intercept — matching the BGD objective exactly.
    penalties = np.array([0.0 if i == 0 else ridge for i in free])
    a = sigma[np.ix_(free, free)] / count + np.diag(penalties)
    b = sigma[free, label] / count
    theta = np.zeros(sigma.shape[0])
    theta[free] = np.linalg.solve(a, b)
    theta[label] = -1.0
    return theta


def _objective(
    sigma: np.ndarray, theta: np.ndarray, count: float, ridge: float, label: int
) -> float:
    free = theta.copy()
    free[0] = 0.0  # no penalty on the intercept
    free[label] = 0.0
    return float(
        theta @ sigma @ theta / (2.0 * count) + 0.5 * ridge * free @ free
    )


def _bgd(
    sigma: np.ndarray,
    index: FeatureIndex,
    count: float,
    ridge: float,
    max_iterations: int,
    tolerance: float,
) -> tuple[np.ndarray, int, float, list[float], bool, float]:
    import time

    start = time.perf_counter()
    label = index.label_column
    dim = sigma.shape[0]
    theta = np.zeros(dim)
    theta[label] = -1.0

    # Jacobi preconditioner: one-hot columns and raw measures have wildly
    # different scales, so plain gradient descent crawls. Dividing the
    # gradient by diag(Σ)/|D| + λ keeps the direction a descent direction
    # (the preconditioner is positive) and restores fast convergence.
    precond = np.maximum(np.diag(sigma) / count + ridge, 1e-12)

    step = 1.0
    objective = _objective(sigma, theta, count, ridge, label)
    trace = [objective]
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = sigma @ theta / count
        penal = theta.copy()
        penal[0] = 0.0
        penal[label] = 0.0
        grad = grad + ridge * penal
        grad[label] = 0.0  # label parameter stays fixed at -1

        direction = grad / precond
        descent = float(grad @ direction)
        if descent <= tolerance:
            converged = True
            break
        # backtracking line search (Armijo)
        step = min(step * 2.0, 1e6)
        while True:
            candidate = theta - step * direction
            candidate[label] = -1.0
            value = _objective(sigma, candidate, count, ridge, label)
            if value <= objective - 0.5 * step * descent or step < 1e-16:
                break
            step *= 0.5
        if abs(objective - value) <= tolerance * max(1.0, abs(objective)):
            theta, objective = candidate, value
            trace.append(objective)
            converged = True
            break
        theta, objective = candidate, value
        trace.append(objective)
    return theta, iterations, objective, trace, converged, time.perf_counter() - start
