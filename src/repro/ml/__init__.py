"""In-database machine learning over LMFAO aggregate batches.

The three demonstrated applications of the paper:

* :mod:`repro.ml.linreg` — ridge linear regression by batch gradient
  descent over the non-centred covariance matrix Σ (Section 3);
* :mod:`repro.ml.cart` — CART regression trees from per-node variance
  aggregates;
* :mod:`repro.ml.rkmeans` — Rk-means clustering via per-dimension
  histograms and a weighted grid coreset.
"""

from repro.ml.cart import CartConfig, RegressionTree, cart_node_batch
from repro.ml.covariance import (
    FeatureIndex,
    assemble_sigma,
    covariance_batch,
)
from repro.ml.features import FeatureSpec, favorita_features, retailer_features
from repro.ml.kmeans import KMeansResult, weighted_kmeans
from repro.ml.linreg import (
    IncrementalLinearRegression,
    LinearRegressionModel,
    fit_from_results,
    train_linear_regression,
)
from repro.ml.rkmeans import RkMeansResult, rk_means

__all__ = [
    "CartConfig",
    "FeatureIndex",
    "FeatureSpec",
    "IncrementalLinearRegression",
    "KMeansResult",
    "LinearRegressionModel",
    "RegressionTree",
    "RkMeansResult",
    "assemble_sigma",
    "cart_node_batch",
    "covariance_batch",
    "favorita_features",
    "fit_from_results",
    "retailer_features",
    "rk_means",
    "train_linear_regression",
    "weighted_kmeans",
]
