"""The paper's running example (Section 2, Figures 2 and 3) as code.

Everything the worked example needs in one place: the Favorita join tree of
Figure 2, the user-defined functions ``g`` and ``h``, the three queries
``Q1``–``Q3``, and the root assignment the paper chooses. Tests and
benchmarks reproduce Figures 2 and 3 against these assets.
"""

from __future__ import annotations

import numpy as np

from repro.query.aggregates import Aggregate, Factor
from repro.query.batch import QueryBatch
from repro.query.functions import Function, identity
from repro.query.query import Query

#: The join tree of Figure 2 (middle): StoRes and Oil hang off Transactions.
FAVORITA_TREE: tuple[tuple[str, str], ...] = (
    ("Sales", "Transactions"),
    ("Transactions", "StoRes"),
    ("Transactions", "Oil"),
    ("Sales", "Items"),
    ("Sales", "Holidays"),
)

#: The user-defined functions of Q2. The paper leaves ``g`` and ``h``
#: abstract ("user-defined aggregate functions returning numerical
#: values"); any pure numeric functions exercise the same plan.
g = Function("g", lambda x: 0.5 * x.astype(np.float64))
h = Function("h", lambda x: np.sqrt(np.abs(x.astype(np.float64))))


def example_queries() -> QueryBatch:
    """Q1, Q2, Q3 exactly as written in Section 2 of the paper."""
    q1 = Query("Q1", aggregates=(Aggregate.sum("units"),))
    q2 = Query(
        "Q2",
        group_by=("store",),
        aggregates=(Aggregate.product((Factor("item", g), Factor("date", h))),),
    )
    q3 = Query(
        "Q3",
        group_by=("class",),
        aggregates=(
            Aggregate.product((Factor("units", identity), Factor("price", identity))),
        ),
    )
    return QueryBatch([q1, q2, q3])


#: The paper's root assignment: "we choose Sales as root for Q1 and Q2,
#: and Items as root for Q3."
EXAMPLE_ROOTS: dict[str, str] = {"Q1": "Sales", "Q2": "Sales", "Q3": "Items"}

#: Figure 2 (right): the seven groups, keyed by the artifacts they contain.
FIGURE2_GROUPS: tuple[frozenset[str], ...] = (
    frozenset({"V_StoRes_Transactions"}),
    frozenset({"V_Oil_Transactions"}),
    frozenset({"V_Transactions_Sales"}),
    frozenset({"V_Holidays_Sales"}),
    frozenset({"V_Items_Sales"}),
    frozenset({"Q1", "Q2", "V_Sales_Items"}),
    frozenset({"Q3"}),
)
