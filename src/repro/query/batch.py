"""Query batches: the unit of optimisation in LMFAO."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.data.schema import DatabaseSchema
from repro.query.query import Query
from repro.util.errors import QueryError


class QueryBatch:
    """An ordered collection of uniquely named queries optimised together."""

    def __init__(self, queries: Iterable[Query]) -> None:
        self._queries: dict[str, Query] = {}
        for query in queries:
            if query.name in self._queries:
                raise QueryError(f"duplicate query name {query.name!r} in batch")
            self._queries[query.name] = query
        if not self._queries:
            raise QueryError("batch must contain at least one query")

    @property
    def queries(self) -> tuple[Query, ...]:
        return tuple(self._queries.values())

    def query(self, name: str) -> Query:
        try:
            return self._queries[name]
        except KeyError:
            raise QueryError(f"no query named {name!r} in batch") from None

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries.values())

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    @property
    def num_aggregates(self) -> int:
        """Total aggregates across all queries — the paper's batch-size metric."""
        return sum(len(q.aggregates) for q in self._queries.values())

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes referenced anywhere in the batch, first-seen order."""
        seen: dict[str, None] = {}
        for query in self._queries.values():
            seen.update(dict.fromkeys(query.attributes))
        return tuple(seen)

    def shared_predicates(self) -> tuple:
        """Predicates present (structurally) in *every* query of the batch.

        The engine pushes these into physical filters on the base relations
        — the decision-tree path conditions are the canonical case.
        """
        queries = list(self._queries.values())
        common = {p.signature for p in queries[0].where}
        for query in queries[1:]:
            common &= {p.signature for p in query.where}
        result = []
        for pred in queries[0].where:
            if pred.signature in common:
                result.append(pred)
        return tuple(result)

    def validate_against(self, schema: DatabaseSchema) -> None:
        for query in self._queries.values():
            query.validate_against(schema)

    def __repr__(self) -> str:
        return f"QueryBatch(queries={len(self)}, aggregates={self.num_aggregates})"
