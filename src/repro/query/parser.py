"""A small parser for the paper's SQL-ish aggregate syntax.

Supports exactly the query shapes the paper writes::

    SELECT SUM(units) FROM D
    SELECT store, SUM(g(item)*h(date)) FROM D GROUP BY store
    SELECT class, SUM(units*price) FROM D GROUP BY class
    SELECT SUM(1), SUM(Y), SUM(Y*Y) FROM D WHERE X <= 3 AND Z == 1

i.e. a SELECT list of group-by attributes and ``SUM`` terms, the join ``D``,
an optional WHERE conjunction of comparisons, and an optional GROUP BY whose
attributes must match the non-aggregate SELECT items.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.query.aggregates import Aggregate, Factor
from repro.query.functions import FunctionRegistry, identity
from repro.query.predicates import Op, Predicate
from repro.query.query import Query
from repro.util.errors import ParseError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+(?:\.\d+)?)|(?P<id>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<sym><=|>=|!=|<>|==|[(),*=<>]))"
)

_KEYWORDS = {"select", "from", "where", "group", "by", "and", "sum"}


class _Token(NamedTuple):
    kind: str  # "num" | "id" | "sym" | "kw" | "end"
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(f"cannot tokenise at: {text[pos:pos + 20]!r}")
            break
        pos = match.end()
        if match.lastgroup == "num":
            tokens.append(_Token("num", match.group("num")))
        elif match.lastgroup == "id":
            word = match.group("id")
            kind = "kw" if word.lower() in _KEYWORDS else "id"
            tokens.append(_Token(kind, word.lower() if kind == "kw" else word))
        else:
            tokens.append(_Token("sym", match.group("sym")))
    tokens.append(_Token("end", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], functions: FunctionRegistry) -> None:
        self._tokens = tokens
        self._pos = 0
        self._functions = functions

    # ------------------------------------------------------------- primitives
    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(f"expected {want!r}, got {token.text!r}")
        return token

    def _accept(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            self._pos += 1
            return True
        return False

    # ---------------------------------------------------------------- grammar
    def parse(self, name: str) -> Query:
        self._expect("kw", "select")
        select_attrs: list[str] = []
        aggregates: list[Aggregate] = []
        while True:
            if self._peek() == _Token("kw", "sum"):
                aggregates.append(self._aggregate())
            else:
                select_attrs.append(self._expect("id").text)
            if not self._accept("sym", ","):
                break
        self._expect("kw", "from")
        self._expect("id")  # the join name, conventionally D
        where: list[Predicate] = []
        if self._accept("kw", "where"):
            where.append(self._comparison())
            while self._accept("kw", "and"):
                where.append(self._comparison())
        group_by: list[str] = []
        if self._accept("kw", "group"):
            self._expect("kw", "by")
            group_by.append(self._expect("id").text)
            while self._accept("sym", ","):
                group_by.append(self._expect("id").text)
        self._expect("end")

        if set(select_attrs) != set(group_by):
            raise ParseError(
                f"SELECT attributes {select_attrs} must equal GROUP BY {group_by}"
            )
        if not aggregates:
            raise ParseError("query must contain at least one SUM(...)")
        return Query(
            name=name,
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
            where=tuple(where),
        )

    def _aggregate(self) -> Aggregate:
        self._expect("kw", "sum")
        self._expect("sym", "(")
        factors: list[Factor] = []
        while True:
            token = self._next()
            if token.kind == "num":
                if float(token.text) != 1.0:
                    raise ParseError("only the literal 1 is allowed inside SUM")
            elif token.kind == "id":
                if self._accept("sym", "("):
                    inner = self._expect("id").text
                    self._expect("sym", ")")
                    factors.append(Factor(inner, self._functions.get(token.text)))
                else:
                    factors.append(Factor(token.text, identity))
            else:
                raise ParseError(f"unexpected {token.text!r} inside SUM")
            if not self._accept("sym", "*"):
                break
        self._expect("sym", ")")
        return Aggregate(tuple(factors))

    def _comparison(self) -> Predicate:
        attr = self._expect("id").text
        op_token = self._next()
        if op_token.kind != "sym":
            raise ParseError(f"expected comparison operator, got {op_token.text!r}")
        value_token = self._next()
        if value_token.kind != "num":
            raise ParseError(f"expected numeric constant, got {value_token.text!r}")
        return Predicate(attr, Op.parse(op_token.text), float(value_token.text))


def parse_query(
    text: str,
    name: str = "Q",
    functions: FunctionRegistry | None = None,
) -> Query:
    """Parse one SQL-ish aggregate query into a :class:`Query`.

    ``functions`` supplies user-defined functions referenced as ``g(attr)``;
    the built-ins (``id``, ``one``, ``sq``) are always available.
    """
    registry = functions if functions is not None else FunctionRegistry()
    return _Parser(_tokenize(text), registry).parse(name)
