"""Sum-product aggregate expressions.

An :class:`Aggregate` is ``SUM`` of a product of unary factors over
attributes: ``SUM(f1(a1) * f2(a2) * ...)``; the empty product is
``SUM(1)`` (count). This is exactly the class of aggregates LMFAO batches:
covariance entries, decision-tree variance triples, histogram weights.

Factors are structural values: two aggregates with equal factor multisets
are the same computation, which is what lets view merging deduplicate
aggregates across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.query.functions import Function, identity
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Factor:
    """One multiplicand ``function(attribute)`` of a sum-product aggregate."""

    attribute: str
    function: Function = identity

    @property
    def signature(self) -> tuple[str, str]:
        """Structural identity: (attribute, function name)."""
        return (self.attribute, self.function.name)

    def __repr__(self) -> str:
        if self.function.name == "id":
            return self.attribute
        return f"{self.function.name}({self.attribute})"


@dataclass(frozen=True)
class Aggregate:
    """``SUM`` over the join of a product of factors.

    Attributes
    ----------
    factors:
        The multiplicands, in canonical (sorted-by-signature) order so that
        structurally equal products compare equal regardless of how the
        caller ordered them. Empty means ``SUM(1)``.
    """

    factors: tuple[Factor, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.factors, key=lambda f: f.signature))
        object.__setattr__(self, "factors", ordered)

    @staticmethod
    def count() -> "Aggregate":
        """``SUM(1)``."""
        return Aggregate(())

    @staticmethod
    def sum(attribute: str, function: Function = identity) -> "Aggregate":
        """``SUM(f(attribute))``."""
        return Aggregate((Factor(attribute, function),))

    @staticmethod
    def product(factors: Iterable[Factor]) -> "Aggregate":
        """``SUM(∏ factors)``."""
        return Aggregate(tuple(factors))

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes referenced by the product, with duplicates removed."""
        return tuple(dict.fromkeys(f.attribute for f in self.factors))

    @property
    def signature(self) -> tuple[tuple[str, str], ...]:
        """Structural identity of the whole product (canonical order)."""
        return tuple(f.signature for f in self.factors)

    def is_count(self) -> bool:
        return not self.factors

    def with_factor(self, factor: Factor) -> "Aggregate":
        """A new aggregate with one more multiplicand."""
        return Aggregate(self.factors + (factor,))

    def validate_against(self, attributes: Iterable[str]) -> None:
        """Raise :class:`QueryError` if any factor references an unknown attribute."""
        known = set(attributes)
        for factor in self.factors:
            if factor.attribute not in known:
                raise QueryError(
                    f"aggregate references unknown attribute {factor.attribute!r}"
                )

    def __repr__(self) -> str:
        if not self.factors:
            return "SUM(1)"
        return "SUM(" + "*".join(repr(f) for f in self.factors) + ")"
