"""Sum-product aggregate expressions.

An :class:`Aggregate` is ``SUM`` of a product of unary factors over
attributes: ``SUM(f1(a1) * f2(a2) * ...)``; the empty product is
``SUM(1)`` (count). This is exactly the class of aggregates LMFAO batches:
covariance entries, decision-tree variance triples, histogram weights.

Factors are structural values: two aggregates with equal factor multisets
are the same computation, which is what lets view merging deduplicate
aggregates across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.query.functions import Function, identity
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Factor:
    """One multiplicand ``function(attribute)`` of a sum-product aggregate."""

    attribute: str
    function: Function = identity

    @property
    def signature(self) -> tuple[str, str]:
        """Structural identity: (attribute, function name)."""
        return (self.attribute, self.function.name)

    def __repr__(self) -> str:
        if self.function.name == "id":
            return self.attribute
        return f"{self.function.name}({self.attribute})"


@dataclass(frozen=True)
class Aggregate:
    """``SUM`` over the join of a product of factors.

    Attributes
    ----------
    factors:
        The multiplicands, in canonical (sorted-by-signature) order so that
        structurally equal products compare equal regardless of how the
        caller ordered them. Empty means ``SUM(1)``.
    """

    factors: tuple[Factor, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.factors, key=lambda f: f.signature))
        object.__setattr__(self, "factors", ordered)

    @staticmethod
    def count() -> "Aggregate":
        """``SUM(1)``."""
        return Aggregate(())

    @staticmethod
    def sum(attribute: str, function: Function = identity) -> "Aggregate":
        """``SUM(f(attribute))``."""
        return Aggregate((Factor(attribute, function),))

    @staticmethod
    def product(factors: Iterable[Factor]) -> "Aggregate":
        """``SUM(∏ factors)``."""
        return Aggregate(tuple(factors))

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes referenced by the product, with duplicates removed."""
        return tuple(dict.fromkeys(f.attribute for f in self.factors))

    @property
    def signature(self) -> tuple[tuple[str, str], ...]:
        """Structural identity of the whole product (canonical order)."""
        return tuple(f.signature for f in self.factors)

    def is_count(self) -> bool:
        return not self.factors

    def with_factor(self, factor: Factor) -> "Aggregate":
        """A new aggregate with one more multiplicand."""
        return Aggregate(self.factors + (factor,))

    def validate_against(self, attributes: Iterable[str]) -> None:
        """Raise :class:`QueryError` if any factor references an unknown attribute."""
        known = set(attributes)
        for factor in self.factors:
            if factor.attribute not in known:
                raise QueryError(
                    f"aggregate references unknown attribute {factor.attribute!r}"
                )

    def __repr__(self) -> str:
        if not self.factors:
            return "SUM(1)"
        return "SUM(" + "*".join(repr(f) for f in self.factors) + ")"


@dataclass(frozen=True)
class OrderSpec:
    """``ORDER BY aggregates[agg_index] [DESC] [PARTITION BY ...]``.

    Ranks a grouped query's result rows by one of its aggregates,
    independently within each *partition* — the leaderboard shape
    ("top 5 products by revenue **per store**"): ``partition_by`` names
    the group-by attributes that define a partition, and the remaining
    group-by attributes (the *residual* key) are what gets ranked.
    Empty ``partition_by`` means one global partition.

    The total order is deterministic by construction — the **tie-break
    contract** every backend, executor and maintenance path must
    reproduce bit-exactly (see ``docs/architecture.md`` §Ordered
    emissions):

    1. partitions appear in ascending ``partition_by``-key order;
    2. within a partition, rows sort by the ordering aggregate's value
       (descending when :attr:`descending`, the default);
    3. value ties break by the residual group-by key tuple, ascending.

    Attributes
    ----------
    agg_index:
        Index into ``Query.aggregates`` of the ordering aggregate.
    descending:
        Rank direction; True (default) puts the largest value first.
    partition_by:
        Group-by attributes defining the per-partition scope; must be a
        subset of the query's ``group_by``.
    """

    agg_index: int = 0
    descending: bool = True
    partition_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.agg_index < 0:
            raise QueryError("OrderSpec.agg_index must be non-negative")
        if len(set(self.partition_by)) != len(self.partition_by):
            raise QueryError("OrderSpec.partition_by repeats attributes")

    @property
    def signature(self) -> tuple:
        """Structural identity (fingerprints, view identities)."""
        return ("order", self.agg_index, self.descending, self.partition_by)

    def __repr__(self) -> str:
        parts = [f"agg[{self.agg_index}]", "DESC" if self.descending else "ASC"]
        if self.partition_by:
            parts.append(f"PER({', '.join(self.partition_by)})")
        return f"OrderSpec({' '.join(parts)})"
