"""The aggregate-batch query language.

LMFAO queries are **sum-product group-by aggregates** over the natural join
``D`` of the database: ``SELECT G, SUM(f1(a1) * ... * fm(am)) FROM D
[WHERE conds] GROUP BY G``. A :class:`QueryBatch` bundles hundreds to
thousands of such queries for joint optimisation.
"""

from repro.query.aggregates import Aggregate, Factor, OrderSpec
from repro.query.batch import QueryBatch
from repro.query.functions import (
    Function,
    FunctionRegistry,
    identity,
    indicator,
    one,
    square,
)
from repro.query.parser import parse_query
from repro.query.predicates import Op, Predicate
from repro.query.query import Query

__all__ = [
    "Aggregate",
    "Factor",
    "Function",
    "FunctionRegistry",
    "Op",
    "OrderSpec",
    "Predicate",
    "Query",
    "QueryBatch",
    "identity",
    "indicator",
    "one",
    "parse_query",
    "square",
]
