"""Selection predicates (the WHERE clause of decision-tree queries)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.query.functions import Function, indicator
from repro.util.errors import QueryError


class Op(enum.Enum):
    """Comparison operators supported in WHERE conjunctions.

    The paper's CART section uses ``op ∈ {≤, ≥, =, ≠}``; we add the strict
    forms for completeness.
    """

    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    EQ = "=="
    NE = "!="

    @staticmethod
    def parse(text: str) -> "Op":
        normalized = {"=": "==", "<>": "!="}.get(text, text)
        for op in Op:
            if op.value == normalized:
                return op
        raise QueryError(f"unknown comparison operator {text!r}")


@dataclass(frozen=True)
class Predicate:
    """A single comparison ``attribute op value``."""

    attribute: str
    op: Op
    value: float

    @property
    def signature(self) -> tuple[str, str, float]:
        """Structural identity for merging and grouping decisions."""
        return (self.attribute, self.op.value, float(self.value))

    def evaluate(self, column: np.ndarray) -> np.ndarray:
        """Vectorised boolean evaluation over a column."""
        ops = {
            Op.LE: np.less_equal,
            Op.GE: np.greater_equal,
            Op.LT: np.less,
            Op.GT: np.greater,
            Op.EQ: np.equal,
            Op.NE: np.not_equal,
        }
        return ops[self.op](column, self.value)

    def as_indicator(self) -> Function:
        """The predicate as an indicator factor ``1[a op v]``.

        This is how the engine folds per-query conditions into sum-product
        aggregates so that differently-filtered queries still share one scan.
        """
        return indicator(self.op.value, float(self.value))

    def __repr__(self) -> str:
        return f"{self.attribute}{self.op.value}{self.value:g}"
