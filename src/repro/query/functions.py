"""User-defined aggregate functions (the ``g`` and ``h`` of the paper).

A :class:`Function` is a named, pure, unary numeric function together with a
numpy-vectorised form. Names identify functions: two factors with the same
function name and attribute are considered the same computation and are
shared by the optimiser, so names must be unique per behaviour (the
:class:`FunctionRegistry` enforces this).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util.errors import QueryError

#: process-wide name → live Function map (weak: does not pin instances).
#: This is what makes functions *transportable by name*: the multiprocess
#: executor pickles a Function as just its name (the registry contract says
#: names are unique per behaviour), and :func:`resolve_function` restores
#: the live object on the other side — from this map when the instance
#: exists in the receiving process, or by reconstruction for the built-ins
#: and the mechanically derived ``ind[...]`` indicators.
_LIVE_FUNCTIONS: "weakref.WeakValueDictionary[str, Function]" = (
    weakref.WeakValueDictionary()
)


@dataclass(frozen=True)
class Function:
    """A named unary numeric function used inside SUM(...) products.

    Attributes
    ----------
    name:
        Unique identifier; structural equality of factors is by name.
    vectorized:
        ``f(np.ndarray) -> np.ndarray`` applied to whole columns. The scalar
        form is derived from it.
    """

    name: str
    vectorized: Callable[[np.ndarray], np.ndarray] = field(compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("function name must be non-empty")
        # first creation wins — names are unique per behaviour, so keeping
        # the earliest live instance is sound and keeps resolve stable
        if _LIVE_FUNCTIONS.get(self.name) is None:
            _LIVE_FUNCTIONS[self.name] = self

    def __reduce__(self):
        # Pickle by name: ``vectorized`` is usually a lambda (unpicklable),
        # and equality is by name anyway. Unpickling resolves the live
        # instance or reconstructs built-ins/indicators — the transport the
        # process-parallel executor (repro.core.mpexec) relies on.
        return (resolve_function, (self.name,))

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Apply to a column (or scalar) and return float64 results."""
        return np.asarray(self.vectorized(np.asarray(values)), dtype=np.float64)

    def scalar(self, value: float) -> float:
        """Apply to a single value."""
        return float(self.vectorized(np.asarray([value]))[0])

    def __repr__(self) -> str:
        return f"Function({self.name})"


#: The identity function — ``SUM(X)`` uses ``identity`` on ``X``.
identity = Function("id", lambda x: x.astype(np.float64))

#: The constant-one function — ``SUM(1)`` has no factors, but ``one`` exists
#: for explicitness in tests.
one = Function("one", lambda x: np.ones(len(x), dtype=np.float64))

#: Squaring — ``SUM(X*X)`` can also be written as a single ``square`` factor.
square = Function("sq", lambda x: x.astype(np.float64) ** 2)


def indicator(op: str, threshold: float) -> Function:
    """An indicator function ``1[x op threshold]``.

    LMFAO compiles WHERE predicates into indicator factors inside the sum
    product, which is how decision-tree condition batches stay in one pass
    (see :mod:`repro.ml.cart`).
    """
    ops: dict[str, Callable[[np.ndarray], np.ndarray]] = {
        "<=": lambda x: x <= threshold,
        ">=": lambda x: x >= threshold,
        "<": lambda x: x < threshold,
        ">": lambda x: x > threshold,
        "==": lambda x: x == threshold,
        "!=": lambda x: x != threshold,
    }
    if op not in ops:
        raise QueryError(f"unknown predicate operator {op!r}")
    fn = ops[op]
    compact = repr(float(threshold)) if threshold != int(threshold) else str(int(threshold))
    return Function(f"ind[{op}{compact}]", lambda x, _fn=fn: _fn(x).astype(np.float64))


_INDICATOR_OPS = ("<=", ">=", "==", "!=", "<", ">")  # longest-match first


def _parse_indicator_name(name: str) -> Function | None:
    """Reconstruct an ``ind[<op><threshold>]`` function from its name."""
    if not (name.startswith("ind[") and name.endswith("]")):
        return None
    body = name[4:-1]
    for op in _INDICATOR_OPS:
        if body.startswith(op):
            try:
                return indicator(op, float(body[len(op):]))
            except (ValueError, QueryError):
                return None
    return None


def resolve_function(name: str) -> Function:
    """The live :class:`Function` for ``name`` (the unpickle counterpart).

    Resolution order: a live instance in this process (covers every
    function created here, including user registrations inherited across
    ``fork``), then the built-ins, then mechanical reconstruction of
    ``ind[...]`` indicator names. Raises :class:`QueryError` for names
    that cannot be restored — the process executor checks
    :func:`transportable` *before* shipping work, so this error means a
    caller bypassed that check.
    """
    live = _LIVE_FUNCTIONS.get(name)
    if live is not None:
        return live
    restored = _parse_indicator_name(name)
    if restored is not None:
        return restored
    raise QueryError(
        f"function {name!r} cannot be reconstructed in this process: only "
        f"built-ins, indicators and functions created in (or inherited by) "
        f"the process resolve by name"
    )


def transportable(fn: Function) -> bool:
    """Whether ``fn`` survives pickle-by-name into a *fresh* process.

    True for the built-ins and for ``ind[...]`` indicators — the functions
    every parsed query and folded predicate uses. Custom lambdas resolve
    only where the instance (or a forked copy) already lives, so the
    process executor keeps groups using them on the scheduler process.
    """
    return fn.name in ("id", "one", "sq") or _parse_indicator_name(fn.name) is not None


class FunctionRegistry:
    """Name → :class:`Function` mapping used by the SQL-ish parser.

    Starts with the built-ins (``id``, ``one``, ``sq``) and accepts user
    registrations; re-registering a name with a different object raises.
    """

    def __init__(self) -> None:
        self._functions: dict[str, Function] = {}
        for fn in (identity, one, square):
            self._functions[fn.name] = fn

    def register(self, fn: Function) -> Function:
        existing = self._functions.get(fn.name)
        if existing is not None and existing is not fn:
            raise QueryError(f"function {fn.name!r} already registered")
        self._functions[fn.name] = fn
        return fn

    def get(self, name: str) -> Function:
        try:
            return self._functions[name]
        except KeyError:
            raise QueryError(f"unknown function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions
