"""Group-by aggregate queries over the join of the database."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.data.schema import DatabaseSchema
from repro.query.aggregates import Aggregate
from repro.query.predicates import Predicate
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Query:
    """``SELECT group_by, aggregates FROM D [WHERE where] GROUP BY group_by``.

    ``D`` is always the natural join of every database relation — the
    feature-extraction join of the paper. A query may carry several
    aggregates (e.g. the CART triple ``SUM(1), SUM(Y), SUM(Y^2)``); all share
    the query's group-by and WHERE conjunction.

    Attributes
    ----------
    name:
        Unique name within a batch; results are keyed by it.
    group_by:
        Group-by attributes, output order preserved. Empty for scalar
        aggregates.
    aggregates:
        One or more sum-product aggregates.
    where:
        Conjunction of simple comparison predicates; empty means no filter.
    """

    name: str
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = (Aggregate.count(),)
    where: tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("query name must be non-empty")
        if not self.aggregates:
            raise QueryError(f"query {self.name} needs at least one aggregate")
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError(f"query {self.name} repeats group-by attributes")

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes the query touches (group-by, factors, predicates)."""
        seen: dict[str, None] = dict.fromkeys(self.group_by)
        for agg in self.aggregates:
            seen.update(dict.fromkeys(agg.attributes))
        for pred in self.where:
            seen.setdefault(pred.attribute, None)
        return tuple(seen)

    def validate_against(self, schema: DatabaseSchema) -> None:
        """Raise :class:`QueryError` on references to unknown attributes."""
        known = set(schema.all_attributes)
        for attr in self.attributes:
            if attr not in known:
                raise QueryError(f"query {self.name}: unknown attribute {attr!r}")

    def __repr__(self) -> str:
        parts = [f"Query({self.name}: SELECT "]
        select = list(self.group_by) + [repr(a) for a in self.aggregates]
        parts.append(", ".join(select))
        parts.append(" FROM D")
        if self.where:
            parts.append(" WHERE " + " AND ".join(repr(p) for p in self.where))
        if self.group_by:
            parts.append(" GROUP BY " + ", ".join(self.group_by))
        parts.append(")")
        return "".join(parts)


@dataclass
class QueryResult:
    """The result of one query: group-by tuples mapped to aggregate vectors.

    For scalar queries (no group-by) the mapping has the single key ``()``.
    Aggregate values follow the order of ``Query.aggregates``.
    """

    query: Query
    groups: dict[tuple, tuple[float, ...]] = field(default_factory=dict)

    def scalar(self, index: int = 0) -> float:
        """The value of a no-group-by aggregate (0.0 on empty join)."""
        if self.query.group_by:
            raise QueryError(f"query {self.query.name} is grouped; use groups")
        if not self.groups:
            return 0.0
        return self.groups[()][index]

    def __getitem__(self, key: object) -> tuple[float, ...]:
        if not isinstance(key, tuple):
            key = (key,)
        return self.groups[key]

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        return f"QueryResult({self.query.name}, groups={len(self.groups)})"
