"""Group-by aggregate queries over the join of the database."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.data.schema import DatabaseSchema
from repro.query.aggregates import Aggregate, OrderSpec
from repro.query.predicates import Predicate
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Query:
    """``SELECT group_by, aggregates FROM D [WHERE where] GROUP BY group_by``.

    ``D`` is always the natural join of every database relation — the
    feature-extraction join of the paper. A query may carry several
    aggregates (e.g. the CART triple ``SUM(1), SUM(Y), SUM(Y^2)``); all share
    the query's group-by and WHERE conjunction.

    Attributes
    ----------
    name:
        Unique name within a batch; results are keyed by it.
    group_by:
        Group-by attributes, output order preserved. Empty for scalar
        aggregates.
    aggregates:
        One or more sum-product aggregates.
    where:
        Conjunction of simple comparison predicates; empty means no filter.
    order_by:
        Optional :class:`~repro.query.aggregates.OrderSpec` ranking the
        result rows by one aggregate, per partition. Ordered results are
        *finished*: :attr:`QueryResult.groups` is insertion-ordered by
        the spec's deterministic total order (and truncated by
        ``limit``), identically on every backend and execution path.
    limit:
        Optional top-k cut *per partition* (requires ``order_by``);
        ``None`` keeps every row, ordered. ``0`` is allowed and yields
        an empty result.
    """

    name: str
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = (Aggregate.count(),)
    where: tuple[Predicate, ...] = ()
    order_by: OrderSpec | None = None
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("query name must be non-empty")
        if not self.aggregates:
            raise QueryError(f"query {self.name} needs at least one aggregate")
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError(f"query {self.name} repeats group-by attributes")
        if self.limit is not None and self.order_by is None:
            raise QueryError(f"query {self.name}: limit requires order_by")
        if self.order_by is not None:
            if not self.group_by:
                raise QueryError(
                    f"query {self.name}: order_by needs a group-by "
                    f"(a scalar result has nothing to rank)"
                )
            if self.order_by.agg_index >= len(self.aggregates):
                raise QueryError(
                    f"query {self.name}: order_by.agg_index "
                    f"{self.order_by.agg_index} out of range for "
                    f"{len(self.aggregates)} aggregate(s)"
                )
            unknown = set(self.order_by.partition_by) - set(self.group_by)
            if unknown:
                raise QueryError(
                    f"query {self.name}: order_by.partition_by attributes "
                    f"{sorted(unknown)} are not in the group-by"
                )
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"query {self.name}: limit must be >= 0")

    @property
    def is_ordered(self) -> bool:
        """Whether results are finished (ranked, possibly truncated)."""
        return self.order_by is not None

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes the query touches (group-by, factors, predicates)."""
        seen: dict[str, None] = dict.fromkeys(self.group_by)
        for agg in self.aggregates:
            seen.update(dict.fromkeys(agg.attributes))
        for pred in self.where:
            seen.setdefault(pred.attribute, None)
        return tuple(seen)

    def validate_against(self, schema: DatabaseSchema) -> None:
        """Raise :class:`QueryError` on references to unknown attributes."""
        known = set(schema.all_attributes)
        for attr in self.attributes:
            if attr not in known:
                raise QueryError(f"query {self.name}: unknown attribute {attr!r}")

    def __repr__(self) -> str:
        parts = [f"Query({self.name}: SELECT "]
        select = list(self.group_by) + [repr(a) for a in self.aggregates]
        parts.append(", ".join(select))
        parts.append(" FROM D")
        if self.where:
            parts.append(" WHERE " + " AND ".join(repr(p) for p in self.where))
        if self.group_by:
            parts.append(" GROUP BY " + ", ".join(self.group_by))
        if self.order_by is not None:
            parts.append(" ORDER BY " + repr(self.order_by))
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
        parts.append(")")
        return "".join(parts)


@dataclass
class QueryResult:
    """The result of one query: group-by tuples mapped to aggregate vectors.

    For scalar queries (no group-by) the mapping has the single key ``()``.
    Aggregate values follow the order of ``Query.aggregates``.

    For **ordered** queries (``query.order_by`` set) the mapping is
    *finished*: insertion order follows the spec's deterministic total
    order (partitions ascending, rows ranked within each partition) and
    only the per-partition top-``limit`` rows survive. :meth:`ranked`
    and :meth:`topk` expose that order directly.
    """

    query: Query
    groups: dict[tuple, tuple[float, ...]] = field(default_factory=dict)

    def scalar(self, index: int = 0) -> float:
        """The value of a no-group-by aggregate (0.0 on empty join)."""
        if self.query.group_by:
            raise QueryError(f"query {self.query.name} is grouped; use groups")
        if not self.groups:
            return 0.0
        return self.groups[()][index]

    def __getitem__(self, key: object) -> tuple[float, ...]:
        if not isinstance(key, tuple):
            key = (key,)
        return self.groups[key]

    def ranked(self) -> list[tuple[tuple, tuple[float, ...]]]:
        """The finished rows in rank order (ordered queries only)."""
        if self.query.order_by is None:
            raise QueryError(
                f"query {self.query.name} has no order_by; groups are a bag"
            )
        return list(self.groups.items())

    def topk(self, partition: object = ()) -> list[tuple[tuple, tuple[float, ...]]]:
        """One partition's ranked rows (ordered queries only).

        ``partition`` is the partition-key tuple in ``partition_by``
        order (a bare value is wrapped; the default ``()`` reads the
        single global partition of an empty ``partition_by``).
        """
        if self.query.order_by is None:
            raise QueryError(
                f"query {self.query.name} has no order_by; groups are a bag"
            )
        if not isinstance(partition, tuple):
            partition = (partition,)
        positions = [
            self.query.group_by.index(a)
            for a in self.query.order_by.partition_by
        ]
        return [
            (key, values)
            for key, values in self.groups.items()
            if tuple(key[p] for p in positions) == partition
        ]

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        return f"QueryResult({self.query.name}, groups={len(self.groups)})"
