"""CSR trie index: the physical layout behind multi-output plans.

LMFAO organises a node's relation "logically as a trie: first grouped by the
first attribute in the order, then by the next one in the context of values
for the first, and so on" (paper, Section 2). This module materialises that
logical trie as a compact CSR-style index over the relation sorted by the
attribute order:

* level ``k`` holds one entry per distinct prefix ``(a_0 .. a_k)``: the
  attribute value of the run, its row range ``[row_start, row_end)`` in the
  sorted relation, and its child-run span ``[child_start, child_end)`` in
  level ``k+1``;
* **prefix-sum registers** over payload columns make any
  ``SUM(f(payload))`` over a run an O(1) subtraction — this is the
  substitution for the paper's compiled C++ row loops (see DESIGN.md): the
  generated Python only ever iterates *distinct* prefixes, never rows.

Building the index costs one ``lexsort`` of the relation; the engine caches
one index per (node, attribute order, filter) combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.data.relation import Relation
from repro.util.errors import PlanError


@dataclass(frozen=True)
class TrieLevel:
    """One trie level: runs of equal ``(a_0..a_k)`` prefixes.

    ``values[i]`` is the level-attribute value of run ``i``;
    ``row_start[i]:row_end[i]`` is its row range in the sorted relation;
    ``child_start[i]:child_end[i]`` spans its runs in the next level
    (equal to the row range at the deepest level).
    """

    attribute: str
    values: np.ndarray
    row_start: np.ndarray
    row_end: np.ndarray
    child_start: np.ndarray
    child_end: np.ndarray

    @property
    def num_runs(self) -> int:
        return len(self.values)


class TrieIndex:
    """A relation sorted by an attribute order plus per-level run arrays."""

    def __init__(
        self, relation: Relation, order: Sequence[str], *, presorted: bool = False
    ) -> None:
        order = tuple(order)
        for name in order:
            if name not in relation.schema:
                raise PlanError(f"trie order attribute {name!r} not in {relation.name}")
        if len(set(order)) != len(order):
            raise PlanError(f"trie order has duplicates: {order}")
        self.order = order
        self.relation = relation if presorted else relation.sorted_by(order)
        self._levels = self._build_levels()
        self._prefix_sums: dict[str, np.ndarray] = {}
        self._level_lists: dict[int, tuple[list, list, list, list, list]] = {}
        self._level_functions: dict[tuple, object] = {}
        self._prefix_lists: dict[str, list] = {}
        self._partition_cache: dict[int, list["TrieIndex"]] = {}
        #: scratch cache for derived run geometry (parent maps, ancestor
        #: maps, span starts) computed by the NumPy backend — keyed and
        #: owned by repro.core.npbackend, invalidated with the index.
        self._np_cache: dict = {}

    @classmethod
    def from_sorted(cls, relation: Relation, order: Sequence[str]) -> "TrieIndex":
        """Index a relation that is *already* sorted by ``order``.

        The partitioning path: a contiguous row slice of a sorted relation
        is itself sorted, so a partition's index skips the ``lexsort`` and
        only pays the (vectorised, linear) run-boundary scan.
        """
        return cls(relation, order, presorted=True)

    @classmethod
    def from_shared_parts(
        cls,
        relation: Relation,
        order: Sequence[str],
        levels: "list[TrieLevel]",
    ) -> "TrieIndex":
        """Assemble an index from an already-sorted relation and prebuilt levels.

        The shared-memory transport path (:mod:`repro.core.mpexec`): a
        worker process maps the parent's flat level arrays and sorted
        column buffers read-only and reassembles the index without paying
        the sort *or* the run-boundary scan — zero copies, zero pickling
        of relations. The caller owns the buffers' lifetime (the mapped
        segment must outlive the index). All derived caches (prefix sums,
        level lists, function arrays) start empty and are recomputed per
        process, which is exactly the per-process warm-up the executor
        amortises across runs.
        """
        self = cls.__new__(cls)
        self.order = tuple(order)
        self.relation = relation
        self._levels = list(levels)
        self._prefix_sums = {}
        self._level_lists = {}
        self._level_functions = {}
        self._prefix_lists = {}
        self._partition_cache = {}
        self._np_cache = {}
        return self

    def _build_levels(self) -> list[TrieLevel]:
        n = self.relation.num_rows
        levels: list[TrieLevel] = []
        if not self.order:
            return levels
        # boundaries[k] = sorted row indices where a new (a_0..a_k) prefix starts.
        change = np.zeros(n, dtype=bool)
        starts_per_level: list[np.ndarray] = []
        for name in self.order:
            col = self.relation.column(name)
            if n > 0:
                change[0] = True
                change[1:] |= col[1:] != col[:-1]
            starts_per_level.append(np.flatnonzero(change))
        row_counts = np.int64(n)
        for k, name in enumerate(self.order):
            starts = starts_per_level[k]
            ends = np.append(starts[1:], row_counts)
            col = self.relation.column(name)
            values = col[starts] if n > 0 else col[:0]
            if k + 1 < len(self.order):
                child_bounds = starts_per_level[k + 1]
                child_start = np.searchsorted(child_bounds, starts, side="left")
                child_end = np.searchsorted(child_bounds, ends, side="left")
            else:
                child_start = starts
                child_end = ends
            levels.append(
                TrieLevel(
                    attribute=name,
                    values=values,
                    row_start=starts,
                    row_end=ends,
                    child_start=child_start,
                    child_end=child_end,
                )
            )
        return levels

    # ---------------------------------------------------------------- accessors
    @property
    def levels(self) -> list[TrieLevel]:
        """Trie levels, outermost first."""
        return self._levels

    def level(self, k: int) -> TrieLevel:
        return self._levels[k]

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    def column(self, name: str) -> np.ndarray:
        """A column of the *sorted* relation."""
        return self.relation.column(name)

    # ------------------------------------------------------------- prefix sums
    def prefix_sum(
        self,
        signature: str,
        compute: Callable[[Relation], np.ndarray],
    ) -> np.ndarray:
        """Cached prefix-sum register for a row-level term.

        ``compute`` receives the sorted relation and returns one float per
        row (e.g. ``units * price`` or an indicator column). The returned
        array ``P`` has ``len+1`` entries with
        ``P[hi] - P[lo] == sum(term[lo:hi])``.
        """
        cached = self._prefix_sums.get(signature)
        if cached is not None:
            return cached
        term = np.asarray(compute(self.relation), dtype=np.float64)
        if term.shape != (self.relation.num_rows,):
            raise PlanError(
                f"prefix-sum term {signature!r} has shape {term.shape}, "
                f"expected ({self.relation.num_rows},)"
            )
        out = np.empty(len(term) + 1, dtype=np.float64)
        out[0] = 0.0
        np.cumsum(term, out=out[1:])
        out.setflags(write=False)
        self._prefix_sums[signature] = out
        return out

    def run_count(self, k: int) -> int:
        """Number of distinct prefixes of length ``k+1``."""
        return self._levels[k].num_runs

    # ------------------------------------------------------------------ rebuild
    def rebuilt(self, relation: Relation) -> "TrieIndex":
        """A fresh index over an updated instance, same attribute order.

        This is the *partitioned rebuild* of incremental maintenance: when a
        base relation changes, only the tries of that one join-tree node are
        reconstructed (one ``lexsort`` of the updated instance); every other
        node's index — including its prefix-sum registers and cached level
        lists — survives untouched in the caches keyed by (node, order,
        filter).
        """
        return TrieIndex(relation, self.order)

    # --------------------------------------------------------------- partitions
    def partitions(self, k: int) -> list["TrieIndex"]:
        """Slice this index into at most ``k`` disjoint sub-tries.

        Domain parallelism (paper §4): cuts are placed on **level-0 run
        boundaries**, balanced by row count, so each partition is a fully
        independent :class:`TrieIndex` over a contiguous range of the sorted
        relation and the *same* compiled group code runs unchanged over it.
        Because every level-0 run is a distinct value of the first order
        attribute, partitions have pairwise-disjoint level-0 value sets —
        the property the partial-aggregate merge relies on for aligned
        emissions. Partition indexes share the sorted relation's column
        buffers (zero copy) and reuse the partitioned-rebuild machinery of
        :meth:`from_sorted`.

        Returns ``[self]`` when the index cannot be split: ``k <= 1``, an
        empty attribute order, or fewer than two level-0 runs (including
        the empty relation). Never returns empty partitions. The result is
        cached per ``k``, so repeated executions over the same index (the
        decision-tree workload) also reuse every partition's prefix-sum
        registers and level lists.
        """
        if k <= 1 or not self._levels:
            return [self]
        level0 = self._levels[0]
        runs = level0.num_runs
        if runs <= 1:
            return [self]
        k = min(k, runs)
        cached = self._partition_cache.get(k)
        if cached is not None:
            return cached
        # Snap each row-count target to the nearest level-0 run boundary, so
        # partitions are balanced by rows (not runs) even under key skew.
        ends = level0.row_end
        cuts = []
        for i in range(1, k):
            target = (i * self.num_rows) // k
            at = int(np.searchsorted(ends, target, side="left"))
            lo = min(max(at, 1), runs - 1)
            hi = min(at + 1, runs - 1)
            near = abs(int(ends[lo - 1]) - target) <= abs(int(ends[hi - 1]) - target)
            cuts.append(lo if near else hi)
        bounds = [0, *dict.fromkeys(cuts), runs]
        if len(bounds) == 2:
            return [self]
        parts: list[TrieIndex] = []
        for lo_run, hi_run in zip(bounds, bounds[1:]):
            lo = int(level0.row_start[lo_run])
            hi = int(level0.row_end[hi_run - 1])
            parts.append(
                TrieIndex.from_sorted(self.relation.row_slice(lo, hi), self.order)
            )
        self._partition_cache[k] = parts
        return parts

    # ----------------------------------------------- interpreter/codegen views
    def level_lists(self, k: int) -> tuple[list, list, list, list, list]:
        """Level ``k`` arrays as plain Python lists (cached).

        Generated plan code runs per *distinct prefix* in pure Python;
        list indexing and native-int hashing are markedly faster there than
        numpy scalar access, so the runtime works off these lists.
        Returns ``(values, row_start, row_end, child_start, child_end)``.
        """
        cached = self._level_lists.get(k)
        if cached is None:
            lvl = self._levels[k]
            cached = (
                lvl.values.tolist(),
                lvl.row_start.tolist(),
                lvl.row_end.tolist(),
                lvl.child_start.tolist(),
                lvl.child_end.tolist(),
            )
            self._level_lists[k] = cached
        return cached

    def level_function_array(
        self, k: int, signature: str, compute: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """``compute`` applied to the distinct values of level ``k`` (cached array).

        This materialises a per-run factor array: plans evaluate
        ``f(attr)`` once per distinct value, not once per row. The C
        backend reads the ndarray directly; the Python backend works off
        :meth:`level_function_values` (the same data as a plain list).
        """
        key = (k, signature, "array")
        cached = self._level_functions.get(key)
        if cached is None:
            cached = np.ascontiguousarray(
                compute(self._levels[k].values), dtype=np.float64
            )
            cached.setflags(write=False)
            self._level_functions[key] = cached
        return cached

    def level_function_values(
        self, k: int, signature: str, compute: Callable[[np.ndarray], np.ndarray]
    ) -> list:
        """:meth:`level_function_array` as a cached Python list (see
        :meth:`level_lists`)."""
        key = (k, signature)
        cached = self._level_functions.get(key)
        if cached is None:
            cached = self.level_function_array(k, signature, compute).tolist()
            self._level_functions[key] = cached
        return cached

    def prefix_sum_list(
        self, signature: str, compute: Callable[[Relation], np.ndarray]
    ) -> list:
        """:meth:`prefix_sum` as a cached Python list (see :meth:`level_lists`)."""
        cached = self._prefix_lists.get(signature)
        if cached is None:
            cached = self.prefix_sum(signature, compute).tolist()
            self._prefix_lists[signature] = cached
        return cached

    def __repr__(self) -> str:
        runs = "x".join(str(lvl.num_runs) for lvl in self._levels)
        return f"TrieIndex({self.relation.name}, order={self.order}, runs={runs})"
