"""Relation and database schemas.

Natural-join semantics: attributes are global names. Two relations that both
mention attribute ``date`` join on it. A :class:`DatabaseSchema` therefore
checks that every shared attribute name is declared with the same kind in
all relations that carry it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.data.types import AttributeKind
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute.

    Attributes
    ----------
    name:
        Globally unique attribute name (natural-join key).
    kind:
        :class:`AttributeKind` — categorical (int64 codes) or continuous
        (float64 measures).
    """

    name: str
    kind: AttributeKind = AttributeKind.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"attribute name must be an identifier, got {self.name!r}")

    @staticmethod
    def categorical(name: str) -> "Attribute":
        """Shorthand for a categorical attribute."""
        return Attribute(name, AttributeKind.CATEGORICAL)

    @staticmethod
    def continuous(name: str) -> "Attribute":
        """Shorthand for a continuous attribute."""
        return Attribute(name, AttributeKind.CONTINUOUS)


@dataclass(frozen=True)
class RelationSchema:
    """An ordered list of attributes under a relation name."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"relation name must be an identifier, got {self.name!r}")
        names = [attr.name for attr in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {self.name} has duplicate attributes: {names}")
        if not names:
            raise SchemaError(f"relation {self.name} has no attributes")

    @staticmethod
    def of(name: str, attributes: Iterable[Attribute]) -> "RelationSchema":
        """Build a schema from any attribute iterable."""
        return RelationSchema(name, tuple(attributes))

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(attr.name for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name; raises :class:`SchemaError` if absent."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"relation {self.name} has no attribute {name!r}")

    def __contains__(self, attr_name: str) -> bool:
        return any(attr.name == attr_name for attr in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)


class DatabaseSchema:
    """A named collection of relation schemas with consistent shared attributes."""

    def __init__(self, relations: Iterable[RelationSchema], name: str = "db") -> None:
        self.name = name
        self._relations: dict[str, RelationSchema] = {}
        kinds: dict[str, tuple[str, AttributeKind]] = {}
        for rel in relations:
            if rel.name in self._relations:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            self._relations[rel.name] = rel
            for attr in rel.attributes:
                seen = kinds.get(attr.name)
                if seen is not None and seen[1] is not attr.kind:
                    raise SchemaError(
                        f"attribute {attr.name!r} is {seen[1].value} in {seen[0]} "
                        f"but {attr.kind.value} in {rel.name}"
                    )
                kinds.setdefault(attr.name, (rel.name, attr.kind))
        if not self._relations:
            raise SchemaError("database schema needs at least one relation")
        self._kinds = {name: kind for name, (_, kind) in kinds.items()}

    @property
    def relations(self) -> tuple[RelationSchema, ...]:
        """Relation schemas in declaration order."""
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._relations

    @property
    def all_attributes(self) -> tuple[str, ...]:
        """Every attribute name in the database, first-seen order."""
        return tuple(self._kinds)

    def attribute_kind(self, attr_name: str) -> AttributeKind:
        """Kind of a (global) attribute name."""
        try:
            return self._kinds[attr_name]
        except KeyError:
            raise SchemaError(f"no attribute named {attr_name!r}") from None

    def relations_with(self, attr_name: str) -> tuple[str, ...]:
        """Names of the relations that carry ``attr_name``."""
        return tuple(rel.name for rel in self._relations.values() if attr_name in rel)

    def shared_attributes(self, left: str, right: str) -> tuple[str, ...]:
        """Attributes shared by two relations — their natural-join key."""
        right_names = set(self.relation(right).attribute_names)
        return tuple(a for a in self.relation(left).attribute_names if a in right_names)

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{rel.name}({', '.join(rel.attribute_names)})" for rel in self.relations
        )
        return f"DatabaseSchema[{self.name}]({rels})"
