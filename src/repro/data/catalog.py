"""The database catalog: relation instances plus cardinality statistics.

LMFAO's view generation layer consumes "the database schema and cardinality
constraints (e.g., sizes of relations and attribute domains)" (paper,
Section 2). :class:`Database` carries both, with statistics computed lazily
and cached.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.data.join import natural_join
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema
from repro.util.errors import SchemaError


class Database:
    """A set of relation instances conforming to a :class:`DatabaseSchema`."""

    def __init__(self, relations: Iterable[Relation], name: str = "db") -> None:
        rels = list(relations)
        self.schema = DatabaseSchema([r.schema for r in rels], name=name)
        self._relations: dict[str, Relation] = {r.name: r for r in rels}
        self._distinct_cache: dict[str, int] = {}

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        """Look up a relation instance by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def with_relation(self, relation: Relation) -> "Database":
        """A new database with one relation replaced (same name required)."""
        if relation.name not in self._relations:
            raise SchemaError(f"no relation named {relation.name!r} to replace")
        rels = [relation if r.name == relation.name else r for r in self.relations]
        return Database(rels, name=self.name)

    # ---------------------------------------------------------------- statistics
    def cardinality(self, relation_name: str) -> int:
        """Number of tuples in a relation."""
        return self.relation(relation_name).num_rows

    def total_tuples(self) -> int:
        """Total tuples across all relations."""
        return sum(r.num_rows for r in self.relations)

    def domain_size(self, attr_name: str) -> int:
        """Distinct values of an attribute across every relation carrying it.

        This is the "attribute domain" cardinality constraint used by the
        root-assignment heuristic and the attribute-order heuristic.
        """
        cached = self._distinct_cache.get(attr_name)
        if cached is not None:
            return cached
        holders = self.schema.relations_with(attr_name)
        if not holders:
            raise SchemaError(f"no attribute named {attr_name!r}")
        size = max(self.relation(r).distinct_count(attr_name) for r in holders)
        self._distinct_cache[attr_name] = size
        return size

    # ----------------------------------------------------------------- the join
    def materialize_join(self, output_name: str = "D") -> Relation:
        """The natural join of all relations — the dataset ``D`` of the paper.

        Only baselines and tests call this; the engine never does.
        """
        return natural_join(list(self.relations), output_name=output_name)

    def summary(self) -> Mapping[str, int]:
        """Relation name → cardinality, for reports."""
        return {r.name: r.num_rows for r in self.relations}

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.name}:{r.num_rows}" for r in self.relations)
        return f"Database[{self.name}]({parts})"
