"""Column-oriented relations backed by numpy arrays.

A :class:`Relation` is an immutable bag of tuples stored column-wise. All
engine operators (sort, select, project) return new relations sharing the
original column buffers where safe.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.schema import RelationSchema
from repro.data.types import coerce_column
from repro.util.errors import SchemaError


class Relation:
    """An immutable, column-stored relation instance of a schema."""

    def __init__(self, schema: RelationSchema, columns: Mapping[str, object]) -> None:
        self.schema = schema
        cols: dict[str, np.ndarray] = {}
        length: int | None = None
        for attr in schema.attributes:
            if attr.name not in columns:
                raise SchemaError(f"missing column {attr.name!r} for relation {schema.name}")
            col = coerce_column(columns[attr.name], attr.kind)
            if length is None:
                length = len(col)
            elif len(col) != length:
                raise SchemaError(
                    f"column {attr.name!r} has {len(col)} rows, expected {length}"
                )
            col.setflags(write=False)
            cols[attr.name] = col
        extra = set(columns) - set(cols)
        if extra:
            raise SchemaError(f"unknown columns for {schema.name}: {sorted(extra)}")
        self._columns = cols
        self._num_rows = length if length is not None else 0

    # ------------------------------------------------------------------ basics
    @property
    def name(self) -> str:
        """The relation's schema name."""
        return self.schema.name

    @property
    def num_rows(self) -> int:
        """Number of tuples (with duplicates)."""
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def column(self, name: str) -> np.ndarray:
        """The (read-only) column array for ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"relation {self.name} has no column {name!r}") from None

    def columns(self) -> dict[str, np.ndarray]:
        """All columns, keyed by attribute name."""
        return dict(self._columns)

    # -------------------------------------------------------------- constructors
    @staticmethod
    def from_rows(schema: RelationSchema, rows: Iterable[Sequence[object]]) -> "Relation":
        """Build a relation from an iterable of tuples in schema order."""
        rows = list(rows)
        names = schema.attribute_names
        if rows:
            width = len(rows[0])
            if width != len(names):
                raise SchemaError(
                    f"rows have {width} fields but {schema.name} has {len(names)} attributes"
                )
        columns = {
            name: [row[i] for row in rows] if rows else np.empty(0)
            for i, name in enumerate(names)
        }
        return Relation(schema, columns)

    def replace_columns(self, **columns: object) -> "Relation":
        """A copy of this relation with some columns replaced."""
        merged: dict[str, object] = dict(self._columns)
        merged.update(columns)
        return Relation(self.schema, merged)

    # ------------------------------------------------------------------ operators
    def take(self, indices: np.ndarray) -> "Relation":
        """Row subset / reorder by integer index array."""
        return Relation(
            self.schema, {name: col[indices] for name, col in self._columns.items()}
        )

    def row_slice(self, start: int, stop: int) -> "Relation":
        """The contiguous row range ``[start, stop)`` as a zero-copy view.

        Column buffers are shared with this relation (numpy slices), which
        is what makes trie partitioning cheap: a partition of a sorted
        relation is just a row range of it.
        """
        return Relation(
            self.schema, {name: col[start:stop] for name, col in self._columns.items()}
        )

    def filter(self, mask: np.ndarray) -> "Relation":
        """Row subset by boolean mask."""
        if mask.dtype != np.bool_ or len(mask) != self._num_rows:
            raise ValueError("mask must be a boolean array with one entry per row")
        return Relation(
            self.schema, {name: col[mask] for name, col in self._columns.items()}
        )

    def select(self, predicate: Callable[[dict[str, np.ndarray]], np.ndarray]) -> "Relation":
        """Filter by a vectorised predicate over the column dict."""
        return self.filter(np.asarray(predicate(self._columns), dtype=bool))

    def project(self, names: Sequence[str], distinct: bool = False) -> "Relation":
        """Project onto ``names`` (bag semantics unless ``distinct``)."""
        attrs = tuple(self.schema.attribute(n) for n in names)
        sub = RelationSchema(self.schema.name, attrs)
        rel = Relation(sub, {n: self._columns[n] for n in names})
        if distinct:
            order = rel.sorted_by(names)
            if order.num_rows == 0:
                return order
            # a row survives when ANY key column changed vs. the previous row
            keep = np.zeros(order.num_rows, dtype=bool)
            keep[0] = True
            for name in names:
                col = order.column(name)
                keep[1:] |= col[1:] != col[:-1]
            return order.filter(keep)
        return rel

    def sorted_by(self, names: Sequence[str]) -> "Relation":
        """Rows sorted lexicographically by ``names`` (stable)."""
        if self._num_rows == 0 or not names:
            return self
        keys = [self._columns[n] for n in reversed(list(names))]
        order = np.lexsort(keys)
        return self.take(order)

    def rename(self, new_name: str) -> "Relation":
        """Same data under a different relation name."""
        schema = RelationSchema(new_name, self.schema.attributes)
        return Relation(schema, dict(self._columns))

    # ------------------------------------------------------------------ updates
    def concat(self, other: "Relation") -> "Relation":
        """Append another instance of the same schema (bag union).

        The incremental-maintenance append path: inserted tuples arrive as a
        delta relation and are concatenated column-wise. Attribute names and
        order must match; the result keeps this relation's schema.
        """
        if other.attribute_names != self.attribute_names:
            raise SchemaError(
                f"cannot append {other.name} to {self.name}: attributes "
                f"{other.attribute_names} != {self.attribute_names}"
            )
        if other.num_rows == 0:
            return self
        return Relation(
            self.schema,
            {
                name: np.concatenate([self._columns[name], other.column(name)])
                for name in self.attribute_names
            },
        )

    def remove_rows(self, other: "Relation") -> "Relation":
        """Remove one occurrence per tuple of ``other`` (bag difference).

        The incremental-maintenance tombstone path: each delete tuple marks
        exactly one matching row; duplicates in ``other`` remove that many
        occurrences. Raises :class:`SchemaError` when a tuple has no
        remaining match — a delete of a non-existent row is always a bug in
        the caller's delta, never silently ignored.
        """
        if other.attribute_names != self.attribute_names:
            raise SchemaError(
                f"cannot delete {other.name} rows from {self.name}: attributes "
                f"{other.attribute_names} != {self.attribute_names}"
            )
        if other.num_rows == 0:
            return self
        # Vectorised multiset matching: pack rows into structured arrays,
        # sort this relation once, then binary-search each distinct delete
        # row's run. Python-level work is O(distinct delete rows), never
        # O(|relation|).
        names = list(self.attribute_names)
        mine = np.rec.fromarrays([self._columns[n] for n in names], names=names)
        gone = np.sort(
            np.rec.fromarrays([other.column(n) for n in names], names=names)
        )
        order = np.argsort(mine, kind="stable")
        sorted_mine = mine[order]
        run_starts = np.flatnonzero(np.concatenate(([True], gone[1:] != gone[:-1])))
        run_ends = np.append(run_starts[1:], len(gone))
        keep = np.ones(self._num_rows, dtype=bool)
        missing = 0
        example = None
        for start, end in zip(run_starts, run_ends):
            row = gone[start]
            wanted = end - start
            lo = np.searchsorted(sorted_mine, row, side="left")
            hi = np.searchsorted(sorted_mine, row, side="right")
            available = hi - lo
            if available < wanted:
                missing += wanted - available
                if example is None:
                    example = row.item()
                wanted = available
            keep[order[lo : lo + wanted]] = False
        if missing:
            raise SchemaError(
                f"delete from {self.name}: {missing} tuple(s) not present, "
                f"e.g. {example}"
            )
        return self.filter(keep)

    # ------------------------------------------------------------------- access
    def iter_rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate tuples in storage order (testing / small data only)."""
        cols = [self._columns[n] for n in self.attribute_names]
        for i in range(self._num_rows):
            yield tuple(col[i].item() for col in cols)

    def row(self, i: int) -> tuple[object, ...]:
        """The ``i``-th tuple."""
        return tuple(self._columns[n][i].item() for n in self.attribute_names)

    def distinct_count(self, name: str) -> int:
        """Number of distinct values in a column."""
        return int(np.unique(self._columns[name]).size)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema and same multiset of tuples."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.attribute_names != other.schema.attribute_names:
            return False
        if self.num_rows != other.num_rows:
            return False
        names = self.attribute_names
        a = self.sorted_by(names)
        b = other.sorted_by(names)
        return all(
            np.array_equal(a.column(n), b.column(n)) for n in names
        )

    def __hash__(self) -> int:  # pragma: no cover - relations are not hashable
        raise TypeError("Relation is unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.name}, rows={self.num_rows}, attrs={self.attribute_names})"
