"""Attribute kinds and their numpy representations.

LMFAO distinguishes two classes of attributes:

* **continuous** attributes enter aggregates through arithmetic functions
  (``SUM(X*Y)``); stored as ``float64``.
* **categorical** attributes are only compared for equality and appear as
  group-by attributes (the one-hot encoding of in-database ML); stored as
  dictionary-encoded ``int64`` codes.

Integer-valued keys (``store``, ``item``, dates, ...) are categorical for
grouping purposes but may still be used inside arithmetic user-defined
functions, so the kind records *intent*, not a hard restriction.
"""

from __future__ import annotations

import enum

import numpy as np


class AttributeKind(enum.Enum):
    """Intent of an attribute: how the ML layers treat it."""

    #: Dictionary-encoded key or category; group-by / one-hot candidate.
    CATEGORICAL = "categorical"
    #: Numeric measure; participates in SUM/PRODUCT arithmetic.
    CONTINUOUS = "continuous"

    def numpy_dtype(self) -> np.dtype:
        """The storage dtype used for columns of this kind."""
        if self is AttributeKind.CATEGORICAL:
            return np.dtype(np.int64)
        return np.dtype(np.float64)


def coerce_column(values: object, kind: AttributeKind) -> np.ndarray:
    """Return ``values`` as a 1-D numpy array of the kind's storage dtype.

    Accepts lists, tuples and arrays. Raises ``TypeError`` when categorical
    values cannot be represented as int64 exactly (e.g. fractional floats),
    because silently truncating keys would corrupt joins.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise TypeError(f"column must be 1-D, got shape {arr.shape}")
    target = kind.numpy_dtype()
    if arr.dtype == target:
        return arr
    if kind is AttributeKind.CATEGORICAL:
        as_int = arr.astype(np.int64, copy=True)
        if np.issubdtype(arr.dtype, np.floating) and not np.array_equal(
            as_int.astype(arr.dtype), arr
        ):
            raise TypeError("categorical column contains non-integer values")
        return as_int
    return arr.astype(np.float64, copy=True)
