"""In-memory column-store substrate.

This package provides the relational storage layer the LMFAO engine runs on:
typed schemas, numpy-backed relations, natural joins, the CSR trie index used
by multi-output plans, and synthetic generators for the paper's two
benchmark datasets (Favorita and Retailer).
"""

from repro.data.catalog import Database
from repro.data.generators import favorita, retailer
from repro.data.join import hash_join, natural_join
from repro.data.relation import Relation
from repro.data.schema import Attribute, DatabaseSchema, RelationSchema
from repro.data.trie import TrieIndex
from repro.data.types import AttributeKind

__all__ = [
    "Attribute",
    "AttributeKind",
    "Database",
    "DatabaseSchema",
    "Relation",
    "RelationSchema",
    "TrieIndex",
    "favorita",
    "hash_join",
    "natural_join",
    "retailer",
]
