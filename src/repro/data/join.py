"""Natural joins over column-stored relations.

These operators serve the baselines (which materialise joins) and the test
oracle. The LMFAO engine itself never materialises a join — that is the
point of the paper — but its results are validated against these operators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.util import stable_unique
from repro.util.errors import SchemaError


def hash_join(left: Relation, right: Relation, output_name: str = "join") -> Relation:
    """Natural hash join of two relations.

    Joins on all shared attribute names. With no shared attributes this is
    the Cartesian product (used only by tests on tiny inputs).
    """
    shared = [a for a in left.attribute_names if a in set(right.attribute_names)]
    for name in shared:
        la = left.schema.attribute(name)
        ra = right.schema.attribute(name)
        if la.kind is not ra.kind:
            raise SchemaError(f"join attribute {name!r} has mismatched kinds")

    if not shared:
        left_idx = np.repeat(np.arange(left.num_rows), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows), left.num_rows)
    else:
        # Build hash table on the smaller side.
        build, probe, swapped = (left, right, False) if left.num_rows <= right.num_rows else (
            right,
            left,
            True,
        )
        table: dict[object, list[int]] = {}
        build_cols = [build.column(n) for n in shared]
        if len(shared) == 1:
            keys_iter = build_cols[0].tolist()
        else:
            keys_iter = list(zip(*(c.tolist() for c in build_cols)))
        for i, key in enumerate(keys_iter):
            table.setdefault(key, []).append(i)

        probe_cols = [probe.column(n) for n in shared]
        if len(shared) == 1:
            probe_keys = probe_cols[0].tolist()
        else:
            probe_keys = list(zip(*(c.tolist() for c in probe_cols)))
        build_idx: list[int] = []
        probe_idx: list[int] = []
        for j, key in enumerate(probe_keys):
            matches = table.get(key)
            if matches is not None:
                build_idx.extend(matches)
                probe_idx.extend([j] * len(matches))
        bi = np.asarray(build_idx, dtype=np.int64)
        pi = np.asarray(probe_idx, dtype=np.int64)
        left_idx, right_idx = (bi, pi) if not swapped else (pi, bi)

    attrs = list(left.schema.attributes) + [
        attr for attr in right.schema.attributes if attr.name not in set(shared)
    ]
    schema = RelationSchema(output_name, tuple(attrs))
    columns: dict[str, np.ndarray] = {}
    for attr in left.schema.attributes:
        columns[attr.name] = left.column(attr.name)[left_idx]
    for attr in right.schema.attributes:
        if attr.name not in columns:
            columns[attr.name] = right.column(attr.name)[right_idx]
    return Relation(schema, columns)


def natural_join(relations: Sequence[Relation], output_name: str = "join") -> Relation:
    """Natural join of many relations, greedily joining connected pairs first.

    The join order prefers pairs that share attributes, so acyclic schemas
    never go through a Cartesian product.
    """
    if not relations:
        raise ValueError("natural_join needs at least one relation")
    pending = list(relations)
    result = pending.pop(0)
    while pending:
        have = set(result.attribute_names)
        best = None
        for i, rel in enumerate(pending):
            overlap = len(have & set(rel.attribute_names))
            if best is None or overlap > best[1]:
                best = (i, overlap)
        idx, _ = best
        result = hash_join(result, pending.pop(idx), output_name=output_name)
    # Deduplicate attribute order for determinism.
    names = stable_unique(result.attribute_names)
    assert tuple(names) == result.attribute_names
    return result
