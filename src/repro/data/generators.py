"""Synthetic generators for the paper's two benchmark databases.

The paper evaluates on a commercial Retailer dataset (84M tuples, not
publicly available) and the Kaggle Favorita dataset (120M tuples, requires a
download). Neither can ship with an offline reproduction, so this module
generates **schema-faithful synthetic instances at configurable scale**:

* :func:`favorita` — the exact six-relation schema of Figure 2 of the paper
  (Sales, Holidays, StoRes, Items, Transactions, Oil);
* :func:`retailer` — the five-relation, 43-attribute schema published for
  the Retailer dataset in the SIGMOD 2019 companion paper (Inventory,
  Location, Census, Item, Weather).

The generators preserve what the engine's optimiser actually consumes: join
topology, key multiplicities (facts reference dimension keys with skew),
attribute kinds, and the relative domain sizes of the join attributes
(``|dom(item)| > |dom(date)| > |dom(store)|`` for Favorita, matching the
attribute order of Figure 3). All randomness is seeded; the same
``(scale, seed)`` always yields the same database.
"""

from __future__ import annotations

import numpy as np

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema

_C = Attribute.categorical
_F = Attribute.continuous

#: Relation sizes of Favorita at ``scale=1.0``.
_FAVORITA_BASE = {"dates": 365, "stores": 30, "items": 400, "sales_per_store_date": 25}

#: Relation sizes of Retailer at ``scale=1.0``.
_RETAILER_BASE = {"locations": 90, "dates": 320, "items": 320, "inv_per_loc_date": 12}


def _zipf_choice(rng: np.random.Generator, n: int, size: int, a: float = 1.3) -> np.ndarray:
    """Skewed choice of ``size`` keys from ``1..n`` (Zipf-ish, always valid)."""
    ranks = rng.zipf(a, size=size)
    return ((ranks - 1) % n) + 1


def favorita(scale: float = 1.0, seed: int = 0) -> Database:
    """Generate a Favorita-shaped database.

    Parameters
    ----------
    scale:
        Linear size factor. ``scale=1.0`` yields roughly 270k Sales tuples;
        tests use ``scale<=0.05``.
    seed:
        RNG seed; generation is fully deterministic in ``(scale, seed)``.
    """
    rng = np.random.default_rng(seed)
    n_dates = max(5, int(_FAVORITA_BASE["dates"] * scale))
    n_stores = max(3, int(_FAVORITA_BASE["stores"] * scale))
    n_items = max(n_dates + 2, int(_FAVORITA_BASE["items"] * scale))
    per_cell = max(2, int(_FAVORITA_BASE["sales_per_store_date"] * min(1.0, scale + 0.5)))

    # --- Sales(date, store, item, units, promo): the fact table -------------
    dates = np.repeat(np.arange(1, n_dates + 1), n_stores * per_cell)
    stores = np.tile(np.repeat(np.arange(1, n_stores + 1), per_cell), n_dates)
    items = _zipf_choice(rng, n_items, dates.size)
    promo = (rng.random(dates.size) < 0.12).astype(np.int64)
    # units carry signal (item popularity, store size, promotions, weekly
    # seasonality) so the ML applications have something to learn
    item_effect = rng.gamma(2.0, 2.5, size=n_items + 1)
    store_effect = rng.gamma(3.0, 1.2, size=n_stores + 1)
    seasonality = 1.0 + 0.3 * np.sin(2 * np.pi * (dates % 7) / 7.0)
    mean_units = (
        item_effect[items] * store_effect[stores] * seasonality * (1.0 + 0.6 * promo)
    )
    units = np.maximum(0.0, rng.normal(mean_units, 2.0)).round(0)
    sales = Relation(
        RelationSchema(
            "Sales",
            (_C("date"), _C("store"), _C("item"), _F("units"), _C("promo")),
        ),
        {"date": dates, "store": stores, "item": items, "units": units, "promo": promo},
    )
    # --- Holidays(date, htype, locale, transferred): one row per date -------
    date_ids = np.arange(1, n_dates + 1)
    is_holiday = rng.random(n_dates) < 0.18
    htype = np.where(is_holiday, rng.integers(1, 6, size=n_dates), 0)
    locale = np.where(is_holiday, rng.integers(1, 4, size=n_dates), 0)
    transferred = (is_holiday & (rng.random(n_dates) < 0.1)).astype(np.int64)
    holidays = Relation(
        RelationSchema(
            "Holidays", (_C("date"), _C("htype"), _C("locale"), _C("transferred"))
        ),
        {"date": date_ids, "htype": htype, "locale": locale, "transferred": transferred},
    )

    # --- StoRes(store, city, state, stype, cluster) --------------------------
    store_ids = np.arange(1, n_stores + 1)
    stores_rel = Relation(
        RelationSchema(
            "StoRes", (_C("store"), _C("city"), _C("state"), _C("stype"), _C("cluster"))
        ),
        {
            "store": store_ids,
            "city": rng.integers(1, max(3, n_stores // 2) + 1, size=n_stores),
            "state": rng.integers(1, max(2, n_stores // 4) + 1, size=n_stores),
            "stype": rng.integers(1, 6, size=n_stores),
            "cluster": rng.integers(1, 18, size=n_stores),
        },
    )

    # --- Items(item, family, class, perishable) ------------------------------
    item_ids = np.arange(1, n_items + 1)
    items_rel = Relation(
        RelationSchema(
            "Items", (_C("item"), _C("family"), _C("class"), _C("perishable"))
        ),
        {
            "item": item_ids,
            "family": rng.integers(1, 34, size=n_items),
            "class": rng.integers(1, max(4, n_items // 6) + 1, size=n_items),
            "perishable": (rng.random(n_items) < 0.25).astype(np.int64),
        },
    )

    # --- Transactions(date, store, txns): one row per (date, store) ----------
    t_dates = np.repeat(date_ids, n_stores)
    t_stores = np.tile(store_ids, n_dates)
    txns = np.maximum(1.0, rng.normal(1500.0, 400.0, size=t_dates.size)).round(0)
    transactions = Relation(
        RelationSchema("Transactions", (_C("date"), _C("store"), _F("txns"))),
        {"date": t_dates, "store": t_stores, "txns": txns},
    )

    # --- Oil(date, price): random-walk price per date ------------------------
    price = 45.0 + np.cumsum(rng.normal(0.0, 0.8, size=n_dates))
    oil = Relation(
        RelationSchema("Oil", (_C("date"), _F("price"))),
        {"date": date_ids, "price": np.maximum(10.0, price).round(2)},
    )

    return Database(
        [sales, transactions, stores_rel, oil, items_rel, holidays], name="favorita"
    )


def retailer(scale: float = 1.0, seed: int = 0) -> Database:
    """Generate a Retailer-shaped database (43 attributes, 5 relations)."""
    rng = np.random.default_rng(seed)
    n_locn = max(4, int(_RETAILER_BASE["locations"] * scale))
    n_dates = max(5, int(_RETAILER_BASE["dates"] * scale))
    n_ksn = max(6, int(_RETAILER_BASE["items"] * scale))
    per_cell = max(2, int(_RETAILER_BASE["inv_per_loc_date"] * min(1.0, scale + 0.5)))
    n_zip = max(3, n_locn * 2 // 3)

    # --- Inventory(locn, dateid, ksn, inventoryunits): the fact table --------
    locn = np.repeat(np.arange(1, n_locn + 1), n_dates * per_cell)
    dateid = np.tile(np.repeat(np.arange(1, n_dates + 1), per_cell), n_locn)
    ksn = _zipf_choice(rng, n_ksn, locn.size)
    # inventory carries signal (item turnover, location size) so the ML
    # applications have something to learn
    ksn_effect = rng.gamma(2.0, 6.0, size=n_ksn + 1)
    locn_effect = rng.gamma(4.0, 3.0, size=n_locn + 1)
    mean_inventory = ksn_effect[ksn] + locn_effect[locn]
    inventoryunits = np.maximum(0.0, rng.normal(mean_inventory, 6.0)).round(0)
    inventory = Relation(
        RelationSchema(
            "Inventory", (_C("locn"), _C("dateid"), _C("ksn"), _F("inventoryunits"))
        ),
        {"locn": locn, "dateid": dateid, "ksn": ksn, "inventoryunits": inventoryunits},
    )

    # --- Location(locn, zip, 13 distance/area measures) -----------------------
    locn_ids = np.arange(1, n_locn + 1)
    zips = rng.integers(1, n_zip + 1, size=n_locn)
    loc_measures = {
        name: np.abs(rng.normal(mu, sd, size=n_locn)).round(2)
        for name, (mu, sd) in {
            "tot_area_sq_ft": (90000.0, 20000.0),
            "sell_area_sq_ft": (60000.0, 15000.0),
            "avghhi": (55000.0, 15000.0),
            "supertargetdistance": (12.0, 6.0),
            "supertargetdrivetime": (18.0, 8.0),
            "targetdistance": (8.0, 4.0),
            "targetdrivetime": (12.0, 6.0),
            "walmartdistance": (5.0, 3.0),
            "walmartdrivetime": (9.0, 4.0),
            "walmartsupercenterdistance": (7.0, 4.0),
            "walmartsupercenterdrivetime": (11.0, 5.0),
        }.items()
    }
    location = Relation(
        RelationSchema(
            "Location",
            (
                _C("locn"),
                _C("zip"),
                _C("rgn_cd"),
                _C("clim_zn_nbr"),
                *(_F(name) for name in loc_measures),
            ),
        ),
        {
            "locn": locn_ids,
            "zip": zips,
            "rgn_cd": rng.integers(1, 8, size=n_locn),
            "clim_zn_nbr": rng.integers(1, 12, size=n_locn),
            **loc_measures,
        },
    )

    # --- Census(zip, 15 demographic measures) ---------------------------------
    zip_ids = np.arange(1, n_zip + 1)
    census_measures = {
        name: np.abs(rng.normal(mu, sd, size=n_zip)).round(0)
        for name, (mu, sd) in {
            "population": (30000.0, 12000.0),
            "white": (20000.0, 9000.0),
            "asian": (2500.0, 1500.0),
            "pacific": (150.0, 100.0),
            "blackafrican": (4000.0, 2500.0),
            "medianage": (38.0, 6.0),
            "occupiedhouseunits": (11000.0, 4000.0),
            "houseunits": (12500.0, 4200.0),
            "families": (7800.0, 2600.0),
            "households": (11000.0, 3800.0),
            "husbwife": (5600.0, 2000.0),
            "males": (14800.0, 5900.0),
            "females": (15200.0, 6100.0),
            "householdschildren": (3900.0, 1400.0),
            "hispanic": (5200.0, 2800.0),
        }.items()
    }
    census = Relation(
        RelationSchema("Census", (_C("zip"), *(_F(name) for name in census_measures))),
        {"zip": zip_ids, **census_measures},
    )

    # --- Item(ksn, subcategory, category, categoryCluster, prize) -------------
    ksn_ids = np.arange(1, n_ksn + 1)
    item = Relation(
        RelationSchema(
            "Item",
            (_C("ksn"), _C("subcategory"), _C("category"), _C("categoryCluster"), _F("prize")),
        ),
        {
            "ksn": ksn_ids,
            "subcategory": rng.integers(1, max(4, n_ksn // 8) + 1, size=n_ksn),
            "category": rng.integers(1, max(3, n_ksn // 20) + 1, size=n_ksn),
            "categoryCluster": rng.integers(1, 9, size=n_ksn),
            "prize": np.abs(rng.normal(25.0, 15.0, size=n_ksn)).round(2),
        },
    )

    # --- Weather(locn, dateid, 6 conditions): one row per (locn, dateid) ------
    w_locn = np.repeat(locn_ids, n_dates)
    w_date = np.tile(np.arange(1, n_dates + 1), n_locn)
    maxtemp = rng.normal(68.0, 14.0, size=w_locn.size).round(0)
    weather = Relation(
        RelationSchema(
            "Weather",
            (
                _C("locn"),
                _C("dateid"),
                _C("rain"),
                _C("snow"),
                _F("maxtemp"),
                _F("mintemp"),
                _F("meanwind"),
                _C("thunder"),
            ),
        ),
        {
            "locn": w_locn,
            "dateid": w_date,
            "rain": (rng.random(w_locn.size) < 0.25).astype(np.int64),
            "snow": (rng.random(w_locn.size) < 0.05).astype(np.int64),
            "maxtemp": maxtemp,
            "mintemp": maxtemp - np.abs(rng.normal(14.0, 5.0, size=w_locn.size)).round(0),
            "meanwind": np.abs(rng.normal(8.0, 4.0, size=w_locn.size)).round(1),
            "thunder": (rng.random(w_locn.size) < 0.08).astype(np.int64),
        },
    )

    return Database([inventory, location, census, item, weather], name="retailer")
