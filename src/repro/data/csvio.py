"""CSV persistence for relations and databases.

The Favorita and Retailer generators are deterministic, but examples may
still want to cache generated data across runs; this module gives them a
plain-text, dependency-free format (one ``<relation>.csv`` per relation plus
a ``schema.txt`` manifest).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import AttributeKind
from repro.util.errors import SchemaError

_MANIFEST = "schema.txt"


def save_relation(relation: Relation, path: str | Path) -> None:
    """Write one relation to a CSV file with a typed header.

    The header encodes kinds as ``name:c`` (categorical) / ``name:f``
    (continuous) so a round-trip restores the exact schema.
    """
    path = Path(path)
    header = [
        f"{attr.name}:{'c' if attr.kind is AttributeKind.CATEGORICAL else 'f'}"
        for attr in relation.schema.attributes
    ]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        cols = [relation.column(n) for n in relation.attribute_names]
        for i in range(relation.num_rows):
            writer.writerow([col[i] for col in cols])


def load_relation(path: str | Path, name: str | None = None) -> Relation:
    """Read a relation written by :func:`save_relation`."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        attrs = []
        for field in header:
            attr_name, _, code = field.partition(":")
            if code == "c":
                attrs.append(Attribute.categorical(attr_name))
            elif code == "f":
                attrs.append(Attribute.continuous(attr_name))
            else:
                raise SchemaError(f"bad header field {field!r} in {path}")
        schema = RelationSchema(name or path.stem, tuple(attrs))
        raw: list[list[str]] = [row for row in reader if row]
    columns: dict[str, np.ndarray] = {}
    for i, attr in enumerate(schema.attributes):
        text = [row[i] for row in raw]
        if attr.kind is AttributeKind.CATEGORICAL:
            columns[attr.name] = np.array([int(v) for v in text], dtype=np.int64)
        else:
            columns[attr.name] = np.array([float(v) for v in text], dtype=np.float64)
    return Relation(schema, columns)


def save_database(db: Database, directory: str | Path) -> None:
    """Write every relation of ``db`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for rel in db.relations:
        save_relation(rel, directory / f"{rel.name}.csv")
    manifest = directory / _MANIFEST
    manifest.write_text(
        "\n".join([db.name] + [rel.name for rel in db.relations]) + "\n"
    )


def load_database(directory: str | Path) -> Database:
    """Read a database written by :func:`save_database`."""
    directory = Path(directory)
    manifest = directory / _MANIFEST
    if not manifest.exists():
        raise SchemaError(f"{directory} has no {_MANIFEST}")
    lines = [ln for ln in manifest.read_text().splitlines() if ln]
    name, rel_names = lines[0], lines[1:]
    relations = [load_relation(directory / f"{rn}.csv", name=rn) for rn in rel_names]
    return Database(relations, name=name)
