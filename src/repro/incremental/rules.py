"""Per-view delta rules: the static dirty-path structure of a compiled DAG.

A compiled batch is a DAG of view groups (paper Figure 2, right). For
incremental maintenance the relevant structure is coarser and static:

* each group runs at one join-tree **node** — a base-relation change
  dirties exactly the groups at that node;
* each group **consumes** the views its plans probe and **produces** views
  and query outputs — a changed view dirties its consumer groups;
* therefore an update to relation ``R`` can only affect the views on the
  paths from ``R``'s node towards each query root (Bakibayev et al.,
  "Aggregation and Ordering in Factorised Databases"): every other group's
  inputs are bit-identical and its cached outputs remain valid.

:class:`DeltaRules` precomputes these maps once per compiled batch. The
runtime scheduler in :mod:`repro.incremental.maintain` walks the execution
order and consults them, additionally *cutting off* propagation when a
refreshed view turns out unchanged (delta cutoff).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import topk
from repro.core.runtime import debug_checks_enabled


def refresh_ordered(query, old_result, new_raw, dirty_keys):
    """Targeted re-rank of one ordered query after an apply round.

    The maintainer keeps the **full** raw group store for ordered queries
    (see :mod:`repro.core.topk`), so this never has to reconstruct
    evicted keys — it only re-ranks. ``dirty_keys`` is the set of raw
    group keys whose values this round added, changed or removed
    (collected by the numeric merge, or by diffing old vs new raw on a
    rescan); only the *partitions* containing a dirty key are re-ranked
    — inserts re-select via the bounded-heap kernel
    (:func:`repro.core.topk.rank_partition_items`), deletes re-rank the
    same way over the already-rescanned partition — while every clean
    partition's finished rows are reused verbatim from ``old_result``.
    The rebuilt dict walks all partitions in ascending order, so the
    result is bit-identical to a from-scratch finish over ``new_raw``
    (asserted under ``LMFAO_DEBUG``).

    ``dirty_keys=None`` means "unknown" and falls back to the full
    finish, as does any inconsistency between the old finished result
    and the new raw store.
    """
    if old_result is None or dirty_keys is None or query.limit == 0:
        return topk.finish_ordered(query, new_raw)[0]
    partition, residual = topk.order_positions(query)

    def part_of(key):
        key = key if isinstance(key, tuple) else (key,)
        return tuple(key[i] for i in partition)

    dirty_parts = {part_of(key) for key in dirty_keys}
    parts: set[tuple] = set()
    dirty_items: dict[tuple, list] = {}
    for key, values in new_raw.items():
        key = key if isinstance(key, tuple) else (key,)
        part = tuple(key[i] for i in partition)
        parts.add(part)
        if part in dirty_parts:
            dirty_items.setdefault(part, []).append(
                (key, tuple(float(v) for v in values))
            )
    clean: dict[tuple, list] = {}
    for key, values in old_result.groups.items():
        part = tuple(key[i] for i in partition)
        if part not in dirty_parts:
            clean.setdefault(part, []).append((key, values))
    if any(part not in clean for part in parts - dirty_parts):
        # a partition the dirty keys did not cover is missing from the
        # old finished result — tracking went inconsistent; stay exact.
        return topk.finish_ordered(query, new_raw)[0]

    out: dict[tuple, tuple[float, ...]] = {}
    for part in sorted(parts):
        if part in dirty_parts:
            ranked = topk.rank_partition_items(
                dirty_items.get(part, []), query, residual
            )
            for key, values in ranked:
                out[key] = values
        else:
            for key, values in clean[part]:
                out[key] = values
    if debug_checks_enabled():
        full = topk.finish_ordered(query, new_raw)[0]
        assert list(out.items()) == list(full.items()), (
            f"refresh_ordered({query.name}) diverged from the full finish"
        )
    return out


@dataclass(frozen=True)
class DeltaRules:
    """Static scheduling maps derived from one compiled batch."""

    #: join-tree node → indices of groups scanning that node's relation.
    groups_by_node: dict[str, tuple[int, ...]]
    #: group index → names of incoming views the group probes.
    group_consumes: dict[int, tuple[str, ...]]
    #: group index → names of views the group emits.
    group_produces_views: dict[int, tuple[str, ...]]
    #: group index → names of query outputs the group emits.
    group_produces_queries: dict[int, tuple[str, ...]]
    #: view name → index of the group that emits it.
    producer_of_view: dict[str, int]
    #: view name → the join-tree node the view is computed at.
    view_source: dict[str, str]
    #: view name → names of the child views its aggregates reference.
    view_children: dict[str, tuple[str, ...]]
    #: topological execution order of the group DAG (shared with execute()).
    execution_order: tuple[int, ...]

    @classmethod
    def from_compiled(cls, compiled) -> "DeltaRules":
        groups_by_node: dict[str, list[int]] = {}
        group_consumes: dict[int, tuple[str, ...]] = {}
        group_produces_views: dict[int, tuple[str, ...]] = {}
        group_produces_queries: dict[int, tuple[str, ...]] = {}
        producer_of_view: dict[str, int] = {}
        for index, plan in enumerate(compiled.plans):
            groups_by_node.setdefault(plan.node, []).append(index)
            group_consumes[index] = plan.consumed_views
            group_produces_views[index] = plan.produced_views
            group_produces_queries[index] = plan.produced_queries
            for view in plan.produced_views:
                producer_of_view[view] = index
        views = compiled.view_plan.views
        return cls(
            groups_by_node={n: tuple(g) for n, g in groups_by_node.items()},
            group_consumes=group_consumes,
            group_produces_views=group_produces_views,
            group_produces_queries=group_produces_queries,
            producer_of_view=producer_of_view,
            view_source={name: view.source for name, view in views.items()},
            view_children={
                name: view.referenced_views for name, view in views.items()
            },
            execution_order=tuple(compiled.execution_order),
        )

    # ------------------------------------------------------------ delta rules
    def affected_views(self, relation: str) -> tuple[str, ...]:
        """The per-view delta rule, solved for one relation.

        ``ΔR`` can change view ``V`` only when ``V`` is computed at ``R``'s
        node or (transitively) references such a view — i.e. the views on
        the path from ``R`` towards each root. Everything else has delta
        zero by construction.
        """
        affected = {
            name for name, source in self.view_source.items() if source == relation
        }
        changed = True
        while changed:
            changed = False
            for name, children in self.view_children.items():
                if name not in affected and any(c in affected for c in children):
                    affected.add(name)
                    changed = True
        return tuple(name for name in self.view_source if name in affected)

    def dirty_groups(self, relations: set[str] | frozenset[str]) -> tuple[int, ...]:
        """Static upper bound on the groups an update must re-visit.

        In execution order: groups at a changed node plus groups consuming
        an affected view. The runtime scheduler may skip more of these via
        delta cutoff (a refreshed view that compares equal stops
        propagating).
        """
        affected: set[str] = set()
        for relation in relations:
            affected.update(self.affected_views(relation))
        node_groups = {g for r in relations for g in self.groups_by_node.get(r, ())}
        dirty = []
        for index in self.execution_order:
            if index in node_groups or any(
                v in affected for v in self.group_consumes[index]
            ):
                dirty.append(index)
        return tuple(dirty)

    @property
    def num_groups(self) -> int:
        return len(self.execution_order)
