"""Incremental view maintenance over the compiled view DAG.

LMFAO's advantage is that a batch of aggregates compiles into one shared
DAG of directional views. This package keeps that DAG's materialised state
alive across data changes instead of recomputing it:

* :mod:`repro.incremental.delta` — delta relations (insert/delete bags per
  base relation, with append/tombstone application);
* :mod:`repro.incremental.rules` — per-view delta rules and the static
  dirty-path structure (which views an update can reach);
* :mod:`repro.incremental.maintain` — the :class:`MaintainedBatch` handle
  returned by :meth:`repro.core.engine.LMFAO.maintain`, scheduling numeric
  O(|Δ|) delta steps and full-trie rescans over the dirty path only.

Every apply round builds an immutable successor version (a new
:class:`~repro.core.snapshot.Snapshot` plus copy-on-write stores) and
installs it atomically into the owning engine, so concurrent queries are
snapshot-isolated from maintenance — see ``docs/serving.md``.

Typical use::

    engine = LMFAO(db)
    handle = engine.maintain(batch)        # compile + initial run
    handle.apply(inserts={"Sales": rows})  # O(affected path), not O(db)
    handle.results["Q1"]                   # refreshed QueryResult
"""

from repro.incremental.delta import (
    RelationDelta,
    coalesce_deltas,
    coalesce_relation_deltas,
    normalize_deltas,
)
from repro.incremental.maintain import ApplyResult, MaintainedBatch
from repro.incremental.rules import DeltaRules

__all__ = [
    "ApplyResult",
    "DeltaRules",
    "MaintainedBatch",
    "RelationDelta",
    "coalesce_deltas",
    "coalesce_relation_deltas",
    "normalize_deltas",
]
