"""The maintained-batch handle: compile once, apply deltas many times.

:class:`MaintainedBatch` keeps a compiled batch's entire intermediate state
alive — every view's contents, every query's raw groups, and the trie
indexes of every join-tree node — and refreshes exactly the affected slice
of it per update round:

1. **base update** — each delta is applied to its relation (append /
   tombstone), and only that node's tries are invalidated (partitioned
   rebuild; see :meth:`repro.data.trie.TrieIndex.rebuilt`);
2. **dirty-path walk** — groups run in the compiled execution order, but a
   group runs at all only when its node's relation changed or one of its
   incoming views changed this round; everything off the path keeps its
   cached outputs;
3. **per-group maintenance** — a dirty group is refreshed either by the
   **numeric** delta step (insert-only change at its own node: execute the
   same compiled group code over a trie of just the inserted tuples and add
   the emitted deltas in — exact because every slot is a sum over the
   node's rows, hence linear in the row multiset, and key sets only grow
   under inserts) or by a **rescan** (re-execute over the node's full trie
   with refreshed inputs — bit-identical to a from-scratch run);
4. **delta cutoff** — a refreshed view that compares equal to its previous
   contents stops dirtying its consumers.

No re-planning, no code generation, and no scans of untouched nodes happen
after construction. ``EngineConfig.incremental_mode`` selects the strategy:
``"auto"`` (numeric where exact, rescan otherwise), ``"rescan"`` (always
rescan; the maintained state stays bit-for-bit equal to recomputation), or
``"numeric"`` (strict: like auto, but a delta containing deletes raises
*before any state is touched* rather than silently falling back — for
tests and benchmarks that must not lose the O(|Δ|) path; downstream
propagation rescans are part of the numeric design and remain allowed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.engine import CompiledBatch, LMFAO, RunResult, _to_query_result
from repro.core.runtime import (
    ArrayViewData,
    apply_predicates,
    debug_checks_enabled,
    execute_plan_partitioned,
    local_predicates,
    node_trie,
    partition_tries,
)
from repro.data.catalog import Database
from repro.data.trie import TrieIndex
from repro.incremental.delta import RelationDelta, normalize_deltas
from repro.incremental.rules import DeltaRules
from repro.query.query import QueryResult
from repro.util.errors import PlanError

_MODES = ("auto", "numeric", "rescan")


@dataclass
class ApplyResult:
    """Outcome of one apply round: refreshed results plus maintenance stats."""

    #: all query results, refreshed in place (shared with the handle).
    results: dict[str, QueryResult]
    #: queries whose groups actually changed this round.
    refreshed_queries: tuple[str, ...]
    #: views whose contents actually changed this round.
    refreshed_views: tuple[str, ...]
    relations_changed: tuple[str, ...]
    #: groups maintained by the O(|Δ|) numeric step.
    groups_numeric: int
    #: groups re-executed over their full (cached) trie.
    groups_rescanned: int
    #: groups skipped entirely — off the dirty path or cut off.
    groups_skipped: int
    seconds: float

    def __getitem__(self, query_name: str) -> QueryResult:
        return self.results[query_name]


class MaintainedBatch:
    """A compiled batch plus its maintained state. Built by :meth:`LMFAO.maintain`."""

    def __init__(self, engine: LMFAO, compiled: CompiledBatch) -> None:
        if engine.config.incremental_mode not in _MODES:
            raise PlanError(
                f"EngineConfig.incremental_mode must be one of "
                f"{', '.join(repr(m) for m in _MODES)}, "
                f"got {engine.config.incremental_mode!r}"
            )
        self.compiled = compiled
        self.config = engine.config
        self.db: Database = engine.db
        self.rules = DeltaRules.from_compiled(compiled)
        self.applies = 0
        self._view_group_by = {
            name: view.group_by for name, view in compiled.view_plan.views.items()
        }
        # Seed from the engine's cache (shared immutable indexes), but never
        # write back: invalidation on update is local to this handle.
        self._tries: dict[tuple, TrieIndex] = dict(engine._trie_cache)
        self._view_data: dict[str, dict] = {}
        self._query_raw: dict[str, dict] = {}
        self._results: dict[str, QueryResult] = {}
        for index in compiled.execution_order:
            self._store_outputs(index, self._run_full(index), None)
        self._refresh_results(set(q.name for q in compiled.batch))
        self._debug_check_stores()

    # ---------------------------------------------------------------- accessors
    @property
    def results(self) -> dict[str, QueryResult]:
        """Current (maintained) results, keyed by query name."""
        return self._results

    def result(self, query_name: str) -> QueryResult:
        return self._results[query_name]

    def __getitem__(self, query_name: str) -> QueryResult:
        return self._results[query_name]

    @property
    def database(self) -> Database:
        """The current database snapshot (original plus all applied deltas)."""
        return self.db

    def view_contents(self, view_name: str) -> dict:
        """Maintained contents of one internal view (inspection/testing)."""
        return self._view_data[view_name]

    def recompute(self) -> "RunResult":
        """From-scratch run over the current database — the oracle baseline.

        Builds a fresh engine (cold tries, recompilation) so the comparison
        in benchmarks and differential tests is honest.
        """
        fresh = LMFAO(self.db, self.config)
        return fresh.run(self.compiled.batch)

    # -------------------------------------------------------------------- apply
    def apply(self, inserts=None, deletes=None) -> ApplyResult:
        """Update base relations and propagate deltas through affected views.

        ``inserts`` / ``deletes`` map relation names to tuples to add /
        remove — each value a :class:`Relation`, a row sequence, a column
        mapping, or (deletes only) a boolean mask over the current
        instance. Returns the refreshed results plus per-round stats.
        """
        start = time.perf_counter()
        deltas = normalize_deltas(self.db, inserts, deletes)
        if self.config.incremental_mode == "numeric":
            for name, delta in deltas.items():
                if not delta.insert_only:
                    raise PlanError(
                        f"incremental_mode='numeric' cannot maintain deletes "
                        f"(delta for {name}); use 'auto' or 'rescan'"
                    )
        # Stage every relation update before committing any: a delta that
        # fails to apply (e.g. deleting an absent tuple) must leave the
        # handle's state — database, tries, views — completely untouched.
        staged = [
            (name, delta, delta.apply_to(self.db.relation(name)))
            for name, delta in deltas.items()
        ]
        changed: dict[str, RelationDelta] = {}
        for name, delta, updated in staged:
            self.db = self.db.with_relation(updated)
            self._invalidate_node(name)
            changed[name] = delta

        numeric = rescanned = skipped = 0
        changed_views: set[str] = set()
        refreshed_views: set[str] = set()
        dirty_queries: set[str] = set()
        if changed:
            for index in self.compiled.execution_order:
                plan = self.compiled.plans[index]
                node_delta = changed.get(plan.node)
                upstream_dirty = any(
                    v in changed_views for v in plan.consumed_views
                )
                if node_delta is None and not upstream_dirty:
                    skipped += 1
                    continue
                if self._numeric_applicable(node_delta, upstream_dirty):
                    outputs = self._run_delta(index, node_delta)
                    merge = self._merge_delta_outputs
                    numeric += 1
                else:
                    outputs = self._run_full(index)
                    merge = None
                    rescanned += 1
                self._store_outputs(
                    index,
                    outputs,
                    merge,
                    changed_views=changed_views,
                    refreshed_views=refreshed_views,
                    dirty_queries=dirty_queries,
                )
            self._refresh_results(dirty_queries)
        self.applies += 1
        self._debug_check_stores()
        return ApplyResult(
            results=self._results,
            refreshed_queries=tuple(sorted(dirty_queries)),
            refreshed_views=tuple(sorted(refreshed_views)),
            relations_changed=tuple(sorted(changed)),
            groups_numeric=numeric,
            groups_rescanned=rescanned,
            groups_skipped=skipped,
            seconds=time.perf_counter() - start,
        )

    # ----------------------------------------------------------- group execution
    def _numeric_applicable(
        self, node_delta: RelationDelta | None, upstream_dirty: bool
    ) -> bool:
        if self.config.incremental_mode == "rescan":
            return False
        return (
            node_delta is not None
            and node_delta.insert_only
            and not upstream_dirty
        )

    def _run_full(self, index: int) -> dict[str, dict]:
        """Re-execute one group over the full (cached) trie of its node."""
        plan = self.compiled.plans[index]
        trie = self._trie(plan.node, plan.order)
        return self._execute(index, trie)

    def _run_delta(self, index: int, delta: RelationDelta) -> dict[str, dict]:
        """The numeric step: the same compiled code over the inserted tuples.

        Every emitted slot is ``Σ over node rows`` of a product that does
        not otherwise depend on the node's row multiset, so the outputs
        over ``ΔR`` *are* the per-view deltas. Key sets are exact too: under
        inserts a key exists in the updated view iff it existed before or
        some inserted tuple supports it — exactly the keys the delta run
        emits.
        """
        plan = self.compiled.plans[index]
        relation = self._filter_shared(delta.inserts)
        trie = TrieIndex(relation, plan.order)
        return self._execute(index, trie)

    def _execute(self, index: int, trie: TrieIndex) -> dict[str, dict]:
        """Drive one group through the engine's partitioned execution path.

        Under a partitioned configuration the maintainer splits and merges
        exactly like the batch executor (same cut points, same partition
        order), so a rescan stays bit-identical to a from-scratch run with
        the same :class:`EngineConfig`. Delta tries are usually smaller
        than ``parallel_threshold`` and take the single-partition path.
        """
        compiled = self.compiled
        plan = compiled.plans[index]
        native = compiled.native_groups[index] if compiled.native_groups else None
        tries = partition_tries(
            plan, trie, self.config.partitions, self.config.parallel_threshold
        )
        return execute_plan_partitioned(
            compiled.code[index],
            native,
            plan,
            tries,
            self._view_data,
            self._view_group_by,
            compiled.functions,
        )

    def _store_outputs(
        self,
        index: int,
        outputs: dict[str, dict],
        merge,
        changed_views: set[str] | None = None,
        refreshed_views: set[str] | None = None,
        dirty_queries: set[str] | None = None,
    ) -> None:
        """Adopt (rescan) or add (numeric) one group's outputs; track diffs."""
        cutoff = self.config.incremental_cutoff
        for emission in self.compiled.plans[index].emissions:
            is_view = emission.kind == "view"
            store = self._view_data if is_view else self._query_raw
            name = emission.artifact
            if merge is not None:
                # columnar invalidation lives inside the merge helper —
                # the one place that mutates stored aggregate lists.
                artifact_changed = merge(store[name], outputs[name])
            else:
                old = store.get(name)
                new = outputs[name]
                store[name] = new
                artifact_changed = old is None or old != new
            if changed_views is None:
                continue
            if is_view:
                if artifact_changed:
                    refreshed_views.add(name)
                if artifact_changed or not cutoff:
                    changed_views.add(name)
            elif artifact_changed:
                dirty_queries.add(name)

    @staticmethod
    def _merge_delta_outputs(target: dict, delta: dict) -> bool:
        """``target += delta`` per key and slot; True when anything changed.

        A new key is a change even with all-zero values: the inserted rows
        give it join support, so a from-scratch run would emit it too.

        The per-key ``+=`` below writes *through* stored aggregate lists,
        which dict-method interception cannot see — so a NumPy-backend
        ``target`` (an :class:`ArrayViewData` mirroring its contents in
        columnar arrays) must be invalidated here, where the mutation
        happens, not by each caller remembering to. The ``delta`` side is
        never mutated (first-seen value lists are copied), so a columnar
        delta source stays internally consistent; ``LMFAO_DEBUG`` asserts
        both facts after the merge.
        """
        if isinstance(target, ArrayViewData):
            target.drop_columnar()
        changed = False
        for key, values in delta.items():
            current = target.get(key)
            if current is None:
                target[key] = list(values)
                changed = True
                continue
            for slot, value in enumerate(values):
                if value != 0.0:
                    current[slot] += value
                    changed = True
        if debug_checks_enabled() and isinstance(delta, ArrayViewData):
            delta.check_consistent()  # the merge must leave sources unscathed
        return changed

    def _debug_check_stores(self) -> None:
        """Under ``LMFAO_DEBUG``: no maintained dict may carry stale arrays.

        Walks every stored view and raw query output after a round and
        asserts columnar state (if any) still mirrors the dict contents —
        the incremental path's end-to-end guard against a mutation that
        slipped past :meth:`_merge_delta_outputs`'s invalidation.
        """
        if not debug_checks_enabled():
            return
        for store in (self._view_data, self._query_raw):
            for data in store.values():
                if isinstance(data, ArrayViewData):
                    data.check_consistent()

    def _refresh_results(self, query_names: set[str]) -> None:
        for query in self.compiled.batch:
            if query.name in query_names:
                self._results[query.name] = _to_query_result(
                    query, self._query_raw[query.name]
                )

    # ------------------------------------------------------------------- tries
    def _invalidate_node(self, node: str) -> None:
        self._tries = {k: v for k, v in self._tries.items() if k[0] != node}

    def _trie(self, node: str, order: tuple[str, ...]) -> TrieIndex:
        return node_trie(
            self.db, node, order, self.compiled.shared_predicates, self._tries
        )

    def _filter_shared(self, relation):
        """Apply node-local pushed-down predicates to a delta relation."""
        return apply_predicates(
            relation,
            local_predicates(
                relation.attribute_names, self.compiled.shared_predicates
            ),
        )

    def __repr__(self) -> str:
        return (
            f"MaintainedBatch(queries={len(self.compiled.batch)}, "
            f"views={self.compiled.num_views}, groups={self.compiled.num_groups}, "
            f"applies={self.applies})"
        )
