"""The maintained-batch handle: compile once, apply deltas many times.

:class:`MaintainedBatch` keeps a compiled batch's entire intermediate state
alive — every view's contents, every query's raw groups, and the trie
indexes of every join-tree node — and refreshes exactly the affected slice
of it per update round:

1. **base update** — each delta is applied to its relation (append /
   tombstone), and only that node's tries are invalidated (partitioned
   rebuild; see :meth:`repro.data.trie.TrieIndex.rebuilt`);
2. **dirty-path walk** — groups run in the compiled execution order, but a
   group runs at all only when its node's relation changed or one of its
   incoming views changed this round; everything off the path keeps its
   cached outputs;
3. **per-group maintenance** — a dirty group is refreshed either by the
   **numeric** delta step (insert-only change at its own node: execute the
   same compiled group code over a trie of just the inserted tuples and add
   the emitted deltas in — exact because every slot is a sum over the
   node's rows, hence linear in the row multiset, and key sets only grow
   under inserts) or by a **rescan** (re-execute over the node's full trie
   with refreshed inputs — bit-identical to a from-scratch run);
4. **delta cutoff** — a refreshed view that compares equal to its previous
   contents stops dirtying its consumers.

No re-planning, no code generation, and no scans of untouched nodes happen
after construction. ``EngineConfig.incremental_mode`` selects the strategy:
``"auto"`` (numeric where exact, rescan otherwise), ``"rescan"`` (always
rescan; the maintained state stays bit-for-bit equal to recomputation), or
``"numeric"`` (strict: like auto, but a delta containing deletes raises
*before any state is touched* rather than silently falling back — for
tests and benchmarks that must not lose the O(|Δ|) path; downstream
propagation rescans are part of the numeric design and remain allowed).

**Snapshot isolation.** Every apply round builds a complete *successor
version* off to the side — a new :class:`~repro.core.snapshot.Snapshot`
(structurally sharing unchanged relations and tries) plus copy-on-write
view/query stores (untouched artifacts are carried by reference, numeric
merges copy only the dicts and value lists they update) — and publishes it
in two atomic reference swaps: the snapshot is installed into the owning
engine's :class:`~repro.core.snapshot.SnapshotStore` (so subsequent
:meth:`~repro.core.engine.LMFAO.run` calls see the new data, while
in-flight runs keep the version they pinned), then the handle's own state
pointer flips. Readers of :attr:`results` / :meth:`view_contents` therefore
always observe one complete version — never a half-applied delta — and an
apply that fails anywhere leaves both the handle and the engine exactly as
they were. One maintenance lineage per engine: a second concurrent writer
(another handle, or a direct
:meth:`~repro.core.snapshot.SnapshotStore.install`) surfaces as a
version-conflict :class:`~repro.util.errors.PlanError` instead of a lost
update. The full contract is in ``docs/serving.md``.

**Server-routed handles.** A handle built by
:meth:`repro.serve.AggregateServer.maintain` is *bound* to the server's
group-committed write queue: its ``apply`` does not install directly but
enqueues the delta and blocks for the :class:`ApplyResult` of the group
commit that covered it (several queued writes may land in one snapshot
transition — the handle is refreshed once, over the composed delta). The
refresh machinery is shared either way: the direct path and the server's
committer both advance handle state through :meth:`_advance_state` /
:meth:`_commit_state`, so routed results stay bit-exact vs applying each
delta sequentially.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.engine import CompiledBatch, LMFAO, RunResult, _to_query_result
from repro.core.runtime import (
    ArrayViewData,
    apply_predicates,
    debug_checks_enabled,
    local_predicates,
    node_trie,
    partition_tries,
)
from repro.core.snapshot import Snapshot
from repro.data.catalog import Database
from repro.data.trie import TrieIndex
from repro.incremental.delta import RelationDelta, stage_deltas
from repro.incremental.rules import DeltaRules, refresh_ordered
from repro.query.query import QueryResult
from repro.util.errors import PlanError

_MODES = ("auto", "numeric", "rescan")


def check_numeric_deletes(mode: str, deltas: Mapping[str, RelationDelta]) -> None:
    """Enforce ``incremental_mode='numeric'``'s no-deletes contract, pre-commit.

    Shared by the direct handle path and the server's write path so a
    delete is refused with the same error *before* it is staged or
    enqueued, wherever it enters.
    """
    if mode != "numeric":
        return
    for name, delta in deltas.items():
        if not delta.insert_only:
            raise PlanError(
                f"incremental_mode='numeric' cannot maintain deletes "
                f"(delta for {name}); use 'auto' or 'rescan'"
            )


@dataclass
class ApplyResult:
    """Outcome of one apply round: refreshed results plus maintenance stats."""

    #: all query results of the *new* version (what the handle now serves).
    results: dict[str, QueryResult]
    #: queries whose groups actually changed this round.
    refreshed_queries: tuple[str, ...]
    #: views whose contents actually changed this round.
    refreshed_views: tuple[str, ...]
    relations_changed: tuple[str, ...]
    #: groups maintained by the O(|Δ|) numeric step.
    groups_numeric: int
    #: groups re-executed over their full (cached) trie.
    groups_rescanned: int
    #: groups skipped entirely — off the dirty path or cut off.
    groups_skipped: int
    seconds: float
    #: the snapshot version this round installed (unchanged on empty deltas).
    version: int = 0

    def __getitem__(self, query_name: str) -> QueryResult:
        return self.results[query_name]


@dataclass(frozen=True)
class _MaintainedVersion:
    """One immutable version of a handle's full maintained state.

    The snapshot carries the relations and trie memo; the stores carry
    every view's contents and every query's raw groups over exactly that
    snapshot. Versions share untouched artifacts structurally — an apply
    copies only what it refreshes.
    """

    snapshot: Snapshot
    view_data: dict[str, dict] = field(repr=False)
    query_raw: dict[str, dict] = field(repr=False)
    results: dict[str, QueryResult] = field(repr=False)


class MaintainedBatch:
    """A compiled batch plus its maintained state. Built by :meth:`LMFAO.maintain`."""

    def __init__(self, engine: LMFAO, compiled: CompiledBatch) -> None:
        if engine.config.incremental_mode not in _MODES:
            raise PlanError(
                f"EngineConfig.incremental_mode must be one of "
                f"{', '.join(repr(m) for m in _MODES)}, "
                f"got {engine.config.incremental_mode!r}"
            )
        self.compiled = compiled
        self.config = engine.config
        self.rules = DeltaRules.from_compiled(compiled)
        self.applies = 0
        self._engine = engine
        self._router = None  # set by AggregateServer.maintain (write queue)
        self._view_group_by = {
            name: view.group_by for name, view in compiled.view_plan.views.items()
        }
        # ordered queries get targeted partition re-ranks on apply; their
        # raw changed-key sets are tracked per round for exactly this.
        self._ordered_queries = frozenset(
            query.name for query in compiled.batch if query.order_by is not None
        )
        # Pin the engine's current snapshot. Its trie memo is *shared* (the
        # memo only gains immutable entries, so warming it here warms the
        # engine's runs too); successor versions built by apply() share
        # every unchanged node's tries structurally.
        snapshot = engine.snapshot()
        view_data: dict[str, dict] = {}
        query_raw: dict[str, dict] = {}
        for index in compiled.execution_order:
            self._adopt_outputs(
                index, self._run_full(index, snapshot, view_data),
                view_data, query_raw,
            )
        results = {
            query.name: _to_query_result(query, query_raw[query.name])
            for query in compiled.batch
        }
        self._state = _MaintainedVersion(snapshot, view_data, query_raw, results)
        self._debug_check_stores()

    # ---------------------------------------------------------------- accessors
    @property
    def results(self) -> dict[str, QueryResult]:
        """Current (maintained) results, keyed by query name.

        Reading this property pins one complete version: the returned dict
        belongs to the latest installed :class:`_MaintainedVersion` and is
        never mutated by later applies (they install fresh dicts).
        """
        return self._state.results

    def result(self, query_name: str) -> QueryResult:
        return self._state.results[query_name]

    def __getitem__(self, query_name: str) -> QueryResult:
        return self._state.results[query_name]

    @property
    def database(self) -> Database:
        """The current database version (original plus all applied deltas)."""
        return self._state.snapshot.db

    @property
    def db(self) -> Database:
        """Alias of :attr:`database` (parity with ``LMFAO.db``)."""
        return self._state.snapshot.db

    @property
    def version(self) -> int:
        """The snapshot version the handle currently serves."""
        return self._state.snapshot.version

    def view_contents(self, view_name: str) -> dict:
        """Maintained contents of one internal view (inspection/testing)."""
        return self._state.view_data[view_name]

    def view_store(self) -> dict[str, dict]:
        """The handle's maintained view store, ``name → ViewData``.

        **Read-only contract**: the returned mapping and its contents are
        the handle's live state for its current version — callers must
        never mutate either. The serving layer republishes refreshed
        views from here into the cross-request view cache after each
        group commit (see ``AggregateServer._commit_group``), which is
        safe precisely because every maintainer merge is copy-on-write.
        """
        return self._state.view_data

    def recompute(self) -> "RunResult":
        """From-scratch run over the current database — the oracle baseline.

        Builds a fresh engine (cold tries, recompilation) so the comparison
        in benchmarks and differential tests is honest.
        """
        fresh = LMFAO(self._state.snapshot.db, self.config)
        return fresh.run(self.compiled.batch)

    # -------------------------------------------------------------------- apply
    def apply(self, inserts=None, deletes=None) -> ApplyResult:
        """Update base relations and propagate deltas through affected views.

        ``inserts`` / ``deletes`` map relation names to tuples to add /
        remove — each value a :class:`Relation`, a row sequence, a column
        mapping, or (deletes only) a boolean mask over the current
        instance. A server-bound handle routes the delta through its
        server's group-committed write queue and blocks for the result
        (see the module docstring); a direct handle builds the successor
        version off to the side and installs it atomically (into the
        owning engine first, then the handle). Either way the returned
        :class:`ApplyResult` carries the new version's results plus
        per-round stats.
        """
        if self._router is not None:
            return self._router._route_handle_apply(self, inserts, deletes)
        start = time.perf_counter()
        state = self._state
        # stage_deltas normalises and stages every relation update before
        # this method commits anything: a delta that fails to apply (e.g.
        # deleting an absent tuple) must leave the handle's state —
        # database, tries, views — completely untouched. The numeric-mode
        # check runs on the normalised deltas, likewise pre-commit.
        deltas, staged = stage_deltas(state.snapshot.db, inserts, deletes)
        check_numeric_deletes(self.config.incremental_mode, deltas)
        if not deltas:
            return self._empty_apply_result(start=start)

        snapshot = state.snapshot.with_relations(staged)
        new_state, result = self._advance_state(deltas, snapshot, start=start)

        # ---- publish: engine first (version conflicts abort the whole
        # apply with the handle untouched), then the handle's own pointer
        self._engine._snapshots.install(snapshot)
        self._commit_state(new_state)
        return result

    def _bind_router(self, router) -> None:
        """Route future ``apply`` calls through a server's write queue."""
        self._router = router

    def _empty_apply_result(self, start: float | None = None) -> ApplyResult:
        """The no-op round: nothing staged, nothing enqueued, version kept."""
        state = self._state
        self.applies += 1
        return ApplyResult(
            results=state.results,
            refreshed_queries=(),
            refreshed_views=(),
            relations_changed=(),
            groups_numeric=0,
            groups_rescanned=0,
            groups_skipped=0,
            seconds=0.0 if start is None else time.perf_counter() - start,
            version=state.snapshot.version,
        )

    def _advance_state(
        self,
        deltas: Mapping[str, RelationDelta],
        snapshot: Snapshot,
        start: float | None = None,
    ) -> tuple[_MaintainedVersion, ApplyResult]:
        """Compute the successor maintained state, entirely off to the side.

        ``snapshot`` is the (not yet installed) direct successor carrying
        ``deltas``'s staged relations. Nothing is published: the caller
        installs the snapshot and then flips the handle via
        :meth:`_commit_state`, so a failure anywhere in here leaves both
        the handle and the engine exactly as they were — the committer's
        crash-containment contract. The dirty-path walk, numeric/rescan
        choice and copy-on-write merge discipline are identical for
        single deltas and for group-composed ones.
        """
        start = time.perf_counter() if start is None else start
        state = self._state
        if snapshot.version != state.snapshot.version + 1:
            raise PlanError(
                f"maintained handle at version {state.snapshot.version} "
                f"cannot advance to non-successor version {snapshot.version}"
            )
        changed: dict[str, RelationDelta] = dict(deltas)

        # ---- build the successor version off to the side (copy-on-write)
        view_data = dict(state.view_data)
        query_raw = dict(state.query_raw)

        numeric = rescanned = skipped = 0
        changed_views: set[str] = set()
        refreshed_views: set[str] = set()
        dirty_queries: set[str] = set()
        dirty_keys: dict[str, set] = {}
        for index in self.compiled.execution_order:
            plan = self.compiled.plans[index]
            node_delta = changed.get(plan.node)
            upstream_dirty = any(v in changed_views for v in plan.consumed_views)
            if node_delta is None and not upstream_dirty:
                skipped += 1
                continue
            if self._numeric_applicable(node_delta, upstream_dirty):
                outputs = self._run_delta(index, node_delta, view_data)
                merge = self._merge_delta_outputs
                numeric += 1
            else:
                outputs = self._run_full(index, snapshot, view_data)
                merge = None
                rescanned += 1
            self._adopt_outputs(
                index,
                outputs,
                view_data,
                query_raw,
                merge=merge,
                changed_views=changed_views,
                refreshed_views=refreshed_views,
                dirty_queries=dirty_queries,
                dirty_keys=dirty_keys,
            )
        results = dict(state.results)
        for query in self.compiled.batch:
            if query.name not in dirty_queries:
                continue
            if query.order_by is not None:
                results[query.name] = QueryResult(
                    query=query,
                    groups=refresh_ordered(
                        query,
                        state.results.get(query.name),
                        query_raw[query.name],
                        dirty_keys.get(query.name),
                    ),
                )
            else:
                results[query.name] = _to_query_result(
                    query, query_raw[query.name]
                )
        new_state = _MaintainedVersion(snapshot, view_data, query_raw, results)
        result = ApplyResult(
            results=results,
            refreshed_queries=tuple(sorted(dirty_queries)),
            refreshed_views=tuple(sorted(refreshed_views)),
            relations_changed=tuple(sorted(changed)),
            groups_numeric=numeric,
            groups_rescanned=rescanned,
            groups_skipped=skipped,
            seconds=time.perf_counter() - start,
            version=snapshot.version,
        )
        return new_state, result

    def _commit_state(self, new_state: _MaintainedVersion) -> None:
        """Flip the handle to an already-installed successor state."""
        self._state = new_state
        self.applies += 1
        self._debug_check_stores()

    # ----------------------------------------------------------- group execution
    def _numeric_applicable(
        self, node_delta: RelationDelta | None, upstream_dirty: bool
    ) -> bool:
        if self.config.incremental_mode == "rescan":
            return False
        return (
            node_delta is not None
            and node_delta.insert_only
            and not upstream_dirty
        )

    def _run_full(
        self, index: int, snapshot: Snapshot, view_data: dict
    ) -> dict[str, dict]:
        """Re-execute one group over the full (cached) trie of its node."""
        plan = self.compiled.plans[index]
        trie = node_trie(
            snapshot.db, plan.node, plan.order,
            self.compiled.shared_predicates, snapshot.tries,
        )
        return self._execute(index, trie, view_data, snapshot=snapshot)

    def _run_delta(
        self, index: int, delta: RelationDelta, view_data: dict
    ) -> dict[str, dict]:
        """The numeric step: the same compiled code over the inserted tuples.

        Every emitted slot is ``Σ over node rows`` of a product that does
        not otherwise depend on the node's row multiset, so the outputs
        over ``ΔR`` *are* the per-view deltas. Key sets are exact too: under
        inserts a key exists in the updated view iff it existed before or
        some inserted tuple supports it — exactly the keys the delta run
        emits.
        """
        plan = self.compiled.plans[index]
        relation = self._filter_shared(delta.inserts)
        trie = TrieIndex(relation, plan.order)
        return self._execute(index, trie, view_data)

    def _execute(
        self,
        index: int,
        trie: TrieIndex,
        view_data: dict,
        snapshot: Snapshot | None = None,
    ) -> dict[str, dict]:
        """Drive one group through the engine's partitioned execution path.

        Under a partitioned configuration the maintainer splits and merges
        exactly like the batch executor (same cut points, same partition
        order, same :meth:`LMFAO._execute_group_partitioned` offload
        decision — full rescans under ``executor="process"`` ship to the
        worker pool with the same merge association), so a rescan stays
        bit-identical to a from-scratch run with the same
        :class:`EngineConfig`. Delta tries are ad hoc (built over the
        inserted tuples, not addressable by a snapshot trie cache key),
        so the numeric path passes ``snapshot=None`` and always runs
        in-process — they are usually below ``parallel_threshold`` anyway.
        ``view_data`` is the successor version's store being built: a
        downstream group reads its upstream views refreshed-this-round.
        """
        compiled = self.compiled
        plan = compiled.plans[index]
        tries = partition_tries(
            plan, trie, self.config.partitions, self.config.parallel_threshold,
            self._engine._partition_concurrency(),
        )
        return self._engine._execute_group_partitioned(
            compiled,
            index,
            tries,
            view_data,
            self._view_group_by,
            compiled.functions,
            snapshot=snapshot,
            shared=compiled.shared_predicates,
        )

    def _adopt_outputs(
        self,
        index: int,
        outputs: dict[str, dict],
        view_data: dict[str, dict],
        query_raw: dict[str, dict],
        merge=None,
        changed_views: set[str] | None = None,
        refreshed_views: set[str] | None = None,
        dirty_queries: set[str] | None = None,
        dirty_keys: dict[str, set] | None = None,
    ) -> None:
        """Adopt (rescan) or add (numeric) one group's outputs; track diffs.

        Writes only into the successor version's stores (``view_data`` /
        ``query_raw``); the previous version's dicts and value lists are
        never touched — numeric merges go through the copy-on-write
        :meth:`_merge_delta_outputs`.

        For ordered queries the per-key change set is collected into
        ``dirty_keys`` (numeric merges report the keys they touched; a
        rescan diffs old vs new raw), feeding
        :func:`repro.incremental.rules.refresh_ordered`'s targeted
        partition re-rank.
        """
        cutoff = self.config.incremental_cutoff
        for emission in self.compiled.plans[index].emissions:
            is_view = emission.kind == "view"
            store = view_data if is_view else query_raw
            name = emission.artifact
            track: set | None = None
            if (
                dirty_keys is not None
                and not is_view
                and name in self._ordered_queries
            ):
                track = dirty_keys.setdefault(name, set())
            if merge is not None:
                merged, artifact_changed = merge(
                    store[name], outputs[name], track
                )
                store[name] = merged
            else:
                old = store.get(name)
                new = outputs[name]
                store[name] = new
                artifact_changed = old is None or old != new
                if track is not None and artifact_changed:
                    if old is None:
                        dirty_keys[name] = None  # unknown: force full finish
                    else:
                        for key in old.keys() | new.keys():
                            if old.get(key) != new.get(key):
                                track.add(key)
            if changed_views is None:
                continue
            if is_view:
                if artifact_changed:
                    refreshed_views.add(name)
                if artifact_changed or not cutoff:
                    changed_views.add(name)
            elif artifact_changed:
                dirty_queries.add(name)

    @staticmethod
    def _merge_delta_outputs(
        target: dict, delta: dict, changed_keys: set | None = None
    ) -> tuple[dict, bool]:
        """A merged copy ``target + delta`` per key and slot (copy-on-write).

        Returns ``(merged, changed)``; when ``changed_keys`` is given,
        every key the merge added or updated is also recorded into it
        (the ordered-query refresh uses this to re-rank only the dirtied
        partitions). ``target`` — the *previous*
        version's artifact — is never mutated, and neither are its stored
        value lists: the merge shallow-copies the key table and copies a
        value list the first time a slot of it changes, so readers holding
        the previous version keep a coherent artifact (including any
        columnar :class:`ArrayViewData` state, which stays valid precisely
        because nothing writes through it). The merged result is a plain
        dict — whatever columnar mirror the old version carried does not
        describe the new contents.

        A new key is a change even with all-zero values: the inserted rows
        give it join support, so a from-scratch run would emit it too.
        """
        merged: dict = dict(target)
        changed = False
        for key, values in delta.items():
            current = merged.get(key)
            if current is None:
                merged[key] = list(values)
                changed = True
                if changed_keys is not None:
                    changed_keys.add(key)
                continue
            updated = None
            for slot, value in enumerate(values):
                if value != 0.0:
                    if updated is None:
                        updated = list(current)
                    updated[slot] += value
                    changed = True
            if updated is not None:
                merged[key] = updated
                if changed_keys is not None:
                    changed_keys.add(key)
        if debug_checks_enabled():
            # the merge must leave both sources unscathed
            for source in (target, delta):
                if isinstance(source, ArrayViewData):
                    source.check_consistent()
        return merged, changed

    def _debug_check_stores(self) -> None:
        """Under ``LMFAO_DEBUG``: no maintained dict may carry stale arrays.

        Walks every stored view and raw query output after a round and
        asserts columnar state (if any) still mirrors the dict contents —
        the incremental path's end-to-end guard against a mutation that
        slipped past the copy-on-write discipline of
        :meth:`_merge_delta_outputs`.
        """
        if not debug_checks_enabled():
            return
        state = self._state
        for store in (state.view_data, state.query_raw):
            for data in store.values():
                if isinstance(data, ArrayViewData):
                    data.check_consistent()

    # ------------------------------------------------------------------- helpers
    def _filter_shared(self, relation):
        """Apply node-local pushed-down predicates to a delta relation."""
        return apply_predicates(
            relation,
            local_predicates(
                relation.attribute_names, self.compiled.shared_predicates
            ),
        )

    def __repr__(self) -> str:
        return (
            f"MaintainedBatch(queries={len(self.compiled.batch)}, "
            f"views={self.compiled.num_views}, groups={self.compiled.num_groups}, "
            f"applies={self.applies}, version={self.version})"
        )
