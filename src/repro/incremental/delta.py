"""Delta relations: the unit of change handed to incremental maintenance.

A :class:`RelationDelta` describes one base relation's change as a pair of
bag operations — ``inserts`` (tuples appended) and ``deletes`` (tuples
removed, matched as a multiset, or a boolean tombstone mask over the current
instance). :func:`normalize_deltas` coerces the user-facing ``apply(...)``
arguments (relations, row lists, column dicts, masks) into validated deltas
against the database schema.

The distinction that matters downstream is :attr:`RelationDelta.insert_only`:
sum-product aggregates are *linear* in each relation's row multiset, so an
insert-only delta admits an exact O(|Δ|) numeric maintenance step (run the
compiled group code over a trie of just the new tuples and add the emitted
values in). Deletes can silently empty a group — deciding whether a group-by
key survives needs join support, which the numeric path cannot see — so they
route to the rescan path instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class RelationDelta:
    """One relation's change: appended tuples, removed tuples, or both.

    ``deletes`` removes one occurrence per tuple (bag difference);
    ``delete_mask`` marks rows of the *current* instance for removal.
    Deletes are applied before inserts: a tuple inserted by this delta
    cannot be deleted by it.
    """

    relation: str
    inserts: Relation | None = None
    deletes: Relation | None = None
    delete_mask: np.ndarray | None = None

    @property
    def is_empty(self) -> bool:
        return (
            (self.inserts is None or self.inserts.num_rows == 0)
            and (self.deletes is None or self.deletes.num_rows == 0)
            and (self.delete_mask is None or not bool(self.delete_mask.any()))
        )

    @property
    def insert_only(self) -> bool:
        """True when the delta only appends — the numeric fast-path domain."""
        return (self.deletes is None or self.deletes.num_rows == 0) and (
            self.delete_mask is None or not bool(self.delete_mask.any())
        )

    @property
    def num_inserts(self) -> int:
        return self.inserts.num_rows if self.inserts is not None else 0

    def apply_to(self, relation: Relation) -> Relation:
        """The updated instance (deletes first, then inserts)."""
        result = relation
        if self.delete_mask is not None:
            if len(self.delete_mask) != relation.num_rows:
                raise SchemaError(
                    f"delete mask for {self.relation} has {len(self.delete_mask)} "
                    f"entries, relation has {relation.num_rows} rows"
                )
            result = result.filter(~self.delete_mask)
        if self.deletes is not None and self.deletes.num_rows:
            result = result.remove_rows(self.deletes)
        if self.inserts is not None and self.inserts.num_rows:
            result = result.concat(self.inserts)
        return result


def _coerce_relation(schema: RelationSchema, value: object) -> Relation:
    """Coerce rows / column dicts / relations into an instance of ``schema``."""
    if isinstance(value, Relation):
        if value.attribute_names != schema.attribute_names:
            raise SchemaError(
                f"delta for {schema.name} has attributes {value.attribute_names}, "
                f"expected {schema.attribute_names}"
            )
        return value.rename(schema.name)
    if isinstance(value, Mapping):
        return Relation(schema, value)
    if isinstance(value, (Sequence, np.ndarray)) and not isinstance(value, (str, bytes)):
        return Relation.from_rows(schema, value)
    raise SchemaError(
        f"cannot interpret delta of type {type(value).__name__} for {schema.name}; "
        "pass a Relation, a row sequence, a column mapping, or (deletes only) "
        "a boolean mask"
    )


def normalize_deltas(
    db: Database,
    inserts: Mapping[str, object] | None,
    deletes: Mapping[str, object] | None,
) -> dict[str, RelationDelta]:
    """Validate and combine apply() arguments into per-relation deltas."""
    per_relation: dict[str, dict] = {}
    for kind, mapping in (("inserts", inserts), ("deletes", deletes)):
        if not mapping:
            continue
        for name, value in mapping.items():
            if name not in db.relation_names:
                raise SchemaError(f"{kind} target {name!r} is not a relation")
            per_relation.setdefault(name, {})[kind] = value

    deltas: dict[str, RelationDelta] = {}
    for name, parts in per_relation.items():
        schema = db.relation(name).schema
        ins = parts.get("inserts")
        ins_rel = _coerce_relation(schema, ins) if ins is not None else None
        dels = parts.get("deletes")
        del_rel = None
        del_mask = None
        if dels is not None:
            if isinstance(dels, np.ndarray) and dels.dtype == np.bool_:
                del_mask = dels
            else:
                del_rel = _coerce_relation(schema, dels)
        delta = RelationDelta(
            relation=name, inserts=ins_rel, deletes=del_rel, delete_mask=del_mask
        )
        if not delta.is_empty:
            deltas[name] = delta
    return deltas


def stage_deltas(
    db: Database,
    inserts: Mapping[str, object] | None,
    deletes: Mapping[str, object] | None,
) -> tuple[dict[str, RelationDelta], dict[str, Relation]]:
    """Normalise apply() arguments and stage every updated relation.

    Returns ``(deltas, staged)`` where ``staged`` maps each changed
    relation name to its fully updated instance. Staging *everything*
    before any caller commits anything is the writers' atomicity
    contract: a delta that fails to apply (e.g. deleting an absent tuple)
    raises here, before any snapshot state has been touched. Both writer
    paths — :meth:`repro.incremental.MaintainedBatch.apply` and
    :meth:`repro.serve.AggregateServer.apply` — stage through this one
    helper so their semantics cannot diverge.
    """
    deltas = normalize_deltas(db, inserts, deletes)
    staged = {
        name: delta.apply_to(db.relation(name)) for name, delta in deltas.items()
    }
    return deltas, staged
