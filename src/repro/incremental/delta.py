"""Delta relations: the unit of change handed to incremental maintenance.

A :class:`RelationDelta` describes one base relation's change as a pair of
bag operations — ``inserts`` (tuples appended) and ``deletes`` (tuples
removed, matched as a multiset, or a boolean tombstone mask over the current
instance). :func:`normalize_deltas` coerces the user-facing ``apply(...)``
arguments (relations, row lists, column dicts, masks) into validated deltas
against the database schema.

The distinction that matters downstream is :attr:`RelationDelta.insert_only`:
sum-product aggregates are *linear* in each relation's row multiset, so an
insert-only delta admits an exact O(|Δ|) numeric maintenance step (run the
compiled group code over a trie of just the new tuples and add the emitted
values in). Deletes can silently empty a group — deciding whether a group-by
key survives needs join support, which the numeric path cannot see — so they
route to the rescan path instead.

:func:`coalesce_deltas` composes two *consecutive* delta maps into one —
the group-commit primitive of the serving layer's write queue
(:mod:`repro.serve.writequeue`). Composition cancels the second delta's
deletes against the first's still-pending inserts bag-wise (a tuple
inserted then deleted inside one group never touches the base relation,
which matters because :meth:`repro.data.relation.Relation.remove_rows`
treats deleting an absent tuple as a hard error), and it preserves
:attr:`RelationDelta.insert_only`: a queue of small insert-only writes
merges into one insert-only delta, so the O(|Δ|) numeric path amortises
over the whole group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.catalog import Database
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class RelationDelta:
    """One relation's change: appended tuples, removed tuples, or both.

    ``deletes`` removes one occurrence per tuple (bag difference);
    ``delete_mask`` marks rows of the *current* instance for removal.
    Deletes are applied before inserts: a tuple inserted by this delta
    cannot be deleted by it.
    """

    relation: str
    inserts: Relation | None = None
    deletes: Relation | None = None
    delete_mask: np.ndarray | None = None

    @property
    def is_empty(self) -> bool:
        return (
            (self.inserts is None or self.inserts.num_rows == 0)
            and (self.deletes is None or self.deletes.num_rows == 0)
            and (self.delete_mask is None or not bool(self.delete_mask.any()))
        )

    @property
    def insert_only(self) -> bool:
        """True when the delta only appends — the numeric fast-path domain."""
        return (self.deletes is None or self.deletes.num_rows == 0) and (
            self.delete_mask is None or not bool(self.delete_mask.any())
        )

    @property
    def num_inserts(self) -> int:
        return self.inserts.num_rows if self.inserts is not None else 0

    def apply_to(self, relation: Relation) -> Relation:
        """The updated instance (deletes first, then inserts)."""
        result = relation
        if self.delete_mask is not None:
            if len(self.delete_mask) != relation.num_rows:
                raise SchemaError(
                    f"delete mask for {self.relation} has {len(self.delete_mask)} "
                    f"entries, relation has {relation.num_rows} rows"
                )
            result = result.filter(~self.delete_mask)
        if self.deletes is not None and self.deletes.num_rows:
            result = result.remove_rows(self.deletes)
        if self.inserts is not None and self.inserts.num_rows:
            result = result.concat(self.inserts)
        return result


def _coerce_relation(schema: RelationSchema, value: object) -> Relation:
    """Coerce rows / column dicts / relations into an instance of ``schema``."""
    if isinstance(value, Relation):
        if value.attribute_names != schema.attribute_names:
            raise SchemaError(
                f"delta for {schema.name} has attributes {value.attribute_names}, "
                f"expected {schema.attribute_names}"
            )
        return value.rename(schema.name)
    if isinstance(value, Mapping):
        return Relation(schema, value)
    if isinstance(value, (Sequence, np.ndarray)) and not isinstance(value, (str, bytes)):
        return Relation.from_rows(schema, value)
    raise SchemaError(
        f"cannot interpret delta of type {type(value).__name__} for {schema.name}; "
        "pass a Relation, a row sequence, a column mapping, or (deletes only) "
        "a boolean mask"
    )


def normalize_deltas(
    db: Database,
    inserts: Mapping[str, object] | None,
    deletes: Mapping[str, object] | None,
) -> dict[str, RelationDelta]:
    """Validate and combine apply() arguments into per-relation deltas."""
    per_relation: dict[str, dict] = {}
    for kind, mapping in (("inserts", inserts), ("deletes", deletes)):
        if not mapping:
            continue
        for name, value in mapping.items():
            if name not in db.relation_names:
                raise SchemaError(f"{kind} target {name!r} is not a relation")
            per_relation.setdefault(name, {})[kind] = value

    deltas: dict[str, RelationDelta] = {}
    for name, parts in per_relation.items():
        schema = db.relation(name).schema
        ins = parts.get("inserts")
        ins_rel = _coerce_relation(schema, ins) if ins is not None else None
        dels = parts.get("deletes")
        del_rel = None
        del_mask = None
        if dels is not None:
            if isinstance(dels, np.ndarray) and dels.dtype == np.bool_:
                del_mask = dels
            else:
                del_rel = _coerce_relation(schema, dels)
        delta = RelationDelta(
            relation=name, inserts=ins_rel, deletes=del_rel, delete_mask=del_mask
        )
        if not delta.is_empty:
            deltas[name] = delta
    return deltas


def _concat_optional(first: Relation | None, second: Relation | None) -> Relation | None:
    """Bag union of two optional relations (None = empty)."""
    if first is None or first.num_rows == 0:
        return second
    if second is None or second.num_rows == 0:
        return first
    return first.concat(second)


def _cancel_inserts(
    pending: Relation, deletes: Relation
) -> tuple[Relation | None, Relation | None]:
    """Cancel ``deletes`` against ``pending`` inserts, bag-wise.

    Returns ``(surviving inserts, surviving deletes)`` (either may be
    None when fully cancelled). Each delete tuple consumes at most one
    matching pending-insert occurrence; unmatched deletes survive and
    will be removed from the *base* relation when the merged delta
    applies — exactly what applying the two deltas in sequence would do,
    since :meth:`RelationDelta.apply_to` appends the first delta's
    inserts before the second delta's deletes run.
    """
    from collections import Counter

    available = Counter(pending.iter_rows())
    cancel: Counter = Counter()
    surviving_deletes: list[tuple] = []
    for row in deletes.iter_rows():
        if cancel[row] < available[row]:
            cancel[row] += 1
        else:
            surviving_deletes.append(row)
    if not cancel:
        return pending, deletes
    kept: list[tuple] = []
    used: Counter = Counter()
    for row in pending.iter_rows():
        if used[row] < cancel[row]:
            used[row] += 1  # this occurrence is annihilated by a delete
        else:
            kept.append(row)
    schema = pending.schema
    inserts = Relation.from_rows(schema, kept) if kept else None
    dels = (
        Relation.from_rows(schema, surviving_deletes)
        if surviving_deletes
        else None
    )
    return inserts, dels


def coalesce_relation_deltas(
    first: RelationDelta, second: RelationDelta
) -> RelationDelta | None:
    """Compose two consecutive deltas on one relation, or None if unmergeable.

    The only unmergeable case is a ``delete_mask`` on ``second``: a mask
    indexes rows of the instance *as the first delta left it*, which the
    composed delta (applied to the original instance) cannot express.
    ``second``'s tuple deletes first cancel against ``first``'s pending
    inserts; the remainder joins ``first``'s deletes. Applying the result
    is multiset-equal to applying ``first`` then ``second`` — and raises
    on exactly the same invalid deltas, since the composed delete bag
    targets the same base-relation occurrences.
    """
    if second.delete_mask is not None and bool(second.delete_mask.any()):
        return None
    inserts = first.inserts
    deletes = second.deletes
    if (
        inserts is not None
        and inserts.num_rows
        and deletes is not None
        and deletes.num_rows
    ):
        inserts, deletes = _cancel_inserts(inserts, deletes)
    return RelationDelta(
        relation=first.relation,
        inserts=_concat_optional(inserts, second.inserts),
        deletes=_concat_optional(first.deletes, deletes),
        delete_mask=first.delete_mask,
    )


def coalesce_deltas(
    first: Mapping[str, RelationDelta], second: Mapping[str, RelationDelta]
) -> dict[str, RelationDelta] | None:
    """Compose two consecutive per-relation delta maps into one, or None.

    ``None`` means the pair cannot be expressed as a single delta map
    (a ``delete_mask`` in ``second`` over a relation ``first`` already
    touched — the mask's row indexes are relative to the intermediate
    state) and the caller must commit them as separate groups. Relations
    touched by only one side pass through by reference; relations touched
    by both compose via :func:`coalesce_relation_deltas`. Entries that
    cancel to nothing are dropped, so the result can be ``{}``.
    """
    merged = dict(first)
    for name, delta in second.items():
        base = merged.get(name)
        if base is None:
            merged[name] = delta
            continue
        combined = coalesce_relation_deltas(base, delta)
        if combined is None:
            return None
        if combined.is_empty:
            del merged[name]
        else:
            merged[name] = combined
    return merged


def stage_deltas(
    db: Database,
    inserts: Mapping[str, object] | None,
    deletes: Mapping[str, object] | None,
) -> tuple[dict[str, RelationDelta], dict[str, Relation]]:
    """Normalise apply() arguments and stage every updated relation.

    Returns ``(deltas, staged)`` where ``staged`` maps each changed
    relation name to its fully updated instance. Staging *everything*
    before any caller commits anything is the writers' atomicity
    contract: a delta that fails to apply (e.g. deleting an absent tuple)
    raises here, before any snapshot state has been touched. Both writer
    paths — :meth:`repro.incremental.MaintainedBatch.apply` and
    :meth:`repro.serve.AggregateServer.apply` — stage through this one
    helper so their semantics cannot diverge.
    """
    deltas = normalize_deltas(db, inserts, deletes)
    staged = {
        name: delta.apply_to(db.relation(name)) for name, delta in deltas.items()
    }
    return deltas, staged


def delta_footprint(
    deltas: Mapping[str, RelationDelta],
) -> dict[str, bool]:
    """Changed relation → whether its change is insert-only (empty ones omitted).

    The one-line routing summary the serving layer's view-cache refresh
    works from at group commit: a cached view whose subtree misses every
    key here is carried forward unchanged; a view touched by exactly one
    insert-only relation at its own node is refreshed numerically via the
    O(|Δ|) rules; anything else is invalidated for the successor version
    (see ``AggregateServer._refresh_view_cache``).
    """
    return {
        name: delta.insert_only
        for name, delta in deltas.items()
        if not delta.is_empty
    }
