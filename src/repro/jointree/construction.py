"""Join-tree construction from a database schema.

For an α-acyclic join query, a maximum-weight spanning tree of the
*intersection graph* (nodes = relations, edge weight = number of shared
attributes) is a join tree satisfying the running-intersection property —
a classical result (Bernstein & Goodman 1981) that makes construction a
one-liner over networkx-free Kruskal. The RIP check in :class:`JoinTree`
turns a cyclic schema into a :class:`CyclicSchemaError`.
"""

from __future__ import annotations

from repro.data.schema import DatabaseSchema
from repro.jointree.jointree import JoinTree
from repro.util.errors import CyclicSchemaError


class _UnionFind:
    def __init__(self, items: tuple[str, ...]) -> None:
        self._parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[ra] = rb
        return True


def build_join_tree(schema: DatabaseSchema) -> JoinTree:
    """Build a join tree for ``schema``.

    Uses Kruskal on the intersection graph with weight = number of shared
    attributes, breaking ties deterministically by relation declaration
    order. Raises :class:`CyclicSchemaError` when the schema is cyclic or
    its join graph is disconnected (a cross product has no join tree).
    """
    names = schema.relation_names
    if len(names) == 1:
        return JoinTree(schema, [])

    position = {name: i for i, name in enumerate(names)}
    candidates: list[tuple[int, int, int, str, str]] = []
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            weight = len(schema.shared_attributes(u, v))
            if weight > 0:
                candidates.append((-weight, position[u], position[v], u, v))
    candidates.sort()

    uf = _UnionFind(names)
    edges: list[tuple[str, str]] = []
    for _neg_weight, _pu, _pv, u, v in candidates:
        if uf.union(u, v):
            edges.append((u, v))
    if len(edges) != len(names) - 1:
        raise CyclicSchemaError(
            "join graph is disconnected: some relations share no attributes "
            "with the rest (cross products are not supported)"
        )
    return JoinTree(schema, edges)
