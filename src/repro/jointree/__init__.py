"""Join trees: the backbone of LMFAO's shared query plan.

The view-generation layer needs one join tree for the whole batch. This
package builds it from the database schema (maximum-weight spanning tree on
the shared-attribute graph, validated against the running-intersection
property) and assigns a root per query with the paper's heuristic.
"""

from repro.jointree.construction import build_join_tree
from repro.jointree.jointree import JoinTree
from repro.jointree.roots import assign_roots

__all__ = ["JoinTree", "assign_roots", "build_join_tree"]
