"""Per-query root assignment.

LMFAO "uses one join tree for all queries, but assigns one root per query
(using a simple heuristic)" (paper, Section 2). The heuristic implemented
here follows the paper's motivation: pick the node that keeps the group-by
attributes with the largest domains *local to the root*, so intermediate
views do not have to carry them:

* score a node by the summed domain size of the query's group-by attributes
  it contains (attributes carried by views are pure overhead, so local is
  better, and bigger domains are costlier to carry);
* break ties towards the largest relation (fact tables make good roots —
  their incoming views are small dimension summaries), then towards the
  node with most neighbours, then declaration order.

For Figure 2 of the paper this assigns Q1 and Q2 to ``Sales`` and Q3 to
``Items``, matching the paper's choice.
"""

from __future__ import annotations

from repro.data.catalog import Database
from repro.jointree.jointree import JoinTree
from repro.query.batch import QueryBatch
from repro.query.query import Query


def score_root(db: Database, tree: JoinTree, query: Query, node: str) -> tuple:
    """Comparable score of ``node`` as the root for ``query`` (higher wins)."""
    local = set(tree.attributes(node))
    gb_local = sum(db.domain_size(a) for a in query.group_by if a in local)
    return (
        gb_local,
        db.cardinality(node),
        len(tree.neighbors(node)),
        -tree.nodes.index(node),
    )


def assign_root(db: Database, tree: JoinTree, query: Query) -> str:
    """The chosen root node for one query."""
    return max(tree.nodes, key=lambda node: score_root(db, tree, query, node))


def assign_roots(
    db: Database,
    tree: JoinTree,
    batch: QueryBatch,
    override: dict[str, str] | None = None,
) -> dict[str, str]:
    """Root node per query name.

    ``override`` pins specific queries to specific roots — the demo UI's
    "reassign the query to a different root" interaction.
    """
    roots: dict[str, str] = {}
    override = override or {}
    for query in batch:
        pinned = override.get(query.name)
        if pinned is not None:
            if pinned not in tree.nodes:
                raise KeyError(f"root override {pinned!r} is not a join-tree node")
            roots[query.name] = pinned
        else:
            roots[query.name] = assign_root(db, tree, query)
    return roots
