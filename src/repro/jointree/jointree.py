"""The join tree data structure.

A join tree over a database schema has one node per relation and satisfies
the **running-intersection property** (RIP): for every attribute, the nodes
whose relations contain it form a connected subtree. RIP is what makes
LMFAO's directional views correct: the separator ``attrs(u) ∩ attrs(v)`` of
an edge is exactly the interface between the two sides of the tree.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.data.schema import DatabaseSchema
from repro.util.errors import CyclicSchemaError, PlanError


class JoinTree:
    """An undirected tree over relation names, tied to a schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        edges: Iterable[tuple[str, str]],
    ) -> None:
        self.schema = schema
        names = list(schema.relation_names)
        self._adjacency: dict[str, list[str]] = {name: [] for name in names}
        self._edges: list[tuple[str, str]] = []
        for u, v in edges:
            if u not in self._adjacency or v not in self._adjacency:
                raise PlanError(f"edge ({u}, {v}) references unknown relation")
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)
            self._edges.append((u, v))
        if len(self._edges) != len(names) - 1:
            raise PlanError(
                f"a tree over {len(names)} nodes needs {len(names) - 1} edges, "
                f"got {len(self._edges)}"
            )
        self._assert_connected()
        self._assert_running_intersection()
        self._subtree_attr_cache: dict[tuple[str, str], frozenset[str]] = {}

    # ------------------------------------------------------------------ checks
    def _assert_connected(self) -> None:
        start = next(iter(self._adjacency))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in self._adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        if len(seen) != len(self._adjacency):
            raise PlanError("join tree is not connected")

    def _assert_running_intersection(self) -> None:
        for attr in self.schema.all_attributes:
            holders = set(self.schema.relations_with(attr))
            if len(holders) <= 1:
                continue
            start = next(iter(holders))
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in self._adjacency[node]:
                    if nbr in holders and nbr not in seen:
                        seen.add(nbr)
                        stack.append(nbr)
            if seen != holders:
                raise CyclicSchemaError(
                    f"attribute {attr!r} spans disconnected nodes {sorted(holders)}; "
                    "the schema admits no join tree with this edge set"
                )

    # --------------------------------------------------------------- structure
    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self._adjacency)

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        """Undirected edges as listed at construction."""
        return tuple(self._edges)

    @property
    def directed_edges(self) -> tuple[tuple[str, str], ...]:
        """Every edge in both directions — one slot per potential view."""
        out: list[tuple[str, str]] = []
        for u, v in self._edges:
            out.append((u, v))
            out.append((v, u))
        return tuple(out)

    def neighbors(self, node: str) -> tuple[str, ...]:
        try:
            return tuple(self._adjacency[node])
        except KeyError:
            raise PlanError(f"unknown join-tree node {node!r}") from None

    def attributes(self, node: str) -> tuple[str, ...]:
        """Attributes of the relation at ``node``."""
        return self.schema.relation(node).attribute_names

    def separator(self, u: str, v: str) -> tuple[str, ...]:
        """Join attributes between adjacent nodes (must be adjacent)."""
        if v not in self._adjacency.get(u, ()):
            raise PlanError(f"{u} and {v} are not adjacent in the join tree")
        return self.schema.shared_attributes(u, v)

    def rooted_parents(self, root: str) -> dict[str, str | None]:
        """Parent map of the tree rooted at ``root`` (root maps to None)."""
        if root not in self._adjacency:
            raise PlanError(f"unknown join-tree node {root!r}")
        parents: dict[str, str | None] = {root: None}
        stack = [root]
        while stack:
            node = stack.pop()
            for nbr in self._adjacency[node]:
                if nbr not in parents:
                    parents[nbr] = node
                    stack.append(nbr)
        return parents

    def topological_from_leaves(self, root: str) -> list[str]:
        """Nodes ordered so every node appears after all its children."""
        parents = self.rooted_parents(root)
        order: list[str] = []
        seen: set[str] = set()

        def visit(node: str) -> None:
            seen.add(node)
            for nbr in self._adjacency[node]:
                if nbr != parents[node] and nbr not in seen:
                    visit(nbr)
            order.append(node)

        visit(root)
        return order

    def subtree_attributes(self, node: str, parent: str | None) -> frozenset[str]:
        """All attributes in the subtree at ``node`` when hung below ``parent``.

        ``parent=None`` returns every attribute of the database.
        """
        key = (node, parent or "")
        cached = self._subtree_attr_cache.get(key)
        if cached is not None:
            return cached
        attrs: set[str] = set()
        stack = [(node, parent)]
        while stack:
            current, avoid = stack.pop()
            attrs.update(self.attributes(current))
            for nbr in self._adjacency[current]:
                if nbr != avoid:
                    stack.append((nbr, current))
        result = frozenset(attrs)
        self._subtree_attr_cache[key] = result
        return result

    def __repr__(self) -> str:
        edges = ", ".join(f"{u}-{v}" for u, v in self._edges)
        return f"JoinTree({edges})"
