"""Aggregate decomposition: building γ/β chains for a view group.

This implements the fine-grained optimisations of the multi-output layer
(paper §2): every artifact aggregate is decomposed into

* a **γ prefix-product chain** of terms bound at or above its emission
  level (the paper's ``α`` locals, hoisted by loop-invariant code motion),
* a **β running-sum chain** of terms bound below it,
* an O(1) **row terminal** (count or prefix-sum read) anchoring the row
  multiplicity at the deepest relation level the aggregate touches.

Chains are hash-consed: two aggregates with structurally equal chain
suffixes share the same β (or γ) variable, which is how ``Q1`` and
``V_S→I`` share ``β1`` in Figure 3. Setting ``factorize=False`` disables
both the hash-consing and the pushdown (every term is evaluated at the
deepest level), giving the un-factorised ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.groups import Group
from repro.core.orders import GroupOrder
from repro.core.plan import (
    BetaNode,
    CarriedFactor,
    CountTerm,
    Emission,
    EmissionSlot,
    FactorTerm,
    GammaNode,
    KeyPart,
    MultiOutputPlan,
    RowSumTerm,
    SubSumTerm,
    Term,
    ViewBinding,
    ViewTerm,
)
from repro.core.views import Output, View, ViewAggregate
from repro.util.errors import PlanError


@dataclass
class _ChainBuilder:
    """Hash-consed construction of γ and β nodes for one group."""

    factorize: bool = True
    gammas: list[GammaNode] = field(default_factory=list)
    betas: list[BetaNode] = field(default_factory=list)
    _gamma_index: dict[tuple, int] = field(default_factory=dict)
    _beta_index: dict[tuple, int] = field(default_factory=dict)

    def gamma_chain(self, terms: list[Term], collapse_level: int | None) -> int | None:
        """Build the prefix-product chain; returns the final node id."""
        if not terms:
            return None
        if not self.factorize:
            level = collapse_level if collapse_level is not None else max(
                t.level for t in terms
            )
            return self._new_gamma(level, tuple(terms), None, shared=False)
        by_level: dict[int, list[Term]] = {}
        for term in terms:
            by_level.setdefault(term.level, []).append(term)
        parent: int | None = None
        for level in sorted(by_level):
            parent = self._new_gamma(
                level, tuple(by_level[level]), parent, shared=True
            )
        return parent

    def beta_chain(self, terms: list[Term], reset_level: int) -> int | None:
        """Build the running-sum chain; returns the topmost node id."""
        if not terms:
            return None
        if not self.factorize:
            level = max(t.level for t in terms)
            return self._new_beta(level, reset_level, tuple(terms), None, shared=False)
        by_level: dict[int, list[Term]] = {}
        for term in terms:
            by_level.setdefault(term.level, []).append(term)
        levels = sorted(by_level)
        child: int | None = None
        for i in range(len(levels) - 1, -1, -1):
            level = levels[i]
            reset = levels[i - 1] if i > 0 else reset_level
            child = self._new_beta(
                level, reset, tuple(by_level[level]), child, shared=True
            )
        return child

    # ------------------------------------------------------------- internals
    def _new_gamma(
        self, level: int, terms: tuple[Term, ...], parent: int | None, shared: bool
    ) -> int:
        terms = tuple(sorted(terms, key=lambda t: t.sig))
        key = (level, tuple(t.sig for t in terms), parent)
        if shared:
            found = self._gamma_index.get(key)
            if found is not None:
                return found
        node = GammaNode(id=len(self.gammas), level=level, terms=terms, parent=parent)
        self.gammas.append(node)
        if shared:
            self._gamma_index[key] = node.id
        return node.id

    def _new_beta(
        self,
        level: int,
        reset_level: int,
        terms: tuple[Term, ...],
        child: int | None,
        shared: bool,
    ) -> int:
        terms = tuple(sorted(terms, key=lambda t: t.sig))
        key = (level, reset_level, tuple(t.sig for t in terms), child)
        if shared:
            found = self._beta_index.get(key)
            if found is not None:
                return found
        node = BetaNode(
            id=len(self.betas),
            level=level,
            reset_level=reset_level,
            terms=terms,
            child=child,
        )
        self.betas.append(node)
        if shared:
            self._beta_index[key] = node.id
        return node.id


def decompose_group(
    group: Group,
    order: GroupOrder,
    factorize: bool = True,
) -> MultiOutputPlan:
    """Lower one group to a :class:`MultiOutputPlan`."""
    level_of = order.level_of
    bindings = {b.view: b for b in order.bindings}
    blocks = {cb.index: cb for cb in order.carried_blocks}

    builder = _ChainBuilder(factorize=factorize)
    subsum_registry: dict[tuple, SubSumTerm] = {}
    row_products: dict[tuple, None] = {}
    level_functions: dict[tuple, None] = {}
    emissions: list[Emission] = []

    def subsum(binding: ViewBinding, agg_index: int) -> SubSumTerm:
        key = (binding.block, agg_index)
        term = subsum_registry.get(key)
        if term is None:
            term = SubSumTerm(
                level=binding.bind_level,
                block=binding.block,
                view=binding.view,
                agg_index=agg_index,
            )
            subsum_registry[key] = term
        return term

    def lower_slot(
        artifact_name: str,
        slot_index: int,
        aggregate: ViewAggregate,
        group_by: tuple[str, ...],
    ) -> EmissionSlot:
        # ---- classify the group-by ---------------------------------------
        gb_rel_levels: list[int] = []
        gb_carried: list[str] = []
        for attr in group_by:
            if attr in level_of:
                gb_rel_levels.append(level_of[attr])
            else:
                gb_carried.append(attr)

        # ---- resolve refs against this slot's bindings --------------------
        terms: list[Term] = []
        keyed_blocks: dict[int, ViewBinding] = {}
        carried_factors: list[CarriedFactor] = []
        anchor = -1  # deepest relation anchor for the row terminal
        for ref in aggregate.refs:
            binding = bindings.get(ref.view)
            if binding is None:
                raise PlanError(
                    f"{artifact_name} references {ref.view}, which is not an "
                    f"incoming view of group {group.name}"
                )
            anchor = max(anchor, binding.bind_level)
            if not binding.is_carried:
                terms.append(ViewTerm(binding.bind_level, binding.view, ref.index))
            elif any(a in binding.carried for a in gb_carried):
                keyed_blocks[binding.block] = binding
                carried_factors.append(CarriedFactor(binding.block, ref.index))
            else:
                terms.append(subsum(binding, ref.index))

        # every carried group-by attribute must come from a keyed block
        covered = {
            attr for b in keyed_blocks.values() for attr in b.carried
        }
        missing = [a for a in gb_carried if a not in covered]
        if missing:
            raise PlanError(
                f"{artifact_name}[{slot_index}] groups by {missing} but no "
                f"referenced incoming view carries them"
            )

        # ---- local factors: level terms vs. row factors --------------------
        row_factors: list[tuple[str, str]] = []
        for factor in aggregate.factors:
            level = level_of.get(factor.attribute)
            if level is None:
                row_factors.append((factor.attribute, factor.function.name))
            else:
                term = FactorTerm(level, factor.attribute, factor.function.name)
                terms.append(term)
                level_functions.setdefault(
                    (level, factor.attribute, factor.function.name), None
                )

        # ---- the row terminal ----------------------------------------------
        anchor = max(
            [anchor]
            + [t.level for t in terms]
            + gb_rel_levels
        )
        if row_factors:
            product = tuple(sorted(row_factors))
            terms.append(RowSumTerm(anchor, product))
            row_products.setdefault(product, None)
        else:
            terms.append(CountTerm(anchor))

        # ---- key parts -------------------------------------------------------
        key_parts: list[KeyPart] = []
        for attr in group_by:
            if attr in level_of:
                key_parts.append(KeyPart("rel", level_of[attr]))
            else:
                for block_index, binding in keyed_blocks.items():
                    if attr in binding.carried:
                        key_parts.append(
                            KeyPart("car", block_index, binding.carried.index(attr))
                        )
                        break

        # ---- split into γ / β and build chains -------------------------------
        if keyed_blocks:
            emit_level = max(
                [t.level for t in terms]
                + [blocks[b].bind_level for b in keyed_blocks]
                + gb_rel_levels
            )
            gamma = builder.gamma_chain(terms, emit_level if not factorize else None)
            beta = None
        else:
            emit_level = max(gb_rel_levels) if gb_rel_levels else -1
            gamma_terms = [t for t in terms if t.level <= emit_level]
            beta_terms = [t for t in terms if t.level > emit_level]
            gamma = builder.gamma_chain(
                gamma_terms, emit_level if not factorize else None
            )
            beta = builder.beta_chain(beta_terms, emit_level)

        # ---- join-support guard ----------------------------------------------
        # When the chain reaches below the emission level, a value of 0.0 is
        # ambiguous: it may be a genuine zero-valued sum or an empty join
        # under the key (all deeper probes missed). Groups must only exist
        # for keys with join support, so such emissions are guarded by a
        # shared running row count over the surviving paths. Support is
        # trivial when the emission sits at the chain's deepest level (the
        # current run's rows prove support) and irrelevant for scalar
        # outputs (their single group always exists, matching SQL).
        support = None
        if group_by and anchor > emit_level:
            support = builder.beta_chain([CountTerm(anchor)], emit_level)

        return EmissionSlot(
            slot=slot_index,
            level=emit_level,
            key_parts=tuple(key_parts),
            key_blocks=tuple(sorted(keyed_blocks)),
            carried_factors=tuple(carried_factors),
            gamma=gamma,
            beta=beta,
            support=support,
        )

    # ---- lower every artifact ------------------------------------------------
    order_attrs = tuple(lvl.attr for lvl in order.relation_levels)
    for artifact in group.artifacts:
        is_view = isinstance(artifact, View)
        group_by = artifact.group_by
        slots = tuple(
            lower_slot(artifact.name, i, aggregate, group_by)
            for i, aggregate in enumerate(artifact.aggregates)
        )
        aligned = (
            len(group_by) > 0
            and all(not s.key_blocks for s in slots)
            and len({(s.level, s.key_parts, s.support) for s in slots}) == 1
            and set(group_by) == set(order_attrs[: len(group_by)])
            and slots[0].level == len(group_by) - 1
        )
        order_spec = None
        if not is_view and artifact.query.order_by is not None:
            order_spec = (artifact.query.order_by.signature, artifact.query.limit)
        emissions.append(
            Emission(
                artifact=artifact.name,
                kind="view" if is_view else "query",
                width=len(slots),
                group_by=group_by,
                slots=slots,
                aligned=aligned,
                order=order_spec,
            )
        )

    return MultiOutputPlan(
        group_name=group.name,
        node=group.node,
        relation_levels=order.relation_levels,
        carried_blocks=order.carried_blocks,
        bindings=order.bindings,
        subsums=tuple(subsum_registry.values()),
        gammas=tuple(builder.gammas),
        betas=tuple(builder.betas),
        emissions=tuple(emissions),
        row_products=tuple(row_products),
        level_functions=tuple(level_functions),
    )
