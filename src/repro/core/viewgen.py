"""The view-generation layer (paper Figure 1, left box).

Takes the query batch, the join tree and the per-query roots, and produces
the merged directional views plus one :class:`Output` per query:

* **aggregate pushdown** — each query is decomposed top-down from its root
  into one view per join-tree edge below the root; every factor of the
  query's sum-product is applied at the *highest* node (closest to the
  query's root) whose relation contains the factor's attribute;
* **view merging** — views with the same edge, direction and group-by
  attributes are merged across queries; structurally equal aggregates
  inside a merged view are deduplicated, so "several edges in the join tree
  only have one view, which is used for all three queries" (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.catalog import Database
from repro.jointree.jointree import JoinTree
from repro.query.aggregates import Factor
from repro.query.batch import QueryBatch
from repro.query.query import Query
from repro.core.views import (
    AggRef,
    Output,
    View,
    ViewAggregate,
    ViewSignature,
    view_signature,
)
from repro.util.errors import PlanError


@dataclass
class ViewPlan:
    """Everything the view-generation layer hands to multi-output grouping."""

    tree: JoinTree
    roots: dict[str, str]
    views: dict[str, View] = field(default_factory=dict)
    outputs: list[Output] = field(default_factory=list)
    #: view name → names of the queries whose decomposition uses it.
    queries_using: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: memoized :meth:`view_signatures` result (computed on first use).
    _signatures: dict[str, ViewSignature] | None = field(
        default=None, repr=False, compare=False
    )

    def views_on_edge(self, source: str, target: str) -> list[View]:
        """All merged views computed at ``source`` for ``target``."""
        return [
            v for v in self.views.values() if v.source == source and v.target == target
        ]

    def incoming_views(self, node: str) -> list[View]:
        """All merged views consumed at ``node``."""
        return [v for v in self.views.values() if v.target == node]

    @property
    def num_views(self) -> int:
        return len(self.views)

    def view_signatures(self) -> dict[str, ViewSignature]:
        """Canonical batch-independent signature per view, memoized.

        Signatures compose bottom-up over :attr:`View.referenced_views`
        (see :func:`repro.core.views.view_signature`), so a view's
        signature covers its whole subtree — structure, placeholder
        slots and subtree relations alike.
        """
        if self._signatures is None:
            sigs: dict[str, ViewSignature] = {}
            # Order profile per query: views feeding an ordered (top-k)
            # query carry that query's order spec and limit in their
            # signature, so a cached view computed for ``... LIMIT 5``
            # can never be identified with one computed for the same
            # structure unordered (or under a different k). Unordered
            # batches contribute no profile, keeping their signatures
            # byte-identical to pre-ordering builds.
            query_orders = {
                output.query.name: (output.query.order_by.signature,
                                    output.query.limit)
                for output in self.outputs
                if output.query.order_by is not None
            }

            def order_profile(name: str) -> tuple:
                users = self.queries_using.get(name, ())
                return tuple(sorted(
                    {query_orders[q] for q in users if q in query_orders}
                ))

            def sig(name: str) -> ViewSignature:
                cached = sigs.get(name)
                if cached is None:
                    view = self.views[name]
                    children = tuple(sig(c) for c in view.referenced_views)
                    base = view_signature(view, children)
                    profile = order_profile(name)
                    if profile:
                        base = ViewSignature(
                            structure=(base.structure, ("topk", profile)),
                            slots=base.slots,
                            subtree=base.subtree,
                        )
                    cached = sigs[name] = base
                return cached

            for name in self.views:
                sig(name)
            self._signatures = sigs
        return self._signatures

    def edge_view_counts(self) -> dict[tuple[str, str], int]:
        """Directed edge → number of merged views (the demo UI arrow widths)."""
        counts: dict[tuple[str, str], int] = {}
        for view in self.views.values():
            key = (view.source, view.target)
            counts[key] = counts.get(key, 0) + 1
        return counts


class ViewGenerator:
    """Decomposes a batch into merged views along one shared join tree."""

    def __init__(
        self,
        db: Database,
        tree: JoinTree,
        merge_across_queries: bool = True,
    ) -> None:
        self._db = db
        self._tree = tree
        self._merge = merge_across_queries
        self._registry: dict[tuple, View] = {}
        self._uses: dict[str, list[str]] = {}
        self._counter = 0

    def generate(self, batch: QueryBatch, roots: dict[str, str]) -> ViewPlan:
        """Run pushdown + merging for every query; returns the view plan."""
        plan = ViewPlan(tree=self._tree, roots=dict(roots))
        for query in batch:
            root = roots[query.name]
            plan.outputs.append(self._decompose(query, root))
        plan.views = {
            view.name: view for view in self._registry.values()
        }
        plan.queries_using = {
            name: tuple(dict.fromkeys(users)) for name, users in self._uses.items()
        }
        return plan

    # ------------------------------------------------------------------ internals
    def _decompose(self, query: Query, root: str) -> Output:
        tree = self._tree
        parents = tree.rooted_parents(root)
        children: dict[str, list[str]] = {node: [] for node in tree.nodes}
        for node, parent in parents.items():
            if parent is not None:
                children[parent].append(node)
        depth = self._depths(root)

        # Assign every factor occurrence to the highest node containing its
        # attribute (unique by the running-intersection property).
        factor_home: list[dict[str, list[Factor]]] = []
        for agg in query.aggregates:
            homes: dict[str, list[Factor]] = {}
            for factor in agg.factors:
                node = self._highest_node(factor.attribute, depth)
                homes.setdefault(node, []).append(factor)
            factor_home.append(homes)

        gb_set = set(query.group_by)
        # refs[agg_index][child] = AggRef into the (merged) child view.
        refs: list[dict[str, AggRef]] = [{} for _ in query.aggregates]

        for node in tree.topological_from_leaves(root):
            parent = parents[node]
            if parent is None:
                continue  # the root produces the Output below
            separator = tree.separator(node, parent)
            carried = gb_set & set(tree.subtree_attributes(node, parent))
            group_by = tuple(sorted(set(separator) | carried))
            view = self._view_for(query, node, parent, group_by)
            for i in range(len(query.aggregates)):
                aggregate = ViewAggregate(
                    factors=tuple(factor_home[i].get(node, ())),
                    refs=tuple(refs[i][child] for child in children[node]),
                )
                index = view.add_aggregate(aggregate)
                refs[i][node] = view.ref(index)

        output_aggs = [
            ViewAggregate(
                factors=tuple(factor_home[i].get(root, ())),
                refs=tuple(refs[i][child] for child in children[root]),
            )
            for i in range(len(query.aggregates))
        ]
        return Output(query=query, node=root, aggregates=output_aggs)

    def _depths(self, root: str) -> dict[str, int]:
        depth = {root: 0}
        frontier = [root]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for nbr in self._tree.neighbors(node):
                    if nbr not in depth:
                        depth[nbr] = depth[node] + 1
                        nxt.append(nbr)
            frontier = nxt
        return depth

    def _highest_node(self, attribute: str, depth: dict[str, int]) -> str:
        holders = self._db.schema.relations_with(attribute)
        if not holders:
            raise PlanError(f"attribute {attribute!r} not in any relation")
        return min(holders, key=lambda node: depth[node])

    def _view_for(
        self, query: Query, source: str, target: str, group_by: tuple[str, ...]
    ) -> View:
        key: tuple = (source, target, group_by)
        if not self._merge:
            key = key + (query.name,)
        view = self._registry.get(key)
        if view is None:
            view = View(
                name=f"V{self._counter}_{source}_{target}",
                source=source,
                target=target,
                group_by=group_by,
            )
            self._counter += 1
            self._registry[key] = view
            self._uses[view.name] = []
        self._uses[view.name].append(query.name)
        return view
