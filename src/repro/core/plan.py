"""The multi-output plan IR (the formal version of the paper's Figure 3).

A :class:`MultiOutputPlan` describes, for one view group, the trie loop
nest over the node's relation and the decomposed aggregate computation:

* **relation levels** — one trie loop per interesting node attribute, in
  the group's attribute order;
* **carried blocks** — one per incoming view whose group-by includes
  attributes not local to the node. Its entry list is fetched (and
  semi-join checked) once all its key attributes are bound. Because sums
  over distinct carried views factorise, each block contributes independent
  **sub-sums** (``Σ_entries agg``) instead of a nested cross-product loop;
  only emissions *keyed* by carried attributes iterate entries again;
* **terms** — atomic multiplicands: per-level factor evaluations, scalar
  view lookups, carried sub-sums, and O(1) row-range terminals (count /
  prefix-sum reads) that replace the innermost row loop;
* **γ chains** (:class:`GammaNode`) — prefix products of terms bound at or
  above an artifact's emission level (the paper's ``α`` locals);
* **β chains** (:class:`BetaNode`) — running sums over terms bound below
  the emission level (the paper's ``β``); chains are hash-consed so
  artifacts with equal suffixes share work — exactly how ``Q1`` and
  ``V_S→I`` share ``β1`` in Figure 3;
* **emissions** — how each artifact's aggregate slots are written out:
  scalar, dict accumulate, or the aligned fast path (plain assignment when
  the group-by is a prefix of the attribute order, so every key is visited
  exactly once).

Both the code generator and the reference interpreter consume this IR and
must agree exactly; that invariant is tested differentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# --------------------------------------------------------------------- levels


@dataclass(frozen=True)
class RelationLevel:
    """Trie level ``index`` iterating runs of node attribute ``attr``."""

    index: int
    attr: str


@dataclass(frozen=True)
class CarriedBlock:
    """An incoming view carrying non-local group-by attributes.

    ``key`` — name-sorted node-local key attributes (the probe key);
    ``carried`` — the non-local attributes, in entry-tuple order;
    ``bind_level`` — the relation level where the key is fully bound: the
    entry list is fetched there, with semi-join skip on miss.
    """

    index: int
    view: str
    key: tuple[str, ...]
    carried: tuple[str, ...]
    bind_level: int


# ---------------------------------------------------------------------- terms


@dataclass(frozen=True)
class FactorTerm:
    """``func(attr)`` where ``attr`` is a relation trie level attribute."""

    level: int
    attr: str
    func_name: str

    @property
    def sig(self) -> tuple:
        return ("f", self.level, self.attr, self.func_name)


@dataclass(frozen=True)
class ViewTerm:
    """Aggregate ``agg_index`` of a scalar (non-carried) incoming view.

    The probe happens once at ``level`` (= max level of the view's key);
    the term reads one slot of the probed tuple.
    """

    level: int
    view: str
    agg_index: int

    @property
    def sig(self) -> tuple:
        return ("v", self.level, self.view, self.agg_index)


@dataclass(frozen=True)
class SubSumTerm:
    """``Σ over entries of a carried view of aggregate agg_index``.

    Constant within a ``bind_level`` unit, so it binds there; computed in
    the block's sub-sum loop.
    """

    level: int  # == block.bind_level
    block: int
    view: str
    agg_index: int

    @property
    def sig(self) -> tuple:
        return ("s", self.level, self.block, self.agg_index)


@dataclass(frozen=True)
class CountTerm:
    """Number of relation rows in the current run at relation level ``level``.

    ``level == -1`` means the whole relation. This O(1) range length is the
    row-multiplicity anchor of every aggregate chain.
    """

    level: int

    @property
    def sig(self) -> tuple:
        return ("n", self.level)


@dataclass(frozen=True)
class RowSumTerm:
    """``Σ_rows ∏ func(attr)`` over the current run at relation level ``level``.

    ``product`` is the canonical (sorted) multiset of row factors; the
    executor materialises one prefix-sum register per distinct product.
    ``level == -1`` sums the whole relation.
    """

    level: int
    product: tuple[tuple[str, str], ...]  # ((attr, func_name), ...)

    @property
    def sig(self) -> tuple:
        return ("r", self.level, self.product)


Term = Union[FactorTerm, ViewTerm, SubSumTerm, CountTerm, RowSumTerm]


# --------------------------------------------------------------------- chains


@dataclass(frozen=True)
class GammaNode:
    """Prefix product ``value = parent_value × ∏ terms``, computed once per
    unit at placement ``level`` (≥ every term's own level)."""

    id: int
    level: int
    terms: tuple[Term, ...]
    parent: int | None


@dataclass(frozen=True)
class BetaNode:
    """Running sum accumulated in the loop body at ``level``.

    Initialised to 0 in the body of ``reset_level`` (``-1`` = prologue),
    receives ``+= ∏ terms × child_value`` once per unit at ``level``, and is
    read back in the ``reset_level`` body after the inner loops finish.
    """

    id: int
    level: int
    reset_level: int
    terms: tuple[Term, ...]
    child: int | None


# ------------------------------------------------------------------ emissions


@dataclass(frozen=True)
class KeyPart:
    """One component of an emission key.

    ``kind == 'rel'``: the value at relation level ``level``;
    ``kind == 'car'``: component ``pos`` of the current entry of carried
    block ``level`` (here ``level`` stores the block index).
    """

    kind: str
    level: int
    pos: int = 0


@dataclass(frozen=True)
class CarriedFactor:
    """A per-entry multiplicand of a carried-keyed emission slot."""

    block: int
    agg_index: int


@dataclass(frozen=True)
class EmissionSlot:
    """How one aggregate slot of an artifact is emitted.

    ``level`` — the relation level whose body hosts the emission (``-1``
    for scalars, written after all loops); ``key_blocks`` — carried blocks
    whose entries must be iterated (nested) to build carried key parts;
    ``carried_factors`` — per-entry multiplicands from those blocks. The
    emitted value is ``γ × β × ∏ carried_factors`` (missing pieces = 1).

    ``support`` guards against phantom groups: when the aggregate's chain
    reaches below the emission level, a sum of 0.0 cannot be told apart
    from an empty join under the key, so the emission only fires when the
    referenced support chain (a pure row count over the surviving paths)
    is positive. ``None`` means support is trivially positive.
    """

    slot: int
    level: int
    key_parts: tuple[KeyPart, ...]
    key_blocks: tuple[int, ...]
    carried_factors: tuple[CarriedFactor, ...]
    gamma: int | None
    beta: int | None
    support: int | None = None


#: the host signature of one emission slot group — the fields that decide
#: which loop body (and, for carried keys, which nested entry loops) emit it.
SlotGroupKey = tuple[int, tuple[KeyPart, ...], tuple[int, ...], "int | None"]


@dataclass(frozen=True)
class Emission:
    """All slots of one artifact plus its output container description.

    ``aligned`` marks the fast path: every slot shares the same relation
    level and key parts, there are no carried keys, and the group-by set
    equals the attribute-order prefix — each key is then visited exactly
    once and the emission is a plain assignment.

    ``order`` marks an **ordered** query emission — the canonical
    ``(OrderSpec.signature, limit)`` pair of the producing query (always
    None for view emissions: views feed further aggregation and must
    stay complete). The lowering maps it to ``emission_mode == 'topk'``
    layered over the structural base mode; execution still accumulates
    the full group set (per-partition top-k is not mergeable from
    truncated partials) and the ranked cut happens once, at result
    finishing.
    """

    artifact: str
    kind: str  # 'view' | 'query'
    width: int
    group_by: tuple[str, ...]
    slots: tuple[EmissionSlot, ...]
    aligned: bool
    order: tuple | None = None

    def slot_groups(self) -> list[tuple[SlotGroupKey, tuple[EmissionSlot, ...]]]:
        """Slots grouped by host ``(level, key parts, key blocks, support)``.

        The code generator emits one probe-accumulate statement group per
        entry (with nested entry loops for the keyed carried blocks) and
        the NumPy backend lowers one run-by-entry expansion per entry;
        the backends must partition slots identically for their outputs
        to agree, so the partition is defined once, here. Group order is
        first-slot order — the order the generated statements execute in.
        """
        groups: dict[SlotGroupKey, list[EmissionSlot]] = {}
        for slot in self.slots:
            key = (slot.level, slot.key_parts, slot.key_blocks, slot.support)
            groups.setdefault(key, []).append(slot)
        return [(key, tuple(slots)) for key, slots in groups.items()]

    @property
    def has_carried_keys(self) -> bool:
        """Whether any slot's key iterates carried-block entries."""
        return any(slot.key_blocks for slot in self.slots)


# ------------------------------------------------------------------- bindings


@dataclass(frozen=True)
class ViewBinding:
    """How a group consumes one incoming view.

    Scalar views (no carried attributes) are probed at ``bind_level`` and
    yield a tuple of aggregates; carried views are fetched at
    ``bind_level`` as entry lists ``[(carried_values, aggregates), ...]``.
    """

    view: str
    num_aggregates: int
    key: tuple[str, ...]
    key_levels: tuple[int, ...]
    bind_level: int
    carried: tuple[str, ...] = ()
    block: int | None = None

    @property
    def is_carried(self) -> bool:
        return bool(self.carried)


# ----------------------------------------------------------------- group plan


@dataclass
class MultiOutputPlan:
    """Executable description of one view group (paper §2.2–2.3, Figure 3).

    The contract between the optimiser (:func:`repro.core.decompose.
    decompose_group`) and every executor — the generated-Python code
    (:mod:`repro.core.codegen`), the reference interpreter, and the NumPy
    and C backends all consume exactly this IR and must agree
    bit-for-bit on integer data.

    Field by field:

    ``group_name`` / ``node``
        the group's name and the join-tree node whose relation the loop
        nest scans (paper: "groups of views computed at the same node");
    ``relation_levels``
        one trie loop per interesting node attribute, in the group's
        attribute order (:attr:`order` is the derived tuple) — Figure 3's
        nested loops over distinct prefixes;
    ``carried_blocks`` / ``subsums``
        incoming views whose group-by carries non-local attributes, plus
        the Σ-over-entries terms they contribute (see
        :class:`CarriedBlock`);
    ``bindings``
        how each incoming view is probed (:class:`ViewBinding`); also the
        group's dependency frontier for incremental maintenance
        (:attr:`consumed_views`);
    ``gammas`` / ``betas``
        the hash-consed prefix-product and running-sum chains — the
        paper's ``α`` locals and ``β`` partial aggregates, shared between
        artifacts with equal suffixes (Figure 3's ``β1``);
    ``emissions``
        how every artifact's slots are written out (:class:`Emission`:
        scalar, hash accumulate, or aligned assignment);
    ``row_products`` / ``level_functions``
        the distinct row-factor products and per-level factor
        evaluations the runtime materialises as prefix-sum registers and
        value arrays (``function names`` here are *plan slot names*: a
        :class:`~repro.core.engine.PlanBinding` may re-bind them to
        different constants per request; executors resolve slots through
        the functions mapping they are given and key trie caches by the
        bound function's own name).

    A plan is **pure structure** — it never references data contents —
    so one plan executes against any snapshot and any re-bound constants;
    :attr:`partition_safe` additionally certifies it for per-partition
    execution + merge (domain parallelism).
    """

    group_name: str
    node: str
    relation_levels: tuple[RelationLevel, ...]
    carried_blocks: tuple[CarriedBlock, ...]
    bindings: tuple[ViewBinding, ...]
    subsums: tuple[SubSumTerm, ...]
    gammas: tuple[GammaNode, ...]
    betas: tuple[BetaNode, ...]
    emissions: tuple[Emission, ...]
    #: distinct row-factor products needing prefix-sum registers.
    row_products: tuple[tuple[tuple[str, str], ...], ...]
    #: distinct (level, attr, func_name) needing per-level value arrays.
    level_functions: tuple[tuple[int, str, str], ...]

    @property
    def order(self) -> tuple[str, ...]:
        """The relation attribute order (the paper's trie order)."""
        return tuple(level.attr for level in self.relation_levels)

    def binding(self, view: str) -> ViewBinding:
        for b in self.bindings:
            if b.view == view:
                return b
        raise KeyError(view)

    def block_binding(self, block: int) -> ViewBinding:
        """The carried binding behind carried-block index ``block``.

        Emission key parts of kind ``'car'`` and :class:`CarriedFactor`
        terms reference blocks by index; executors resolve them to the
        binding (and through it the marshalled entry lists) with this.
        """
        for b in self.bindings:
            if b.block == block:
                return b
        raise KeyError(block)

    # ------------------------------------------------ partition-aware introspection
    @property
    def partition_safe(self) -> bool:
        """Whether this plan may run per level-0 trie partition and merge.

        Every emitted slot is a sum over the node's rows of a product that
        does not otherwise depend on the node's row multiset (the same
        linearity incremental maintenance exploits), so partial outputs from
        disjoint row partitions always *sum* to the full outputs. The one
        structural requirement is on key existence: aligned emissions are
        plain assignments, so their key sets must be disjoint across
        partitions — guaranteed exactly when the emission is keyed by the
        level-0 attribute (true by construction: aligned means the group-by
        equals an attribute-order prefix). This property re-checks that
        invariant defensively; a False return makes the executor fall back
        to unpartitioned execution rather than risk a wrong merge.
        """
        if not self.relation_levels:
            return False
        for emission in self.emissions:
            if not emission.aligned or not emission.group_by:
                continue
            first = emission.slots[0].key_parts[0]
            if first.kind != "rel" or first.level != 0:
                return False
        return True

    # ------------------------------------------------- delta-aware introspection
    @property
    def consumed_views(self) -> tuple[str, ...]:
        """Names of the incoming views this plan probes (its delta inputs).

        Incremental maintenance marks a group dirty when any of these views
        changed in the current apply round — the binding list *is* the
        group's dependency frontier in the view DAG.
        """
        return tuple(b.view for b in self.bindings)

    @property
    def produced_views(self) -> tuple[str, ...]:
        """Names of the views this plan emits (its delta outputs)."""
        return tuple(e.artifact for e in self.emissions if e.kind == "view")

    @property
    def produced_queries(self) -> tuple[str, ...]:
        """Names of the query outputs this plan emits."""
        return tuple(e.artifact for e in self.emissions if e.kind == "query")

    def statistics(self) -> dict[str, int]:
        """Operation-count statistics for plan-shape assertions and benches."""
        return {
            "relation_levels": len(self.relation_levels),
            "carried_blocks": len(self.carried_blocks),
            "bindings": len(self.bindings),
            "gamma_nodes": len(self.gammas),
            "beta_nodes": len(self.betas),
            "subsums": len(self.subsums),
            "emissions": len(self.emissions),
            "emitted_slots": sum(len(e.slots) for e in self.emissions),
            "terms": sum(len(g.terms) for g in self.gammas)
            + sum(len(b.terms) for b in self.betas),
        }
