"""Optional C code-generation backend (the paper's native codegen).

The published LMFAO emits C++ compiled with g++; this module restores that
fidelity where a toolchain is available: each :class:`MultiOutputPlan` is
lowered to C99, compiled with ``gcc -O2 -shared`` and invoked through
ctypes. The generated C mirrors the Python backend statement for
statement — same trie loops, probes, γ/β locals, support guards and output
updates — so the two backends are differentially testable.

Runtime data layout (all buffers allocated by Python as numpy arrays and
passed as a single ``void**`` argument vector):

* trie levels — the CSR arrays of :class:`repro.data.trie.TrieIndex`;
* scalar incoming views — flattened entry arrays (key part columns + a
  row-major aggregate matrix); the generated prologue builds an
  open-addressing hash table (linear probing, splitmix64 mixing) in
  preallocated buffers;
* carried incoming views — entries sorted by local key; a hash table maps
  each distinct key to its contiguous entry range (sub-sums and keyed
  emissions iterate ranges);
* outputs — aligned emissions append into arrays sized by the emission
  level's run count; accumulating emissions use a preallocated
  open-addressing table. Table overflow makes the function return 1 and
  the wrapper retries with doubled capacities (results are a pure function
  of the inputs, so the retry is safe).

Supported plans: integer (categorical) trie levels, view keys and group-by
attributes. :func:`supports_plan` reports this; the engine falls back to
the Python backend per group otherwise (e.g. Rk-means' float dimensions).

**Concurrency.** Generated functions are reentrant: they touch only their
argument vector, every mutable buffer (view hash tables, output tables) is
allocated fresh per call by :meth:`CCompiledGroup._attempt`, and the shared
input arrays (trie levels, prefix sums, view entries) are ``const`` on the
C side and read-only numpy arrays on the Python side. Calls go through
``ctypes.CDLL``, which **releases the GIL** for the duration of the native
call — so the engine's domain-parallel mode (one call per trie partition,
see ``repro.core.runtime``) gets real multicore scaling on this backend.
"""

from __future__ import annotations

import ctypes
import hashlib
import io
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.lowering import (
    MODE_ALIGNED,
    MODE_SCALAR,
    base_emission_mode,
    lower_plan,
)
from repro.core.plan import (
    CountTerm,
    Emission,
    EmissionSlot,
    FactorTerm,
    MultiOutputPlan,
    RowSumTerm,
    SubSumTerm,
    Term,
    ViewTerm,
)
from repro.data.trie import TrieIndex
from repro.query.functions import Function
from repro.util.errors import PlanError

_PRELUDE = r"""
#include <stdint.h>

static inline uint64_t lmfao_mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}
"""


def gcc_available() -> bool:
    """True when a usable ``gcc`` is on PATH."""
    try:
        subprocess.run(
            ["gcc", "--version"], capture_output=True, check=True, timeout=10
        )
        return True
    except Exception:
        return False


def supports_plan(plan: MultiOutputPlan, attribute_kinds: Mapping[str, str]) -> bool:
    """Whether the C backend can execute ``plan``.

    ``attribute_kinds`` maps attribute name to ``"categorical"`` /
    ``"continuous"``; every trie level, view key and emission key must be
    integer (carried blocks are supported — their keys and carried
    attributes are group-by attributes, hence categorical by check below).
    """
    for level in plan.relation_levels:
        if attribute_kinds.get(level.attr) != "categorical":
            return False
    for emission in plan.emissions:
        for attr in emission.group_by:
            if attribute_kinds.get(attr) != "categorical":
                return False
    for block in plan.carried_blocks:
        for attr in block.key + block.carried:
            if attribute_kinds.get(attr) != "categorical":
                return False
    return True


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------


class _CWriter:
    def __init__(self) -> None:
        self._buf = io.StringIO()
        self._indent = 1

    def line(self, text: str = "") -> None:
        self._buf.write("    " * self._indent + text + "\n")

    def push(self) -> None:
        self._indent += 1

    def pop(self) -> None:
        self._indent -= 1

    def text(self) -> str:
        return self._buf.getvalue()


@dataclass
class _ArgSpec:
    """One slot of the void** argument vector, in order."""

    name: str  # C variable name
    ctype: str  # C pointer type
    role: tuple  # how the Python wrapper fills it


def _emission_mode(emission: Emission) -> str:
    """The shared lowering's *base* mode, with ``'aligned'`` rendered as
    this backend's ``'append'`` (aligned emissions append into
    run-count-sized arrays instead of materialising masked columns).
    Ordered (``'topk'``) emissions render as their base: the generated C
    accumulates the full group set, and the bounded-heap ranked cut runs
    over its output at result finishing (:mod:`repro.core.topk`)."""
    mode = base_emission_mode(emission)
    return "append" if mode == MODE_ALIGNED else mode


def generate_c_source(plan: MultiOutputPlan, symbol: str) -> tuple[str, list[_ArgSpec]]:
    """Lower one plan to a C function ``int32_t <symbol>(void** a)``.

    Returns the source and the ordered argument specs the wrapper must
    provide. A return value of 1 signals output-table overflow (retry with
    larger buffers).
    """
    num_rel = len(plan.relation_levels)
    lowered = lower_plan(plan)
    args: list[_ArgSpec] = []

    def arg(name: str, ctype: str, role: tuple) -> str:
        args.append(_ArgSpec(name=name, ctype=ctype, role=role))
        return name

    w = _CWriter()

    # ---------------- argument layout --------------------------------------
    arg("NROWS_P", "const int64_t*", ("nrows",))
    for k in range(num_rel):
        for part in ("vals", "rs", "re", "cs", "ce"):
            arg(f"L{k}_{part}", "const int64_t*", ("level", k, part))
    arg("NRUNS_P", "const int64_t*", ("run_counts",))  # per-level run counts
    farr_var: dict[tuple[int, str, str], str] = {}
    for i, key in enumerate(plan.level_functions):
        farr_var[key] = arg(f"F{i}", "const double*", ("farr", key))
    psum_var: dict[tuple, str] = {}
    for i, product in enumerate(plan.row_products):
        psum_var[product] = arg(f"P{i}", "const double*", ("psum", product))

    binding_index: dict[str, int] = {}
    binding_by_view = {b.view: b for b in plan.bindings}
    blocks = {cb.index: cb for cb in plan.carried_blocks}
    block_binding = {
        cb.index: binding_by_view[cb.view] for cb in plan.carried_blocks
    }
    for i, binding in enumerate(plan.bindings):
        binding_index[binding.view] = i
        kparts = len(binding.key)
        arg(f"B{i}_m", "const int64_t*", ("bind_count", binding.view))
        for p in range(kparts):
            arg(f"B{i}_ek{p}", "const int64_t*", ("bind_keys", binding.view, p))
        arg(f"B{i}_ev", "const double*", ("bind_vals", binding.view))
        arg(f"B{i}_mask_p", "const int64_t*", ("bind_mask", binding.view))
        arg(f"B{i}_occ", "int8_t*", ("bind_occ", binding.view))
        for p in range(kparts):
            arg(f"B{i}_k{p}", "int64_t*", ("bind_tk", binding.view, p))
        arg(f"B{i}_lo", "int64_t*", ("bind_lo", binding.view))
        arg(f"B{i}_hi", "int64_t*", ("bind_hi", binding.view))
        if binding.is_carried:
            for p in range(len(binding.carried)):
                arg(
                    f"CB{binding.block}_c{p}",
                    "const int64_t*",
                    ("bind_carried", binding.view, p),
                )

    out_specs: list[tuple[Emission, str]] = []
    for i, emission in enumerate(plan.emissions):
        mode = _emission_mode(emission)
        out_specs.append((emission, mode))
        kparts = len(emission.group_by)
        if mode == "scalar":
            arg(f"O{i}_v", "double*", ("out_scalar", i))
        elif mode == "append":
            for p in range(kparts):
                arg(f"O{i}_k{p}", "int64_t*", ("out_keys", i, p))
            arg(f"O{i}_v", "double*", ("out_vals", i))
            arg(f"O{i}_n", "int64_t*", ("out_count", i))
        else:  # hash accumulate
            arg(f"O{i}_mask_p", "const int64_t*", ("out_mask", i))
            arg(f"O{i}_occ", "int8_t*", ("out_occ", i))
            for p in range(kparts):
                arg(f"O{i}_k{p}", "int64_t*", ("out_keys", i, p))
            arg(f"O{i}_v", "double*", ("out_vals", i))
            arg(f"O{i}_n", "int64_t*", ("out_count", i))

    # ---------------- prologue: build view hash tables ----------------------
    w.line("const int64_t NROWS = NROWS_P[0];")
    w.line("(void)NROWS; (void)NRUNS_P;")
    for i, binding in enumerate(plan.bindings):
        kparts = len(binding.key)
        w.line(f"const int64_t B{i}_mask = B{i}_mask_p[0];")
        if not binding.is_carried:
            # one table entry per view entry: key -> row range [e, e+1)
            w.line(f"for (int64_t e = 0; e < B{i}_m[0]; e++) {{")
            w.push()
            parts = " ^ ".join(
                f"lmfao_mix((uint64_t)B{i}_ek{p}[e] + {p})" for p in range(kparts)
            )
            w.line(f"uint64_t h = ({parts}) & (uint64_t)B{i}_mask;")
            w.line(f"while (B{i}_occ[h]) h = (h + 1) & (uint64_t)B{i}_mask;")
            w.line(f"B{i}_occ[h] = 1;")
            for p in range(kparts):
                w.line(f"B{i}_k{p}[h] = B{i}_ek{p}[e];")
            w.line(f"B{i}_lo[h] = e; B{i}_hi[h] = e + 1;")
            w.pop()
            w.line("}")
        else:
            # entries arrive sorted by key: hash distinct keys to ranges
            w.line(f"for (int64_t e = 0; e < B{i}_m[0]; e++) {{")
            w.push()
            same = " && ".join(
                f"B{i}_ek{p}[e] == B{i}_ek{p}[e-1]" for p in range(kparts)
            )
            w.line(f"if (e > 0 && {same}) continue;")
            w.line(f"int64_t hi = e + 1;")
            cont = " && ".join(
                f"B{i}_ek{p}[hi] == B{i}_ek{p}[e]" for p in range(kparts)
            )
            w.line(f"while (hi < B{i}_m[0] && {cont}) hi++;")
            parts = " ^ ".join(
                f"lmfao_mix((uint64_t)B{i}_ek{p}[e] + {p})" for p in range(kparts)
            )
            w.line(f"uint64_t h = ({parts}) & (uint64_t)B{i}_mask;")
            w.line(f"while (B{i}_occ[h]) h = (h + 1) & (uint64_t)B{i}_mask;")
            w.line(f"B{i}_occ[h] = 1;")
            for p in range(kparts):
                w.line(f"B{i}_k{p}[h] = B{i}_ek{p}[e];")
            w.line(f"B{i}_lo[h] = e; B{i}_hi[h] = hi;")
            w.pop()
            w.line("}")

    # ---------------- schedules (the shared lowering) -----------------------
    # Per-level probe/γ/β/emission placement comes from repro.core.lowering
    # — the same LoweredPlan the Python generator and the NumPy backend
    # consume. Term hoisting stays local (C consts, always on).
    term_vars: dict[tuple, tuple[str, str]] = {}
    hoisted_at: dict[int, list[tuple[str, str]]] = {}
    counter = [0]

    def term_expr(term: Term) -> str:
        if isinstance(term, ViewTerm):
            i = binding_index[term.view]
            width = binding_by_view[term.view].num_aggregates
            return f"B{i}_ev[sl_B{i} * {width} + {term.agg_index}]"
        if isinstance(term, SubSumTerm):
            return f"ss_{term.block}_{term.agg_index}"
        if isinstance(term, FactorTerm):
            base = f"{farr_var[(term.level, term.attr, term.func_name)]}[r{term.level}]"
        elif isinstance(term, CountTerm):
            if term.level < 0:
                base = "(double)NROWS"
            else:
                base = (
                    f"(double)(L{term.level}_re[r{term.level}] - "
                    f"L{term.level}_rs[r{term.level}])"
                )
        elif isinstance(term, RowSumTerm):
            pv = psum_var[term.product]
            if term.level < 0:
                base = f"{pv}[NROWS]"
            else:
                base = (
                    f"({pv}[L{term.level}_re[r{term.level}]] - "
                    f"{pv}[L{term.level}_rs[r{term.level}]])"
                )
        else:  # pragma: no cover
            raise PlanError(f"unknown term {term!r}")
        cached = term_vars.get(term.sig)
        if cached is None:
            var = f"t{counter[0]}"
            counter[0] += 1
            term_vars[term.sig] = (var, base)
            hoisted_at.setdefault(term.level, []).append((var, base))
            cached = (var, base)
        return cached[0]

    gamma_exprs = {n.id: [term_expr(t) for t in n.terms] for n in plan.gammas}
    beta_exprs = {n.id: [term_expr(t) for t in n.terms] for n in plan.betas}

    def slot_value(slot: EmissionSlot) -> str:
        pieces = []
        if slot.gamma is not None:
            pieces.append(f"g{slot.gamma}")
        if slot.beta is not None:
            pieces.append(f"b{slot.beta}")
        for cf in slot.carried_factors:
            width = block_binding[cf.block].num_aggregates
            i = binding_index[block_binding[cf.block].view]
            pieces.append(f"B{i}_ev[e{cf.block} * {width} + {cf.agg_index}]")
        return " * ".join(pieces) if pieces else "1.0"

    def emit_body(level: int) -> None:
        for var, expr in hoisted_at.get(level, ()):
            w.line(f"const double {var} = {expr};")
        for node in lowered.level(level).gammas:
            exprs = list(gamma_exprs[node.id])
            if node.parent is not None:
                exprs = [f"g{node.parent}"] + exprs
            w.line(f"const double g{node.id} = {' * '.join(exprs)};")
        for node in lowered.level(level).beta_inits:
            w.line(f"double b{node.id} = 0.0;")

    def emit_tail(level: int) -> None:
        schedule = lowered.level(level)
        for node in schedule.beta_accums:
            exprs = list(beta_exprs[node.id])
            if node.child is not None:
                exprs.append(f"b{node.child}")
            w.line(f"b{node.id} += {' * '.join(exprs)};")
        for le in schedule.aligned_emissions:
            _emit_output(w, plan, blocks, le.index, le.emission, le.emission.slots,
                         slot_value)
        for group in schedule.slot_groups:
            _emit_output(w, plan, blocks, group.emission_index, group.emission,
                         group.slots, slot_value)

    def emit_probes(level: int) -> None:
        for binding in lowered.level(level).probes:
            i = binding_index[binding.view]
            kparts = len(binding.key)
            parts = " ^ ".join(
                f"lmfao_mix((uint64_t)v{binding.key_levels[p]} + {p})"
                for p in range(kparts)
            )
            w.line(f"int64_t sl_B{i} = -1, hi_B{i} = -1;")
            w.line("{")
            w.push()
            w.line(f"uint64_t h = ({parts}) & (uint64_t)B{i}_mask;")
            w.line(f"while (B{i}_occ[h]) {{")
            w.push()
            match = " && ".join(
                f"B{i}_k{p}[h] == v{binding.key_levels[p]}" for p in range(kparts)
            )
            w.line(
                f"if ({match}) {{ sl_B{i} = B{i}_lo[h]; hi_B{i} = B{i}_hi[h]; break; }}"
            )
            w.line(f"h = (h + 1) & (uint64_t)B{i}_mask;")
            w.pop()
            w.line("}")
            w.pop()
            w.line("}")
            w.line(f"if (sl_B{i} < 0) continue;")
            if binding.is_carried:
                subs = lowered.block_subsums(binding.block)
                if subs:
                    for term in subs:
                        w.line(f"double ss_{term.block}_{term.agg_index} = 0.0;")
                    width = binding.num_aggregates
                    w.line(
                        f"for (int64_t e = sl_B{i}; e < hi_B{i}; e++) {{"
                    )
                    w.push()
                    for term in subs:
                        w.line(
                            f"ss_{term.block}_{term.agg_index} += "
                            f"B{i}_ev[e * {width} + {term.agg_index}];"
                        )
                    w.pop()
                    w.line("}")
            else:
                w.line(f"(void)hi_B{i};")

    def emit_loops(level: int) -> None:
        if level >= num_rel:
            return
        if level == 0:
            w.line("for (int64_t r0 = 0; r0 < NRUNS_P[0]; r0++) {")
        else:
            w.line(
                f"for (int64_t r{level} = L{level-1}_cs[r{level-1}]; "
                f"r{level} < L{level-1}_ce[r{level-1}]; r{level}++) {{"
            )
        w.push()
        w.line(f"const int64_t v{level} = L{level}_vals[r{level}]; (void)v{level};")
        emit_probes(level)
        emit_body(level)
        emit_loops(level + 1)
        emit_tail(level)
        w.pop()
        w.line("}")

    emit_body(-1)
    emit_loops(0)
    emit_tail(-1)
    for le in lowered.scalar_emissions:
        for j, slot in enumerate(le.emission.slots):
            w.line(f"O{le.index}_v[{j}] = {slot_value(slot)};")
    w.line("return 0;")

    unpack = "\n".join(
        f"    {spec.ctype} {spec.name} = ({spec.ctype})a[{i}];"
        for i, spec in enumerate(args)
    )
    source = f"int32_t {symbol}(void** a) {{\n{unpack}\n" + w.text() + "}\n"
    return source, args


def _emit_output(w, plan, blocks, index, emission, slots, slot_value) -> None:
    first = slots[0]
    width = emission.width
    guarded = first.support is not None
    if guarded:
        w.line(f"if (b{first.support} > 0) {{")
        w.push()

    # nested entry loops over keyed carried blocks
    binding_of_block = {cb.index: cb for cb in plan.carried_blocks}
    for block in first.key_blocks:
        i = next(
            j for j, b in enumerate(plan.bindings)
            if b.view == binding_of_block[block].view
        )
        w.line(f"for (int64_t e{block} = sl_B{i}; e{block} < hi_B{i}; e{block}++) {{")
        w.push()

    def key_expr(part) -> str:
        if part.kind == "rel":
            return f"v{part.level}"
        return f"CB{part.level}_c{part.pos}[e{part.level}]"

    key_exprs = [key_expr(p) for p in first.key_parts]
    if emission.aligned:
        w.line("{")
        w.push()
        w.line(f"const int64_t n = O{index}_n[0];")
        for p, expr in enumerate(key_exprs):
            w.line(f"O{index}_k{p}[n] = {expr};")
        for slot in slots:
            w.line(f"O{index}_v[n * {width} + {slot.slot}] = {slot_value(slot)};")
        w.line(f"O{index}_n[0] = n + 1;")
        w.pop()
        w.line("}")
    else:
        w.line("{")
        w.push()
        parts = " ^ ".join(
            f"lmfao_mix((uint64_t)({expr}) + {p})" for p, expr in enumerate(key_exprs)
        )
        w.line(f"const int64_t mask = O{index}_mask_p[0];")
        w.line(f"uint64_t h = ({parts}) & (uint64_t)mask;")
        w.line("while (1) {")
        w.push()
        w.line(f"if (!O{index}_occ[h]) {{")
        w.push()
        w.line(f"if (2 * (O{index}_n[0] + 1) > mask + 1) return 1;")
        w.line(f"O{index}_occ[h] = 1;")
        for p, expr in enumerate(key_exprs):
            w.line(f"O{index}_k{p}[h] = {expr};")
        w.line(f"for (int j = 0; j < {width}; j++) O{index}_v[h * {width} + j] = 0.0;")
        w.line(f"O{index}_n[0]++;")
        w.line("break;")
        w.pop()
        w.line("}")
        match = " && ".join(
            f"O{index}_k{p}[h] == ({expr})" for p, expr in enumerate(key_exprs)
        )
        w.line(f"if ({match}) break;")
        w.line("h = (h + 1) & (uint64_t)mask;")
        w.pop()
        w.line("}")
        for slot in slots:
            w.line(f"O{index}_v[h * {width} + {slot.slot}] += {slot_value(slot)};")
        w.pop()
        w.line("}")

    for _block in first.key_blocks:
        w.pop()
        w.line("}")
    if guarded:
        w.pop()
        w.line("}")


# ---------------------------------------------------------------------------
# compilation and execution
# ---------------------------------------------------------------------------


def _next_pow2(n: int) -> int:
    size = 8
    while size < n:
        size <<= 1
    return size


class CCompiledGroup:
    """One plan compiled to native code, with its marshaling logic."""

    def __init__(self, plan: MultiOutputPlan, symbol: str, args: list[_ArgSpec],
                 source: str) -> None:
        self.plan = plan
        self.symbol = symbol
        self.args = args
        self.source = source
        self.fn = None  # bound by CBackendLibrary.load

    # ------------------------------------------------------------- marshaling
    def prepare_bindings(self, view_data, view_group_by) -> dict:
        """Entry arrays for every binding, marshalled once per group.

        Partitioned execution shares the returned dict (read-only numpy
        arrays — the generated C takes them as ``const``) across all
        concurrent per-partition calls; only the hash-table scratch buffers
        are per-call, which keeps the generated functions reentrant.
        """
        return {
            binding.view: self._binding_entries(binding, view_data, view_group_by)
            for binding in self.plan.bindings
        }

    def _binding_entries(self, binding, view_data, view_group_by):
        """Entry arrays for one binding: key part cols, carried cols, aggs.

        Carried bindings are sorted by their local key so the generated
        prologue can hash distinct keys to contiguous ranges.
        """
        data = view_data[binding.view]
        group_by = view_group_by[binding.view]
        m = len(data)
        key_positions = [group_by.index(a) for a in binding.key]
        carried_positions = [group_by.index(a) for a in binding.carried]
        vals = np.asarray(list(data.values()), dtype=np.float64).reshape(
            m, binding.num_aggregates
        )
        if len(group_by) == 1:
            keys = np.fromiter(data.keys(), dtype=np.int64, count=m).reshape(m, 1)
        else:
            keys = np.asarray(list(data.keys()), dtype=np.int64).reshape(
                m, len(group_by)
            )
        key_cols = [np.ascontiguousarray(keys[:, p]) for p in key_positions]
        carried_cols = [np.ascontiguousarray(keys[:, p]) for p in carried_positions]
        if binding.is_carried and m > 1:
            order = np.lexsort(tuple(reversed(key_cols)))
            key_cols = [c[order] for c in key_cols]
            carried_cols = [c[order] for c in carried_cols]
            vals = vals[order]
        return key_cols, carried_cols, np.ascontiguousarray(vals)

    def execute(
        self,
        trie: TrieIndex,
        view_data: Mapping[str, dict],
        view_group_by: Mapping[str, tuple[str, ...]],
        functions: Mapping[str, Function],
        bind_entries: dict | None = None,
    ) -> dict[str, dict]:
        if self.fn is None:
            raise PlanError("C group not loaded")
        plan = self.plan

        if bind_entries is None:
            bind_entries = self.prepare_bindings(view_data, view_group_by)
        run_counts = np.array(
            [trie.level(k).num_runs for k in range(len(plan.relation_levels))]
            or [0],
            dtype=np.int64,
        )

        capacity_boost = 1
        for _attempt in range(24):
            outputs = self._attempt(
                trie, plan, bind_entries, view_data, functions, run_counts,
                capacity_boost,
            )
            if outputs is not None:
                return outputs
            capacity_boost *= 4
        raise PlanError(f"{plan.group_name}: C output tables kept overflowing")

    def _attempt(self, trie, plan, bind_entries, view_data, functions, run_counts,
                 capacity_boost):
        holders: list[np.ndarray] = []
        argv = (ctypes.c_void_p * len(self.args))()

        def put(i: int, array: np.ndarray) -> None:
            holders.append(array)
            argv[i] = array.ctypes.data

        def bind_capacity(view: str) -> int:
            return _next_pow2(2 * max(1, len(view_data[view])))

        out_buffers: dict[int, dict] = {}

        def out_capacity(index: int) -> int:
            emission = plan.emissions[index]
            mode = _emission_mode(emission)
            if mode == "scalar":
                return 1
            host = max(s.level for s in emission.slots)
            runs = trie.level(host).num_runs if host >= 0 else 1
            if mode == "append":
                return max(1, runs)
            # The host level's run count bounds the distinct keys but wildly
            # overshoots when the group-by domain is small (e.g. 256 keys
            # under millions of runs); cap the initial table and let the
            # overflow-retry loop grow it for genuinely large outputs.
            return _next_pow2(4 * max(1, min(runs, 65536)) * capacity_boost)

        for i, spec in enumerate(self.args):
            role = spec.role
            kind = role[0]
            if kind == "nrows":
                put(i, np.array([trie.num_rows], dtype=np.int64))
            elif kind == "run_counts":
                put(i, run_counts)
            elif kind == "level":
                _, k, part = role
                level = trie.level(k)
                array = {
                    "vals": level.values,
                    "rs": level.row_start,
                    "re": level.row_end,
                    "cs": level.child_start,
                    "ce": level.child_end,
                }[part]
                put(i, np.ascontiguousarray(array, dtype=np.int64))
            elif kind == "farr":
                # bound-function cache signature, like the other backends:
                # PlanBinding may re-bind the slot name's constant per
                # request while the trie (and its caches) is shared
                _, (k, attr, func_name) = role
                func = functions[func_name]
                put(i, trie.level_function_array(
                    k, f"{func.name}({attr})", func
                ))
            elif kind == "psum":
                _, product = role
                from repro.core.runtime import _product_column, _product_signature

                put(
                    i,
                    trie.prefix_sum(
                        _product_signature(product, functions),
                        _product_column(product, functions),
                    ),
                )
            elif kind == "bind_count":
                put(i, np.array([len(view_data[role[1]])], dtype=np.int64))
            elif kind == "bind_keys":
                put(i, bind_entries[role[1]][0][role[2]])
            elif kind == "bind_carried":
                put(i, bind_entries[role[1]][1][role[2]])
            elif kind == "bind_vals":
                put(i, bind_entries[role[1]][2])
            elif kind == "bind_mask":
                put(i, np.array([bind_capacity(role[1]) - 1], dtype=np.int64))
            elif kind == "bind_occ":
                put(i, np.zeros(bind_capacity(role[1]), dtype=np.int8))
            elif kind in {"bind_tk", "bind_lo", "bind_hi"}:
                # written by the prologue before any read (occ gates reads)
                put(i, np.empty(bind_capacity(role[1]), dtype=np.int64))
            elif kind in {"out_scalar", "out_keys", "out_vals", "out_count",
                          "out_mask", "out_occ"}:
                index = role[1]
                buffers = out_buffers.setdefault(index, {})
                emission = plan.emissions[index]
                width = emission.width
                capacity = out_capacity(index)
                # keys/vals need no zeroing: the generated code writes every
                # slot it later reads (occupancy and counts gate the reads)
                if kind == "out_scalar":
                    array = buffers.setdefault(
                        "vals", np.empty(width, dtype=np.float64)
                    )
                elif kind == "out_keys":
                    array = buffers.setdefault(
                        ("keys", role[2]), np.empty(capacity, dtype=np.int64)
                    )
                elif kind == "out_vals":
                    array = buffers.setdefault(
                        "vals", np.empty(capacity * width, dtype=np.float64)
                    )
                elif kind == "out_count":
                    array = buffers.setdefault("count", np.zeros(1, dtype=np.int64))
                elif kind == "out_mask":
                    array = buffers.setdefault(
                        "mask", np.array([capacity - 1], dtype=np.int64)
                    )
                else:  # out_occ
                    array = buffers.setdefault("occ", np.zeros(capacity, dtype=np.int8))
                put(i, array)
            else:  # pragma: no cover
                raise PlanError(f"unknown argument role {role!r}")

        status = self.fn(argv)
        if status != 0:
            return None

        outputs: dict[str, dict] = {}
        for index, emission in enumerate(plan.emissions):
            mode = _emission_mode(emission)
            buffers = out_buffers[index]
            width = emission.width
            if mode == "scalar":
                outputs[emission.artifact] = {(): list(buffers["vals"])}
                continue
            kparts = len(emission.group_by)
            if mode == "append":
                n = int(buffers["count"][0])
                vals = buffers["vals"][: n * width].reshape(n, width)
                keys = [buffers[("keys", p)][:n] for p in range(kparts)]
            else:
                occ = buffers["occ"].view(bool)
                vals = buffers["vals"].reshape(-1, width)[occ]
                keys = [buffers[("keys", p)][occ] for p in range(kparts)]
            if kparts == 1:
                result = dict(zip(keys[0].tolist(), vals.tolist()))
            else:
                key_rows = list(zip(*(k.tolist() for k in keys)))
                result = dict(zip(key_rows, vals.tolist()))
            outputs[emission.artifact] = result
        return outputs


class CBackendLibrary:
    """Compiles a set of plans into one shared object and binds symbols."""

    def __init__(self) -> None:
        self._lib = None
        self._dir: tempfile.TemporaryDirectory | None = None

    def compile(self, groups: list[CCompiledGroup]) -> None:
        """Compile one object file per group in parallel, then link.

        Task-parallel compilation mirrors how the published system hides
        its g++ latency; the biggest group's translation unit still
        dominates, exactly the trade-off the paper reports for compiled
        batches.
        """
        digest = hashlib.sha1(
            "".join(g.source for g in groups).encode()
        ).hexdigest()[:12]
        self._dir = tempfile.TemporaryDirectory(prefix="lmfao_c_")
        base = Path(self._dir.name)
        processes = []
        objects = []
        for i, group in enumerate(groups):
            c_path = base / f"g{i}.c"
            o_path = base / f"g{i}.o"
            c_path.write_text(_PRELUDE + group.source)
            objects.append(str(o_path))
            processes.append(
                subprocess.Popen(
                    ["gcc", "-O1", "-fPIC", "-c", "-o", str(o_path), str(c_path)],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )
        for i, process in enumerate(processes):
            _, stderr = process.communicate()
            if process.returncode != 0:
                raise PlanError(f"gcc failed on {groups[i].symbol}:\n{stderr[:4000]}")
        so_path = base / f"groups_{digest}.so"
        result = subprocess.run(
            ["gcc", "-shared", "-o", str(so_path)] + objects,
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            raise PlanError(f"gcc link failed:\n{result.stderr[:4000]}")
        self._lib = ctypes.CDLL(str(so_path))
        for group in groups:
            fn = getattr(self._lib, group.symbol)
            fn.argtypes = [ctypes.POINTER(ctypes.c_void_p)]
            fn.restype = ctypes.c_int32
            group.fn = fn


def compile_c_groups(
    plans: Sequence[MultiOutputPlan], attribute_kinds: Mapping[str, str]
) -> tuple[list, "CBackendLibrary | None"]:
    """Lower supported plans to C; unsupported ones stay on Python.

    Returns ``(native_groups, library)`` in the
    :attr:`~repro.core.engine.CompiledBatch.native_groups` layout. Shared
    by the engine's compile step and the per-process warm-up of the
    multiprocess executor (:mod:`repro.core.mpexec`), which recompiles the
    same plans once per worker process — compiled code cannot cross a
    process boundary, plans can.
    """
    if not gcc_available():
        raise PlanError("backend='c' requires gcc on PATH")
    native_groups: list = [None] * len(plans)
    native = []
    for i, plan in enumerate(plans):
        if not supports_plan(plan, attribute_kinds):
            continue
        symbol = f"lmfao_run_g{i}"
        source, args = generate_c_source(plan, symbol)
        group = CCompiledGroup(plan=plan, symbol=symbol, args=args, source=source)
        native_groups[i] = group
        native.append(group)
    library = None
    if native:
        library = CBackendLibrary()
        library.compile(native)
    return native_groups, library
