"""Runtime preparation shared by the code generator and the interpreter.

Given a :class:`MultiOutputPlan`, a :class:`TrieIndex` over the group's
node relation and the already-computed incoming view contents, this module
builds the *environment* the plan executes against:

* trie level arrays as Python lists;
* per-level factor value arrays (``f`` applied to distinct level values);
* prefix-sum registers for row-factor products;
* incoming view bindings reshaped to the consumer's key layout
  (scalar views: ``key → [aggs]``; carried views:
  ``key → [(carried_values, [aggs]), ...]``).

View contents are dictionaries ``group_by_key → list_of_aggregate_values``
where the key is a scalar for single-attribute group-bys and a tuple (in the
view's canonical group-by order) otherwise.

This module also hosts the **domain-parallel** execution mode: a group may
run once per level-0 trie partition (:func:`partition_tries`) with its
partial outputs merged by :func:`merge_partial_outputs` — per-key summation
for accumulating emissions, disjoint concatenation for aligned ones.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core import costmodel
from repro.core.plan import MultiOutputPlan, ViewBinding
from repro.data.relation import Relation
from repro.data.trie import TrieIndex
from repro.query.functions import Function
from repro.util.errors import PlanError

ViewData = dict


def debug_checks_enabled() -> bool:
    """Whether ``LMFAO_DEBUG`` asks for (expensive) invariant assertions.

    Consumers of columnar view state call
    :meth:`ArrayViewData.check_consistent` under this flag before trusting
    the arrays, so a dict/array desync fails loudly at the point of use
    instead of silently corrupting downstream aggregates.
    """
    return bool(os.environ.get("LMFAO_DEBUG"))


class ArrayViewData(dict):
    """View contents ``key → [aggregates]`` plus optional columnar arrays.

    The NumPy backend emits these: the dict contents are what every
    consumer sees (compatible with the Python backend's plain dicts), and
    the parallel ``key_columns`` / ``value_matrix`` arrays let columnar
    consumers — the NumPy backend's binding preparation and the aligned
    partition merge — skip per-entry dict iteration. ``key_columns`` are in
    the producer's canonical group-by order.

    Every mutating dict operation (``__setitem__``, ``update``, ``pop``,
    …) **auto-drops** the columnar arrays, so merge paths that grow or
    rewrite entries can never serve stale arrays to a columnar consumer.
    The one mutation the class cannot see is writing *through* a stored
    aggregate list (``data[key][slot] += x``); paths that do that — the
    incremental maintainer's numeric merge — must call
    :meth:`drop_columnar` themselves, and :meth:`check_consistent` (run
    by consumers under ``LMFAO_DEBUG``) catches any path that forgot.
    """

    __slots__ = ("key_columns", "value_matrix")

    def __init__(self, *args, **kwargs) -> None:
        # dict.__init__ bulk-inserts without dispatching to __setitem__,
        # so construction does not count as a (drop-triggering) mutation.
        super().__init__(*args, **kwargs)
        self.key_columns: list[np.ndarray] | None = None
        self.value_matrix: np.ndarray | None = None

    @property
    def has_columns(self) -> bool:
        return self.value_matrix is not None

    def drop_columnar(self) -> None:
        """Forget the columnar arrays (keep the dict contents)."""
        self.key_columns = None
        self.value_matrix = None

    # -- mutating dict operations invalidate the columnar mirror ------------
    def __setitem__(self, key, value) -> None:
        self.drop_columnar()
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        self.drop_columnar()
        super().__delitem__(key)

    def update(self, *args, **kwargs) -> None:
        self.drop_columnar()
        super().update(*args, **kwargs)

    def __ior__(self, other):
        # dict.__ior__ bulk-inserts at the C level without dispatching to
        # update/__setitem__, so it needs its own interception.
        self.drop_columnar()
        return super().__ior__(other)

    def setdefault(self, key, default=None):
        if key not in self:
            self.drop_columnar()
        return super().setdefault(key, default)

    def pop(self, *args):
        self.drop_columnar()
        return super().pop(*args)

    def popitem(self):
        self.drop_columnar()
        return super().popitem()

    def clear(self) -> None:
        self.drop_columnar()
        super().clear()

    def check_consistent(self) -> None:
        """Assert the columnar arrays mirror the dict contents exactly.

        No-op without columns. O(n) — called by columnar consumers under
        ``LMFAO_DEBUG`` (see :func:`debug_checks_enabled`) and by tests.
        """
        if not self.has_columns:
            return
        if len(self.key_columns) == 1:
            keys = self.key_columns[0].tolist()
        else:
            keys = list(zip(*(column.tolist() for column in self.key_columns)))
        mirror = dict(zip(keys, np.asarray(self.value_matrix).tolist()))
        assert mirror == dict(self), (
            "ArrayViewData columnar state desynchronised from dict contents "
            "(a mutation bypassed drop_columnar)"
        )

    @classmethod
    def from_arrays(
        cls, key_columns: list[np.ndarray], value_matrix: np.ndarray
    ) -> "ArrayViewData":
        """Materialise dict contents from parallel key/value arrays."""
        if len(key_columns) == 1:
            keys = key_columns[0].tolist()
        else:
            keys = list(zip(*(column.tolist() for column in key_columns)))
        data = cls(zip(keys, value_matrix.tolist()))
        data.key_columns = list(key_columns)
        data.value_matrix = value_matrix
        return data


def _product_signature(
    product: tuple[tuple[str, str], ...], functions: Mapping[str, Function]
) -> str:
    """Trie-cache signature of a row-factor product, by *bound* function.

    Plans reference functions by slot name; the functions mapping resolves
    each slot to the runtime :class:`Function` actually executing. The
    cache signature must use the **resolved** function's name: under a
    plan-cache hit with re-bound predicate constants (see
    :class:`repro.core.engine.PlanBinding`), the slot name carries the
    *compiled* batch's constant while the bound function carries the
    request's — and trie-attached caches are shared across requests, so
    keying on the slot name would serve one request's indicator arrays to
    another. Function names are unique per behaviour (the registry
    contract), which makes the resolved name a sound cache key.
    """
    return "*".join(f"{functions[func].name}({attr})" for attr, func in product)


def _product_column(
    product: tuple[tuple[str, str], ...], functions: Mapping[str, Function]
) -> Callable[[Relation], np.ndarray]:
    def compute(relation: Relation) -> np.ndarray:
        result: np.ndarray | None = None
        for attr, func_name in product:
            col = functions[func_name](relation.column(attr))
            result = col if result is None else result * col
        assert result is not None
        return result

    return compute


def reshape_binding(binding: ViewBinding, view_group_by: tuple[str, ...], data: ViewData) -> dict:
    """Re-key view contents for one consumer binding.

    ``data`` is keyed by the producer's canonical group-by. Scalar bindings
    whose key order equals the producer's group-by are returned as-is;
    carried bindings are grouped into entry lists per local key.
    """
    if not binding.is_carried:
        if binding.key == view_group_by:
            return data
        # Same attribute set, different order (cannot happen while both are
        # name-sorted, but stay correct if conventions diverge).
        positions = [view_group_by.index(a) for a in binding.key]
        reshaped: dict = {}
        for key, aggs in data.items():
            full = key if isinstance(key, tuple) else (key,)
            new_key = tuple(full[p] for p in positions)
            reshaped[new_key[0] if len(new_key) == 1 else new_key] = aggs
        return reshaped

    key_positions = [view_group_by.index(a) for a in binding.key]
    carried_positions = [view_group_by.index(a) for a in binding.carried]
    grouped: dict = {}
    for key, aggs in data.items():
        full = key if isinstance(key, tuple) else (key,)
        local = tuple(full[p] for p in key_positions)
        local_key = local[0] if len(local) == 1 else local
        carried_vals = tuple(full[p] for p in carried_positions)
        grouped.setdefault(local_key, []).append((carried_vals, aggs))
    return grouped


def prepare_python_bindings(
    plan: MultiOutputPlan,
    view_data: Mapping[str, ViewData],
    view_group_by: Mapping[str, tuple[str, ...]],
) -> dict[str, dict]:
    """Reshape all incoming-view bindings of one plan (consumer keying).

    Binding contents depend only on the incoming view data, never on the
    trie, so partitioned execution prepares them **once** per group and
    shares the (read-only) result across all partitions instead of
    re-reshaping per partition.
    """
    bindings: dict[str, dict] = {}
    for binding in plan.bindings:
        data = view_data.get(binding.view)
        if data is None:
            raise PlanError(f"missing incoming view data for {binding.view}")
        bindings[binding.view] = reshape_binding(
            binding, view_group_by[binding.view], data
        )
    return bindings


class GroupEnvironment:
    """The fully prepared inputs for executing one group plan."""

    def __init__(
        self,
        plan: MultiOutputPlan,
        trie: TrieIndex,
        view_data: Mapping[str, ViewData],
        view_group_by: Mapping[str, tuple[str, ...]],
        functions: Mapping[str, Function],
        bindings: dict[str, dict] | None = None,
    ) -> None:
        if trie.order != plan.order:
            raise PlanError(
                f"trie order {trie.order} does not match plan order {plan.order}"
            )
        self.plan = plan
        self.nrows = trie.num_rows
        self.levels = [trie.level_lists(k) for k in range(len(plan.relation_levels))]
        self.farrs: dict[tuple[int, str, str], list] = {}
        for level, attr, func_name in plan.level_functions:
            func = functions.get(func_name)
            if func is None:
                raise PlanError(f"no runtime function registered for {func_name!r}")
            # cache signature by the *bound* function's name, not the plan
            # slot name — see _product_signature for why (constant rebinding)
            self.farrs[(level, attr, func_name)] = trie.level_function_values(
                level, f"{func.name}({attr})", func
            )
        self.psums: dict[tuple, list] = {}
        for product in plan.row_products:
            self.psums[product] = trie.prefix_sum_list(
                _product_signature(product, functions),
                _product_column(product, functions),
            )
        if bindings is None:
            bindings = prepare_python_bindings(plan, view_data, view_group_by)
        self.bindings: dict[str, dict] = bindings


def local_predicates(relation_attrs, predicates) -> tuple:
    """The pushed-down predicates applicable to one relation."""
    return tuple(p for p in predicates if p.attribute in relation_attrs)


def apply_predicates(relation: Relation, predicates) -> Relation:
    """Physically filter a relation by a predicate conjunction."""
    if not predicates:
        return relation
    mask = np.ones(relation.num_rows, dtype=bool)
    for pred in predicates:
        mask &= pred.evaluate(relation.column(pred.attribute))
    return relation.filter(mask)


def trie_cache_key(db, node: str, order: tuple[str, ...], shared) -> tuple:
    """The canonical trie-cache key: ``(node, order, local pred signatures)``.

    Defined once and shared by every consumer — the engine's cross-run
    cache, the incremental maintainer's per-handle cache (which seeds from
    the engine's), and the process executor's shared-memory segment store
    (which keys exported tries by ``(snapshot version, this key,
    partitions)``).
    """
    local = local_predicates(db.schema.relation(node).attribute_names, shared)
    return (node, order, tuple(p.signature for p in local))


def node_trie(db, node: str, order: tuple[str, ...], shared, cache: dict) -> TrieIndex:
    """The cached trie index for one node under pushed-down predicates.

    The cache key is :func:`trie_cache_key` — defined there, once, for
    every consumer.
    """
    local = local_predicates(db.schema.relation(node).attribute_names, shared)
    key = trie_cache_key(db, node, order, shared)
    trie = cache.get(key)
    if trie is None:
        trie = TrieIndex(apply_predicates(db.relation(node), local), order)
        cache[key] = trie
    return trie


def execute_plan(
    code,
    native,
    plan: MultiOutputPlan,
    trie: TrieIndex,
    view_data: Mapping[str, ViewData],
    view_group_by: Mapping[str, tuple[str, ...]],
    functions: Mapping[str, Function],
    prepared_bindings: dict | None = None,
) -> dict[str, dict]:
    """Run one compiled group over a trie and incoming view contents.

    ``native`` is the group's C implementation (or None for the Python
    backend); ``code`` the generated-Python :class:`CompiledGroup`. Both the
    batch executor and the incremental maintainer call this — the
    maintainer additionally passes *delta* tries (an index over just the
    inserted tuples) to obtain per-view deltas from the very same compiled
    code, since every emitted slot is a sum over the node's rows and
    therefore linear in the row multiset.

    ``prepared_bindings`` (from :func:`prepare_bindings`) lets partitioned
    execution marshal the incoming views once and share them, read-only,
    across concurrent per-partition calls.
    """
    if native is not None:
        return native.execute(
            trie, view_data, view_group_by, functions, bind_entries=prepared_bindings
        )
    env = GroupEnvironment(
        plan=plan,
        trie=trie,
        view_data=view_data,
        view_group_by=view_group_by,
        functions=functions,
        bindings=prepared_bindings,
    )
    return code(env)


# ------------------------------------------------------------ domain parallelism


def prepare_bindings(
    native,
    plan: MultiOutputPlan,
    view_data: Mapping[str, ViewData],
    view_group_by: Mapping[str, tuple[str, ...]],
):
    """Marshal one group's incoming-view bindings for its backend, once.

    The returned object is backend-specific (reshaped dicts for Python,
    flattened entry arrays for C, sorted key-code tables for NumPy) and is
    treated as immutable by every per-partition execution, so it is safe
    to share across threads.
    """
    if native is not None:
        return native.prepare_bindings(view_data, view_group_by)
    return prepare_python_bindings(plan, view_data, view_group_by)


def partition_tries(
    plan: MultiOutputPlan,
    trie: TrieIndex,
    partitions: int,
    threshold: int,
    concurrency: int | None = None,
) -> list[TrieIndex]:
    """The trie partitions one group should execute over (possibly just one).

    ``partitions`` is an advisory upper bound. Fan-out happens only when
    the configuration asks for it (``partitions > 1``), the plan's merge
    is provably safe (:attr:`MultiOutputPlan.partition_safe`), and the
    trie actually splits (≥ 2 level-0 runs). ``threshold`` is the minimum
    number of rows *per partition*: a 10k-row trie at the default 8192
    threshold now runs with one partition instead of splitting into four
    ~2.5k-row slices whose per-partition overhead exceeds their work
    (``threshold == 0`` forces the full fan-out — the differential test
    grids pin it to exercise partitioned paths on any input size).
    ``concurrency``, when given, further caps the fan-out at the number
    of threads that can actually run the partitions concurrently
    (:func:`repro.core.costmodel.effective_concurrency`).
    """
    k = costmodel.effective_partitions(
        trie.num_rows, partitions, threshold, concurrency
    )
    if k <= 1 or not plan.partition_safe:
        return [trie]
    return trie.partitions(k)


def merge_partial_outputs(
    plan: MultiOutputPlan, partial: Sequence[dict[str, dict]]
) -> dict[str, dict]:
    """Merge per-partition outputs of one group into the full outputs.

    Merge semantics per emission (see docs/architecture.md §Parallel):

    * **aligned** emissions (group-by = attribute-order prefix) are keyed by
      the level-0 attribute first, and level-0 values are disjoint across
      partitions — so the partial dicts concatenate (disjoint union). When
      every partial is an :class:`ArrayViewData` (the NumPy backend), the
      key columns and value matrices concatenate vectorised as well, so the
      merged view keeps columnar access for downstream NumPy consumers;
    * **accumulating** emissions (hash / scalar) sum per key and slot, in
      partition order. A key exists in the full output iff some partition
      emitted it: key support is itself a sum over rows, so it is positive
      on the whole relation iff positive on some partition.

    Partition order is fixed (level-0 run order), which makes the merged
    result deterministic — independent of worker count and scheduling.

    The merge never mutates its inputs: accumulating emissions copy the
    first-seen value list per key before summing into it, and aligned
    merges build a fresh container. If a partial is an
    :class:`ArrayViewData`, any future mutating path through dict methods
    would auto-drop its columnar state; under ``LMFAO_DEBUG`` the
    columnar partials are additionally asserted consistent before use.
    """
    if len(partial) == 1:
        return partial[0]
    debug = debug_checks_enabled()
    merged: dict[str, dict] = {}
    for emission in plan.emissions:
        name = emission.artifact
        if emission.aligned and emission.group_by:
            pieces = [outputs[name] for outputs in partial]
            if all(
                isinstance(p, ArrayViewData) and p.has_columns for p in pieces
            ):
                if debug:
                    for piece in pieces:
                        piece.check_consistent()
                num_parts = len(pieces[0].key_columns)
                out: dict = ArrayViewData.from_arrays(
                    [
                        np.concatenate([p.key_columns[i] for p in pieces])
                        for i in range(num_parts)
                    ],
                    np.concatenate([p.value_matrix for p in pieces]),
                )
            else:
                out = {}
                for outputs in partial:
                    out.update(outputs[name])
        else:
            out = {}
            for outputs in partial:
                source = outputs[name]
                if debug and isinstance(source, ArrayViewData):
                    source.check_consistent()
                for key, values in source.items():
                    current = out.get(key)
                    if current is None:
                        out[key] = list(values)
                    else:
                        for slot, value in enumerate(values):
                            current[slot] += value
        merged[name] = out
    return merged


def execute_plan_partitioned(
    code,
    native,
    plan: MultiOutputPlan,
    tries: Sequence[TrieIndex],
    view_data: Mapping[str, ViewData],
    view_group_by: Mapping[str, tuple[str, ...]],
    functions: Mapping[str, Function],
) -> dict[str, dict]:
    """Run one compiled group over trie partitions (serially) and merge.

    The sequential executor and the incremental maintainer both refresh
    groups through this path, so a partitioned configuration produces
    bit-identical state no matter which of them ran the group. The parallel
    engine scheduler fans the same per-partition calls out across its
    worker pool and merges with :func:`merge_partial_outputs` itself.
    """
    if len(tries) == 1:
        return execute_plan(
            code, native, plan, tries[0], view_data, view_group_by, functions
        )
    prepared = prepare_bindings(native, plan, view_data, view_group_by)
    partial = [
        execute_plan(
            code,
            native,
            plan,
            trie,
            view_data,
            view_group_by,
            functions,
            prepared_bindings=prepared,
        )
        for trie in tries
    ]
    return merge_partial_outputs(plan, partial)


def estimate_view_bytes(data: Mapping) -> int:
    """A cheap, deterministic size estimate of one materialized view.

    The view cache's byte accounting (:mod:`repro.serve.viewcache`) needs
    a weight per entry without walking every key of a large view. Columnar
    :class:`ArrayViewData` reports its arrays' true ``nbytes``; plain dict
    views are estimated as ``entries × (per-key + per-aggregate cost)``
    from one sampled entry. Estimates are stable for a given view, which
    is all LRU weight accounting needs (the bound is approximate by
    design — see ``docs/serving.md`` §View cache).
    """
    entries = len(data)
    if entries == 0:
        return 64
    if isinstance(data, ArrayViewData) and data.has_columns:
        return int(
            sum(column.nbytes for column in data.key_columns)
            + np.asarray(data.value_matrix).nbytes
            + 64 * entries  # dict-mirror overhead per entry
        )
    key, values = next(iter(data.items()))
    key_width = len(key) if isinstance(key, tuple) else 1
    per_entry = 64 + 28 * key_width + 32 * len(values)
    return 64 + entries * per_entry
