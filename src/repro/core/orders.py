"""Attribute-order selection for multi-output groups.

LMFAO "constructs a total order on the join attributes of the node relation"
(paper §2); relation and incoming views are then organised as tries along
that order. The heuristic here ranks an attribute by how many incoming
views and outgoing artifacts key on it, breaking ties towards larger
domains — on the paper's Group 6 this yields exactly Figure 3's order
``item, date, store`` (all three attributes tie on use count; the domains
order them).

Incoming views whose group-by includes attributes not local to the node
become :class:`CarriedBlock` entries, bound at the relation level where
their local key completes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.groups import Group
from repro.core.plan import CarriedBlock, RelationLevel, ViewBinding
from repro.core.viewgen import ViewPlan
from repro.data.catalog import Database
from repro.util.errors import PlanError


@dataclass
class GroupOrder:
    """The chosen level layout and view bindings for one group."""

    relation_levels: tuple[RelationLevel, ...]
    carried_blocks: tuple[CarriedBlock, ...]
    bindings: tuple[ViewBinding, ...]
    #: relation attribute -> level index (local attributes only).
    level_of: dict[str, int]


def order_group(group: Group, view_plan: ViewPlan, db: Database) -> GroupOrder:
    """Choose the attribute order and view bindings for ``group``."""
    node_attrs = set(view_plan.tree.attributes(group.node))
    incoming = [view_plan.views[name] for name in group.incoming_view_names()]

    # ---- split every incoming view's group-by into local key / carried ----
    keys: dict[str, tuple[str, ...]] = {}
    carried: dict[str, tuple[str, ...]] = {}
    for view in incoming:
        keys[view.name] = tuple(a for a in view.group_by if a in node_attrs)
        carried[view.name] = tuple(a for a in view.group_by if a not in node_attrs)
        if not keys[view.name]:
            raise PlanError(
                f"incoming view {view.name} shares no attribute with {group.node}"
            )

    # ---- interesting relation attributes: view keys + local group-bys ----
    uses: dict[str, int] = {}
    for view in incoming:
        for attr in keys[view.name]:
            uses[attr] = uses.get(attr, 0) + 1
    for artifact in group.artifacts:
        for attr in artifact.group_by:
            if attr in node_attrs:
                uses[attr] = uses.get(attr, 0) + 1

    ordered_attrs = sorted(uses, key=lambda a: (-uses[a], -db.domain_size(a), a))
    relation_levels = tuple(
        RelationLevel(index=i, attr=attr) for i, attr in enumerate(ordered_attrs)
    )
    level_of = {lvl.attr: lvl.index for lvl in relation_levels}

    # ---- carried blocks: one per carrying view, bound where its key ends ----
    def bind_level(view_name: str) -> int:
        return max(level_of[a] for a in keys[view_name])

    carrying = sorted(
        (v for v in incoming if carried[v.name]),
        key=lambda v: (bind_level(v.name), v.name),
    )
    carried_blocks = tuple(
        CarriedBlock(
            index=i,
            view=view.name,
            key=keys[view.name],
            carried=carried[view.name],
            bind_level=bind_level(view.name),
        )
        for i, view in enumerate(carrying)
    )
    block_of = {cb.view: cb.index for cb in carried_blocks}

    bindings = tuple(
        ViewBinding(
            view=view.name,
            num_aggregates=view.num_aggregates,
            key=keys[view.name],
            key_levels=tuple(level_of[a] for a in keys[view.name]),
            bind_level=bind_level(view.name),
            carried=carried[view.name],
            block=block_of.get(view.name),
        )
        for view in incoming
    )

    return GroupOrder(
        relation_levels=relation_levels,
        carried_blocks=carried_blocks,
        bindings=bindings,
        level_of=level_of,
    )
