"""LMFAO's three optimisation layers and the execution engine."""

from repro.core import costmodel, lowering
from repro.core.codegen import CompiledGroup, generate_group
from repro.core.decompose import decompose_group
from repro.core.engine import (
    CompiledBatch,
    EngineConfig,
    LMFAO,
    PlanBinding,
    RunResult,
)
from repro.core.groups import Group, GroupPlan, build_groups
from repro.core.orders import GroupOrder, order_group
from repro.core.plan import MultiOutputPlan
from repro.core.snapshot import Snapshot, SnapshotStore
from repro.core.viewgen import ViewGenerator, ViewPlan
from repro.core.views import AggRef, Output, View, ViewAggregate

__all__ = [
    "AggRef",
    "CompiledBatch",
    "CompiledGroup",
    "EngineConfig",
    "Group",
    "GroupOrder",
    "GroupPlan",
    "LMFAO",
    "MultiOutputPlan",
    "Output",
    "PlanBinding",
    "RunResult",
    "Snapshot",
    "SnapshotStore",
    "View",
    "ViewAggregate",
    "ViewGenerator",
    "ViewPlan",
    "build_groups",
    "costmodel",
    "decompose_group",
    "generate_group",
    "lowering",
    "order_group",
]
