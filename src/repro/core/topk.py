"""Ordered-emission finishing: rank + truncate per partition, once.

Ordered/top-k queries (``Query.order_by`` / ``Query.limit``) add a new
result *shape* — ranked, truncated, insertion-ordered — without changing
what the execution layers compute: every backend still materialises the
**full** grouped aggregate for an ordered query, because per-partition
top-k is not mergeable from truncated partials (a key outside one trie
partition's local top-k can belong to the global top-k once partials are
summed). Truncating early would silently break the partitioned, parallel
and incremental paths, so ranking happens exactly once, at the single
seam every path already funnels results through
(:func:`repro.core.engine._to_query_result`), over the complete raw
store. That is also what makes incremental maintenance exact: deleted or
decreased keys can be *replaced* in the top-k by keys the truncated
result would have forgotten (see :func:`repro.incremental.rules.refresh_ordered`).

Two strategy kernels implement the same deterministic total order (the
tie-break contract of :class:`~repro.query.aggregates.OrderSpec`), picked
per finish by :func:`repro.core.costmodel.topk_strategy` from ``k`` and
the grouped-item count:

* ``'heap'`` — bounded selection: per-partition ``heapq.nsmallest`` over
  plain dict outputs (the generated-Python and C backends), and a
  per-partition ``np.argpartition`` with exact boundary-tie resolution
  over :class:`~repro.core.runtime.ArrayViewData` columnar outputs (the
  NumPy backend). ``O(n + p·k log k)`` — wins when ``k`` is far below
  the partition sizes;
* ``'sort'`` — one full sort by ``(partition, ±value, residual key)``
  (Python :func:`sorted` / ``np.lexsort``) then a per-partition cut.
  Wins when ``k`` is a large fraction of the items or ``limit`` is None.

Both kernels realise the identical total order — the composite
``(±value, residual group-by key)`` is unique per row because group keys
are unique — so forcing either path (``LMFAO_FORCE_TOPK``, or
``LMFAO_FORCE_STRATEGY=heap|sort``) must be bit-exact, which the ordered
differential grids assert.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core import costmodel
from repro.core.runtime import ArrayViewData
from repro.query.query import Query

__all__ = ["finish_ordered", "order_positions", "rank_partition_items"]


def order_positions(query: Query) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """``(partition, residual)`` group-key positions of an ordered query.

    Partition positions follow ``order_by.partition_by`` order; residual
    positions are the remaining group-by attributes in declaration order
    (the ascending tie-break key).
    """
    spec = query.order_by
    partition = tuple(query.group_by.index(a) for a in spec.partition_by)
    in_partition = set(partition)
    residual = tuple(
        i for i in range(len(query.group_by)) if i not in in_partition
    )
    return partition, residual


def _as_key(key) -> tuple:
    return key if isinstance(key, tuple) else (key,)


def rank_partition_items(
    items: list[tuple[tuple, tuple[float, ...]]],
    query: Query,
    residual: tuple[int, ...],
) -> list[tuple[tuple, tuple[float, ...]]]:
    """One partition's items ranked and truncated (the bounded-heap kernel).

    ``items`` are ``(full key tuple, float values)`` pairs of a single
    partition; keys must already be normalised tuples and values floats.
    Shared by the engine's heap finisher and the incremental maintainer's
    targeted partition refresh, so both produce the identical order.
    """
    spec = query.order_by
    sign = -1.0 if spec.descending else 1.0

    def sort_key(item):
        key, values = item
        return (sign * values[spec.agg_index], tuple(key[i] for i in residual))

    if query.limit is None:
        return sorted(items, key=sort_key)
    return heapq.nsmallest(query.limit, items, key=sort_key)


# ------------------------------------------------------------ dict kernels


def _finish_dict_sort(query: Query, raw: dict) -> dict:
    spec = query.order_by
    partition, residual = order_positions(query)
    sign = -1.0 if spec.descending else 1.0
    rows = [
        (_as_key(key), tuple(float(v) for v in values))
        for key, values in raw.items()
    ]

    def sort_key(row):
        key, values = row
        return (
            tuple(key[i] for i in partition),
            sign * values[spec.agg_index],
            tuple(key[i] for i in residual),
        )

    rows.sort(key=sort_key)
    limit = query.limit
    out: dict[tuple, tuple[float, ...]] = {}
    current = None
    taken = 0
    for key, values in rows:
        part = tuple(key[i] for i in partition)
        if part != current:
            current, taken = part, 0
        if limit is not None and taken >= limit:
            continue
        out[key] = values
        taken += 1
    return out


def _finish_dict_heap(query: Query, raw: dict) -> dict:
    partition, residual = order_positions(query)
    buckets: dict[tuple, list] = {}
    for key, values in raw.items():
        key = _as_key(key)
        part = tuple(key[i] for i in partition)
        buckets.setdefault(part, []).append(
            (key, tuple(float(v) for v in values))
        )
    out: dict[tuple, tuple[float, ...]] = {}
    for part in sorted(buckets):
        for key, values in rank_partition_items(buckets[part], query, residual):
            out[key] = values
    return out


# -------------------------------------------------------- columnar kernels


def _columnar_inputs(query: Query, raw: ArrayViewData):
    """Sort operands off the columnar mirror: value key + key columns."""
    spec = query.order_by
    partition, residual = order_positions(query)
    values = raw.value_matrix[:, spec.agg_index].astype(np.float64, copy=False)
    vkey = -values if spec.descending else values
    part_cols = [raw.key_columns[i] for i in partition]
    res_cols = [raw.key_columns[i] for i in residual]
    return vkey, part_cols, res_cols


def _emit_rows(raw: ArrayViewData, order: np.ndarray) -> dict:
    """Materialise the finished dict for ``order``'s row sequence."""
    keys = list(zip(*(col[order].tolist() for col in raw.key_columns)))
    matrix = raw.value_matrix[order]
    return {
        key: tuple(float(v) for v in row)
        for key, row in zip(keys, matrix.tolist())
    }


def _partition_slices(part_cols: list[np.ndarray], n: int):
    """Index groups per partition, partitions in ascending key order."""
    if not part_cols:
        return [np.arange(n)]
    order = np.lexsort(tuple(reversed(part_cols)))
    stacked = [col[order] for col in part_cols]
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for col in stacked:
        change[1:] |= col[1:] != col[:-1]
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], n)
    return [order[s:e] for s, e in zip(starts, ends)]


def _finish_columnar_sort(query: Query, raw: ArrayViewData) -> dict:
    n = len(raw)
    if n == 0:
        return {}
    vkey, part_cols, res_cols = _columnar_inputs(query, raw)
    # lexsort: last key is most significant — partitions first, then the
    # (signed) order value, then the residual key columns ascending.
    operands = tuple(reversed(res_cols)) + (vkey,) + tuple(reversed(part_cols))
    order = np.lexsort(operands)
    limit = query.limit
    if limit is not None:
        if part_cols:
            change = np.zeros(n, dtype=bool)
            change[0] = True
            for col in part_cols:
                sorted_col = col[order]
                change[1:] |= sorted_col[1:] != sorted_col[:-1]
            starts = np.flatnonzero(change)
            ranks = np.arange(n) - np.repeat(
                starts, np.append(starts[1:], n) - starts
            )
        else:
            ranks = np.arange(n)
        order = order[ranks < limit]
    return _emit_rows(raw, order)


def _finish_columnar_heap(query: Query, raw: ArrayViewData) -> dict:
    n = len(raw)
    if n == 0:
        return {}
    vkey, part_cols, res_cols = _columnar_inputs(query, raw)
    limit = query.limit
    pieces: list[np.ndarray] = []
    for idx in _partition_slices(part_cols, n):
        m = len(idx)
        if limit is not None and limit < m:
            # argpartition on the signed value alone, then resolve the
            # k-boundary tie exactly: strictly-better rows are all in,
            # boundary-equal rows are ranked by the residual key.
            pv = vkey[idx]
            boundary = np.partition(pv, limit - 1)[limit - 1]
            sure = idx[pv < boundary]
            tied = idx[pv == boundary]
            need = limit - len(sure)
            if len(tied) > need and res_cols:
                tie_order = np.lexsort(
                    tuple(col[tied] for col in reversed(res_cols))
                )
                tied = tied[tie_order[:need]]
            elif len(tied) > need:  # defensive: empty residual ⇒ 1-row parts
                tied = tied[:need]
            candidates = np.concatenate([sure, tied])
        else:
            candidates = idx
        final = np.lexsort(
            tuple(col[candidates] for col in reversed(res_cols))
            + (vkey[candidates],)
        )
        pieces.append(candidates[final])
    order = (
        np.concatenate(pieces) if pieces else np.arange(0)
    ).astype(np.intp, copy=False)
    return _emit_rows(raw, order)


# ---------------------------------------------------------------- dispatch


def finish_ordered(query: Query, raw: dict) -> tuple[dict, str]:
    """Rank and truncate one ordered query's full raw groups.

    Returns ``(finished groups, strategy)`` — the insertion-ordered dict
    realising the query's deterministic total order, and the ``'heap'``
    or ``'sort'`` kernel the cost model picked (recorded on
    ``RunResult.decisions`` by the engine). The kernel pair is chosen by
    the raw container: columnar ``np.argpartition``/``np.lexsort`` when
    the NumPy backend's :class:`ArrayViewData` mirror is intact, bounded
    ``heapq``/:func:`sorted` over plain dict outputs otherwise.
    """
    if query.limit == 0:
        return {}, costmodel.STRATEGY_SORT
    strategy = costmodel.topk_strategy(query.limit, len(raw))
    columnar = isinstance(raw, ArrayViewData) and raw.has_columns
    if strategy == costmodel.STRATEGY_HEAP:
        finished = (
            _finish_columnar_heap(query, raw)
            if columnar
            else _finish_dict_heap(query, raw)
        )
    else:
        finished = (
            _finish_columnar_sort(query, raw)
            if columnar
            else _finish_dict_sort(query, raw)
        )
    return finished, strategy
